(** Zab-like primary-backup atomic broadcast (the ZooKeeper substrate).

    A single leader orders all transactions, disseminates them to backups,
    and commits on a majority quorum; backups apply the committed prefix in
    order.  Leader recovery uses a vote-based election (Raft-style) whose
    log-completeness rule guarantees the winner holds every committed
    transaction, followed by log synchronization — the property §3.8 of
    the paper relies on.

    Membership is dynamic and goes through the log (joint consensus): a
    change from [c_old] to [c_new] is a replicated [Cc_joint] entry that —
    from the moment it is appended — makes commits and elections require
    majorities of BOTH sets; once it commits, a [Cc_final] entry collapses
    membership to [c_new].  New replicas join as non-voting learners
    bootstrapped by the chunked snapshot transfer and gain a vote only when
    caught up; replicas outside the config are fenced (never win elections,
    and the deployment refuses their reads via {!is_fenced}).

    Transport-agnostic: the deployment supplies [send] and feeds incoming
    messages to {!handle}; timers run on the shared simulator. *)

open Edc_simnet

type zxid = { epoch : int; counter : int }

val zxid_zero : zxid
val zxid_compare : zxid -> zxid -> int
val pp_zxid : Format.formatter -> zxid -> unit

(** A member set: sorted, duplicate-free replica ids. *)
type member_set = int list

type membership =
  | Stable of member_set
  | Joint of { c_old : member_set; c_new : member_set }
      (** transition in progress: decisions need majorities of both sets *)

(** The two log-entry kinds a reconfiguration replicates. *)
type config_change =
  | Cc_joint of { c_old : member_set; c_new : member_set }
  | Cc_final of { members : member_set }

val pp_membership : Format.formatter -> membership -> unit
val pp_config_change : Format.formatter -> config_change -> unit

(** What a log entry carries: an application payload or a config change
    (config entries are consumed by the protocol and never reach
    [on_deliver]). *)
type 'p payload = App of 'p | Config of config_change

type 'p entry = { zxid : zxid; payload : 'p payload }

type 'p msg =
  | Ping of { epoch : int; committed : int; sent : Sim_time.t }
      (** heartbeat; [sent] is the leader's local-clock reading at
          transmission, echoed back by lease grants *)
  | Propose of {
      epoch : int;
      index : int;
      prev_zxid : zxid;
          (** zxid of the entry just below [index] (log-matching check:
              a follower whose log disagrees must resync rather than
              append onto a divergent tail) *)
      entries : 'p entry list;
    }
      (** a group-committed batch of consecutive entries starting at
          absolute index [index] *)
  | Ack of { epoch : int; upto : int }
      (** cumulative: the sender durably holds the prefix of length
          [upto] *)
  | Commit of { epoch : int; index : int }
  | Request_vote of { epoch : int; candidate : int; last_zxid : zxid }
  | Vote of { epoch : int }
  | Sync_request of { epoch : int; have : int }
  | Sync of { epoch : int; from : int; entries : 'p entry list; committed : int }
  | Snapshot_begin of {
      epoch : int;
      base : int;  (** the snapshot covers entries [0, base) *)
      total : int;  (** blob size in bytes *)
      chunk_size : int;
      digest : string;
          (** of the whole blob: lets a follower resume a partial transfer
              under a new leader only when the bytes are provably the same *)
      committed : int;
      config : membership;
          (** membership in effect at [base], so a bootstrapping learner
              can reconstruct the member set past compacted config
              entries *)
    }
      (** opens a chunked, flow-controlled state transfer; the blob follows
          in [Snapshot_chunk]s, the retained log suffix is fetched
          afterwards via the normal [Sync] path *)
  | Snapshot_chunk of { epoch : int; base : int; seq : int; data : string }
  | Snapshot_ack of { epoch : int; base : int; received : int }
      (** cumulative chunk ack; a duplicate doubles as a retransmit solicit
          so transfers resume from the last contiguous chunk after drops *)
  | Join_request of { epoch : int; id : int }
      (** learner handshake: a non-member asks the leader to adopt and
          bootstrap it; re-broadcast on silence so it survives leader
          changes and crash/restart of a half-bootstrapped learner *)
  | Fence of { epoch : int }
      (** stand-down order from the leader to a replica outside the config *)
  | Lease_grant of { epoch : int; sent : Sim_time.t }
      (** a voter's promise, answering a [Ping], not to grant any vote for
          the next [lease_duration] on its clock; [sent] echoes the ping's
          send timestamp so the leader anchors the expiry at its own send
          time *)
  | Observer_request of { epoch : int; id : int }
      (** observer handshake: a permanent non-voting replica asks the
          leader for the commit stream; bootstrapped like a learner but
          never promoted; re-broadcast on silence *)

type role = Leader | Follower | Candidate

val pp_role : Format.formatter -> role -> unit

type config = {
  heartbeat_interval : Sim_time.t;
  election_timeout : Sim_time.t;
  election_stagger : Sim_time.t;  (** per-replica deterministic stagger *)
  batch : Batching.config;
      (** leader-side group commit; {!Batching.off} reproduces unbatched
          behaviour exactly *)
  unsafe_skip_log_matching : bool;
      (** TEST ONLY — resurrects a historical bug: followers accept
          proposals without checking [prev_zxid]/overlap agreement, so a
          divergent uncommitted tail left by a deposed leader can be
          acked and committed (double/ghost applies).  Used by the
          linearizability checker's mutation self-test to prove the
          checker catches real consistency violations; never enable
          outside tests. *)
  unsafe_single_step_reconfig : bool;
      (** TEST ONLY — the classic one-step reconfiguration bug: a
          [Cc_joint] entry applies as [Stable c_new] immediately, so during
          the transition a majority of [c_old] and a majority of [c_new]
          can be disjoint and commit independently, losing committed
          entries.  Used by regression tests to prove the joint phase is
          what prevents exactly this; never enable outside tests. *)
  snapshot_chunk_size : int;
      (** bytes of snapshot blob per [Snapshot_chunk] *)
  snapshot_window : int;
      (** chunks kept in flight beyond the follower's cumulative ack *)
  lease_duration : Sim_time.t;
      (** leader-lease length: voters answering a heartbeat promise not to
          grant votes for this long on their local clocks, and a leader
          holding live grants from a majority serves linearizable reads
          locally.  Must be below [election_timeout]; [Sim_time.zero]
          disables leases. *)
  clock_skew_bound : Sim_time.t;
      (** ε: assumed bound on any replica's virtual-clock offset from real
          time.  The leader expires each grant 2ε early, which keeps lease
          reads linearizable for any skew within ±ε. *)
  unsafe_ignore_lease_expiry : bool;
      (** TEST ONLY — the leader treats grants as live forever, so a
          deposed, partitioned leader keeps serving stale "linearizable"
          reads.  Exists so the checker's stale-read detector can prove it
          convicts exactly this; never enable outside tests. *)
}

val default_config : config

type 'p t

(** [create ~sim ~id ~peers ~send ~on_deliver ()] — one replica.
    [on_deliver] receives committed application payloads in order, exactly
    once per lifetime (config entries are consumed internally).  With
    [initial_leader] the ensemble boots with an elected leader of epoch 1
    (skips the cold election).  With [learner:true] the replica starts as
    a non-voting learner whose member set is [peers] minus itself: it
    announces itself via [Join_request], is bootstrapped by the leader
    (snapshot + log sync), and becomes a voter only when a committed
    config admits it.  With [observer:true] the replica is a permanent
    non-voting observer: bootstrapped the same way (via
    [Observer_request]), it consumes the commit stream forever, serves
    sequentially-consistent reads from its applied prefix, and never
    appears in any quorum or election. *)
val create :
  ?config:config ->
  ?initial_leader:int ->
  ?learner:bool ->
  ?observer:bool ->
  ?send_many:(dsts:int list -> 'p msg -> unit) ->
  sim:Sim.t ->
  id:int ->
  peers:int list ->
  send:(dst:int -> 'p msg -> unit) ->
  on_deliver:(zxid -> 'p -> unit) ->
  unit ->
  'p t

val set_on_role_change : 'p t -> (role -> unit) -> unit

(** [start t] begins heartbeat/election timers (and, for a learner, the
    join handshake). *)
val start : 'p t -> unit

(** [propose t payload] — leader only; assigns a zxid and enqueues the
    payload on the group-commit batcher (with batching off it is
    disseminated synchronously).  Returns the assigned zxid, [None] if
    this replica does not lead. *)
val propose : 'p t -> 'p -> zxid option

(** [remove_server t ~id] — leader only; starts the joint-consensus
    removal of [id].  Refused while another reconfiguration is in flight,
    for non-members, and for the last remaining member.  The removed
    replica is fenced once the final entry commits. *)
val remove_server : 'p t -> id:int -> (unit, string) result

(** [reconfigure t ~c_new] — leader only; starts the joint-consensus
    transition to the complete target ensemble [c_new] (ZooKeeper-style
    reconfig: the caller names the new member set, so a multi-server
    change goes through one joint entry rather than a sequence of
    single-server steps).  Refused while another change is in flight,
    for an empty set, and when nothing changes.  New members are synced
    by the ordinary recovery path once the joint entry puts them in the
    broadcast set. *)
val reconfigure : 'p t -> c_new:member_set -> (unit, string) result

val handle : 'p t -> src:int -> 'p msg -> unit

val is_leader : 'p t -> bool
val role : 'p t -> role
val leader_hint : 'p t -> int option
val epoch : 'p t -> int
val log_length : 'p t -> int
val committed_length : 'p t -> int

(** Absolute index of the oldest retained log entry. *)
val compaction_base : 'p t -> int

(** Length of the prefix handed to [on_deliver] (equals the applied
    prefix, since delivery is synchronous). *)
val delivered_length : 'p t -> int

(** Current voters per this replica's membership view (the union of both
    sets during a joint phase). *)
val members : 'p t -> int list

val membership : 'p t -> membership

(** Leader only: adopted non-voting learners still being bootstrapped. *)
val learners : 'p t -> int list

(** Leader only: adopted observers (permanent non-voting members). *)
val observers : 'p t -> int list

(** The replica was created as an observer. *)
val is_observer : 'p t -> bool

(** Leader leases (virtual-clock based; see [config.lease_duration]). *)

(** The leader currently holds live lease grants from a majority of every
    voting set (both sets during a joint phase — the intersection rule),
    so a local read is linearizable.  Always false on non-leaders and
    with leases disabled. *)
val lease_valid : 'p t -> bool

(** Same check, with accounting: the deployment's read-path gate.  False
    means the read must take the commit path instead. *)
val can_serve_lease_read : 'p t -> bool

(** This voter made a no-vote promise that has not yet run out on its
    local clock. *)
val lease_promise_outstanding : 'p t -> bool

(** Virtual clock: [Sim.now] plus a settable per-replica offset (the
    clock-skew nemesis hook).  Skew affects only lease arithmetic, never
    simulator timers. *)
val set_clock_skew : 'p t -> Sim_time.t -> unit

val clock_skew : 'p t -> Sim_time.t
val local_now : 'p t -> Sim_time.t

type lease_stats = {
  mutable grants_sent : int;  (** follower: promises made *)
  mutable grants_received : int;  (** leader: grants accepted from voters *)
  mutable reads_held : int;  (** leader: fast-path checks that said yes *)
  mutable reads_expired : int;  (** leader: checks that fell back *)
  mutable vote_refusals : int;
      (** votes/campaigns refused under an outstanding promise *)
}

val lease_stats : 'p t -> lease_stats

(** The replica has been told (by a committed config or the leader's
    [Fence]) that it is outside the member set: it never campaigns or
    votes, and the deployment must refuse to serve its reads. *)
val is_fenced : 'p t -> bool

(** A membership change is underway (joint phase, or a config entry
    waiting in the batcher). *)
val reconfig_in_flight : 'p t -> bool

(** [set_install_snapshot t f] — the application hook that replaces local
    state with a received snapshot blob (called once per completed chunked
    transfer, with the fully assembled blob: the import is atomic even
    though delivery is streamed).  The blob is untrusted bytes: the hook
    returns [Error] if it does not decode, in which case local state must
    be untouched — the transfer layer rejects the snapshot, keeps its
    horizon, and re-requests a sync instead of dying. *)
val set_install_snapshot : 'p t -> (string -> (unit, string) result) -> unit

(** [compact t ~take] snapshots the delivered prefix and drops it from the
    log; lagging replicas then recover via chunked state transfer.
    [take ()] runs at compaction time and must capture the state at the
    horizon cheaply; the serializer it returns is forced only when a state
    transfer actually needs the bytes (cached until the next
    compaction). *)
val compact : 'p t -> take:(unit -> unit -> string) -> unit

(** State-transfer counters (cumulative over the replica's lifetime). *)
type xfer_stats = {
  mutable serializations : int;
      (** times the lazy snapshot was actually marshaled *)
  mutable chunks_sent : int;
  mutable chunk_retx : int;  (** chunks re-sent below the high-water mark *)
  mutable bytes_streamed : int;  (** chunk payload bytes sent *)
  mutable transfers_started : int;
  mutable transfers_completed : int;
  mutable resumes : int;  (** transfers continued after a stall or leader change *)
  mutable last_resume_from : int;
      (** chunk index the latest resume restarted from (never rewinds to 0
          unless the follower actually lost its prefix) *)
  mutable installs : int;  (** complete blobs handed to the application *)
  mutable install_rejects : int;
      (** assembled blobs the application refused to decode (corrupt or
          truncated bytes rejected through the codec's [Error] path) *)
}

val xfer_stats : 'p t -> xfer_stats

(** Reconfiguration counters (cumulative; leader-side counters only move
    on replicas that led). *)
type reconfig_stats = {
  mutable joins_requested : int;
      (** leader: distinct learners adopted after a [Join_request] *)
  mutable joint_proposed : int;  (** leader: [Cc_joint] entries proposed *)
  mutable joint_commits : int;  (** [Cc_joint] entries committed *)
  mutable finals_committed : int;  (** [Cc_final] entries committed *)
  mutable joins_completed : int;
      (** members that entered the stable config via a committed final *)
  mutable leaves_requested : int;  (** leader: [remove_server] accepted *)
  mutable leaves_completed : int;
      (** members that left the stable config via a committed final *)
  mutable aborted : int;
      (** joint entries truncated away uncommitted (proposer lost
          leadership before the joint entry committed) *)
  mutable fences : int;  (** times this replica was fenced *)
  mutable catchup_ms : float list;
      (** leader: per-promoted-learner bootstrap time, newest first *)
}

val reconfig_stats : 'p t -> reconfig_stats

(** [crash t] stops the replica; the log/epoch/membership persist (the
    on-disk transaction log).  [restart t] rejoins as a follower — or, for
    a still-joining learner, re-announces itself — and catches up. *)
val crash : 'p t -> unit

val restart : 'p t -> unit

(** Modelled wire size of a protocol message. *)
val msg_size : payload_size:('p -> int) -> 'p msg -> int
