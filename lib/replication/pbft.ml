(** PBFT-style Byzantine fault-tolerant state machine replication.

    Reproduces the substrate DepSpace (and therefore the paper's EDS) runs
    on: BFT-SMaRt-like total-order multicast with [n = 3f + 1] replicas.
    Clients multicast their request to every replica; the primary of the
    current view assigns sequence numbers and runs the classic three-phase
    exchange (pre-prepare / prepare / commit with [2f] and [2f + 1]
    quorums); replicas execute requests deterministically in sequence order
    and reply directly to the client, which accepts a result once [f + 1]
    matching replies arrive (that vote lives in the DepSpace client
    library, not here).

    View change is simplified for the crash/silent fault model exercised by
    the tests: a backup that sees a submitted request go unordered past a
    timeout broadcasts a VIEW-CHANGE carrying its delivered history and
    pending requests; the new primary (round-robin on view number) waits
    for [2f + 1] such messages, adopts the longest delivered history among
    them, and re-proposes everything else.  Real PBFT additionally carries
    prepared certificates to survive Byzantine primaries across the view
    boundary; we document this delta in DESIGN.md — all experiments in the
    paper run with a correct primary. *)

open Edc_simnet

(** Request identity: deduplicates re-proposals across views. *)
type request_id = { client : int; rseq : int }

let request_id_compare a b =
  match Int.compare a.client b.client with
  | 0 -> Int.compare a.rseq b.rseq
  | c -> c

let pp_request_id ppf r = Fmt.pf ppf "%d:%d" r.client r.rseq

type 'p msg =
  | Pre_prepare of {
      view : int;
      seq : int;
      batch : (request_id * 'p) list;
          (** the requests agreed on as one consensus instance, in
              execution order (BFT-SMaRt packs every request that arrived
              during the previous instance into the next proposal) *)
      ts : Sim_time.t;
          (** primary-assigned timestamp: gives replicas a deterministic
              shared notion of time for lease expiry (DepSpace) *)
    }
  | Prepare of { view : int; seq : int }
  | Commit of { view : int; seq : int }
  | View_change of {
      new_view : int;
      delivered : (request_id * 'p) list;  (** full delivered history *)
      pending : (request_id * 'p) list;
    }
  | New_view of { view : int }
  | Recover_request
  | Recover_reply of { view : int }

type config = {
  order_timeout : Sim_time.t;
      (** how long a backup waits for a submitted request to be ordered
          before suspecting the primary *)
  check_interval : Sim_time.t;
  batch : Batching.config;
      (** primary-side request batching: requests arriving while the
          previous instance syncs ride the next pre-prepare *)
}

let default_config =
  {
    order_timeout = Sim_time.ms 400;
    check_interval = Sim_time.ms 50;
    batch = Batching.off;
  }

type 'p slot = {
  s_batch : (request_id * 'p) list;
  s_ts : Sim_time.t;
  mutable prepares : int list;
  mutable commits : int list;
  mutable sent_commit : bool;
}

type 'p t = {
  sim : Sim.t;
  id : int;
  peers : int list;
  f : int;
  send : dst:int -> 'p msg -> unit;
  send_many : dsts:int list -> 'p msg -> unit;
      (** one message value to many peers; the TCP transport encodes it
          once (encode-once broadcast) *)
  on_deliver : request_id -> 'p -> ts:Sim_time.t -> unit;
  config : config;
  mutable view : int;
  mutable alive : bool;
  mutable generation : int;
  slots : (int, 'p slot) Hashtbl.t;  (** seq -> in-flight slot (current view) *)
  in_flight : (request_id, unit) Hashtbl.t;
      (** requests enqueued or ordered but not yet delivered (primary-side
          index that keeps [submit]'s duplicate check O(1)) *)
  mutable batcher : (request_id * 'p) Batching.t option;
      (** set right after create *)
  mutable next_seq : int;  (** primary: next sequence number to assign *)
  mutable delivered : (request_id * 'p) list;  (** newest first *)
  executed : (request_id, unit) Hashtbl.t;
  mutable deliver_horizon : int;  (** next seq to deliver *)
  pending : (request_id, 'p * Sim_time.t) Hashtbl.t;
      (** submitted but not yet delivered, with submission time *)
  mutable view_changes : (int * (request_id * 'p) list * (request_id * 'p) list) list;
      (** (from, delivered, pending) messages for view [view + 1 ...] ,
          keyed implicitly by the new view we are collecting for *)
  mutable collecting_view : int;  (** the view we are collecting VCs for *)
  mutable recovering : bool;  (** restarted, waiting for recover replies *)
  mutable recover_views : (int * int) list;  (** (replica, its view) *)
}

let n t = List.length t.peers
let primary_of t view = List.nth (List.sort compare t.peers) (view mod n t)
let is_primary t = t.alive && primary_of t t.view = t.id
let view t = t.view
let prepared_quorum t = 2 * t.f  (* plus the pre-prepare itself *)
let commit_quorum t = (2 * t.f) + 1

let others t = List.filter (fun p -> p <> t.id) t.peers
let broadcast t msg = t.send_many ~dsts:(others t) msg

let batcher t =
  match t.batcher with Some b -> b | None -> invalid_arg "pbft not wired"

(* Execute a committed slot: every request of the batch, in batch order,
   within one simulation event — the batch is atomic on every replica.
   Re-proposed requests that already executed are deduplicated here. *)
let deliver_slot t seq slot =
  Hashtbl.remove t.slots seq;
  List.iter
    (fun (rid, payload) ->
      Hashtbl.remove t.in_flight rid;
      if not (Hashtbl.mem t.executed rid) then begin
        Hashtbl.replace t.executed rid ();
        t.delivered <- (rid, payload) :: t.delivered;
        Hashtbl.remove t.pending rid;
        t.on_deliver rid payload ~ts:slot.s_ts
      end)
    slot.s_batch

let try_deliver t =
  let continue_ = ref true in
  while !continue_ do
    match Hashtbl.find_opt t.slots t.deliver_horizon with
    | Some slot when List.length slot.commits >= commit_quorum t ->
        deliver_slot t t.deliver_horizon slot;
        t.deliver_horizon <- t.deliver_horizon + 1
    | _ -> continue_ := false
  done

let slot_for t seq batch ts =
  match Hashtbl.find_opt t.slots seq with
  | Some s -> s
  | None ->
      let s =
        { s_batch = batch; s_ts = ts; prepares = []; commits = [];
          sent_commit = false }
      in
      Hashtbl.replace t.slots seq s;
      s

let record_prepare t seq slot src =
  if not (List.mem src slot.prepares) then slot.prepares <- src :: slot.prepares;
  if (not slot.sent_commit) && List.length slot.prepares >= prepared_quorum t
  then begin
    slot.sent_commit <- true;
    broadcast t (Commit { view = t.view; seq });
    (* count our own commit *)
    if not (List.mem t.id slot.commits) then slot.commits <- t.id :: slot.commits;
    try_deliver t
  end

let record_commit t slot src =
  if not (List.mem src slot.commits) then slot.commits <- src :: slot.commits;
  try_deliver t

let order_batch t batch =
  (* primary: assign the next sequence number to the whole batch, stamp it
     with the primary's clock, and start the three-phase exchange *)
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  let ts = Sim.now t.sim in
  let slot = slot_for t seq batch ts in
  List.iter (fun (rid, _) -> Hashtbl.replace t.in_flight rid ()) batch;
  broadcast t (Pre_prepare { view = t.view; seq; batch; ts });
  (* The primary's pre-prepare doubles as its prepare. *)
  record_prepare t seq slot t.id

(* Flush callback of the request batcher. *)
let propose_batch t items =
  if t.alive && is_primary t then
    match items with [] -> () | batch -> order_batch t batch

(** [submit t rid payload] hands a client request to this replica (clients
    multicast to all replicas).  The primary batches and orders it; backups
    remember it and watch for it to be ordered. *)
let submit t rid payload =
  if t.alive && not (Hashtbl.mem t.executed rid) then begin
    if not (Hashtbl.mem t.pending rid) then
      Hashtbl.replace t.pending rid (payload, Sim.now t.sim);
    if is_primary t then begin
      (* Avoid double-ordering a request that is already enqueued or in
         flight. *)
      if not (Hashtbl.mem t.in_flight rid) then begin
        Hashtbl.replace t.in_flight rid ();
        Batching.add (batcher t) (rid, payload)
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* View change                                                         *)
(* ------------------------------------------------------------------ *)

let start_view_change t =
  let new_view = t.view + 1 in
  Trace.debugf t.sim "pbft[%d] suspects primary of view %d" t.id t.view;
  t.view <- new_view;
  Hashtbl.reset t.slots;
  Hashtbl.reset t.in_flight;
  Batching.reset (batcher t);
  t.deliver_horizon <- 0;
  t.next_seq <- 0;
  t.collecting_view <- new_view;
  t.view_changes <- [];
  let delivered = List.rev t.delivered in
  let pending =
    Hashtbl.fold (fun rid (p, _) acc -> (rid, p) :: acc) t.pending []
    |> List.sort (fun (a, _) (b, _) -> request_id_compare a b)
  in
  let m = View_change { new_view; delivered; pending } in
  broadcast t m;
  (* Deliver our own view-change to ourselves if we are the new primary. *)
  if primary_of t new_view = t.id then
    t.view_changes <- [ (t.id, delivered, pending) ]

let maybe_install_view t =
  if
    primary_of t t.collecting_view = t.id
    && t.view = t.collecting_view
    && List.length t.view_changes >= commit_quorum t
  then begin
    (* Adopt the longest delivered history among the quorum, then re-propose
       first its suffix we have not executed, then all pending requests. *)
    let longest =
      List.fold_left
        (fun acc (_, d, _) -> if List.length d > List.length acc then d else acc)
        [] t.view_changes
    in
    broadcast t (New_view { view = t.view });
    t.next_seq <- 0;
    t.deliver_horizon <- 0;
    Hashtbl.reset t.slots;
    Hashtbl.reset t.in_flight;
    Batching.reset (batcher t);
    let pending_union =
      List.concat_map (fun (_, _, p) -> p) t.view_changes
      |> List.sort_uniq (fun (a, _) (b, _) -> request_id_compare a b)
    in
    let reproposals =
      longest
      @ List.filter
          (fun (rid, _) ->
            not (List.exists (fun (r, _) -> request_id_compare r rid = 0) longest))
          pending_union
    in
    (* Re-propose synchronously (bypassing the batcher): the new view must
       converge before fresh client traffic is batched behind it.  Requests
       already executed here are re-proposed too, so lagging replicas
       converge; execution is deduplicated by [executed]. *)
    List.iter (fun (rid, payload) -> order_batch t [ (rid, payload) ]) reproposals;
    t.view_changes <- []
  end

(* ------------------------------------------------------------------ *)
(* Message handling                                                    *)
(* ------------------------------------------------------------------ *)

let handle t ~src msg =
  if t.alive then
    match msg with
    | Pre_prepare { view; seq; batch; ts } ->
        if view = t.view && src = primary_of t view then begin
          let slot = slot_for t seq batch ts in
          broadcast t (Prepare { view; seq });
          (* our own prepare counts *)
          record_prepare t seq slot t.id;
          record_prepare t seq slot src
        end
    | Prepare { view; seq } ->
        if view = t.view then begin
          match Hashtbl.find_opt t.slots seq with
          | Some slot -> record_prepare t seq slot src
          | None ->
              (* prepare raced ahead of the pre-prepare on another link;
                 FIFO links make this impossible from the same sender, and
                 cross-sender races are handled by ignoring: the prepare
                 will be re-counted when our timeout re-syncs the view.  At
                 simulation scale we simply drop it; the 2f quorum does not
                 need every vote. *)
              ()
        end
    | Commit { view; seq } ->
        if view = t.view then (
          match Hashtbl.find_opt t.slots seq with
          | Some slot -> record_commit t slot src
          | None -> ())
    | View_change { new_view; delivered; pending } ->
        if new_view > t.view then begin
          (* Join the view change ourselves. *)
          t.view <- new_view - 1;
          start_view_change t
        end;
        if new_view = t.view && primary_of t new_view = t.id then begin
          if not (List.exists (fun (f, _, _) -> f = src) t.view_changes) then
            t.view_changes <- (src, delivered, pending) :: t.view_changes;
          maybe_install_view t
        end
    | Recover_request ->
        if not t.recovering then t.send ~dst:src (Recover_reply { view = t.view })
    | Recover_reply { view } ->
        if t.recovering then begin
          if not (List.mem_assoc src t.recover_views) then
            t.recover_views <- (src, view) :: t.recover_views;
          if List.length t.recover_views >= t.f + 1 then begin
            (* [f + 1] answers include at least one correct replica, so the
               max view we heard is no older than the ensemble's.  Jump
               there and force a view change: its history transfer is what
               brings us (and only costs the ensemble one view bump). *)
            t.recovering <- false;
            let v =
              List.fold_left (fun acc (_, v) -> max acc v) t.view t.recover_views
            in
            t.recover_views <- [];
            t.view <- v;
            start_view_change t
          end
        end
    | New_view { view } ->
        if view >= t.view && src = primary_of t view then begin
          t.view <- view;
          Hashtbl.reset t.slots;
          Hashtbl.reset t.in_flight;
          Batching.reset (batcher t);
          t.deliver_horizon <- 0;
          (* Reset pending timers: give the new primary a fresh window. *)
          let now = Sim.now t.sim in
          let rebased =
            Hashtbl.fold (fun rid (p, _) acc -> (rid, (p, now)) :: acc) t.pending []
          in
          Hashtbl.reset t.pending;
          List.iter (fun (rid, v) -> Hashtbl.replace t.pending rid v) rebased
        end

(* ------------------------------------------------------------------ *)
(* Timers                                                              *)
(* ------------------------------------------------------------------ *)

let rec tick t generation () =
  if t.alive && generation = t.generation then begin
    (* While recovering we do not know the real view yet, so suspecting the
       primary from a stale view would only add noise. *)
    if (not (is_primary t)) && not t.recovering then begin
      let now = Sim.now t.sim in
      let stuck =
        Hashtbl.fold
          (fun _ (_, since) acc ->
            acc
            || Sim_time.(t.config.order_timeout <= Sim_time.sub now since))
          t.pending false
      in
      if stuck then start_view_change t
    end;
    Sim.schedule t.sim ~after:t.config.check_interval (tick t generation)
  end

let start t =
  t.generation <- t.generation + 1;
  Sim.schedule t.sim ~after:Sim_time.zero (tick t t.generation)

let create ?(config = default_config) ?send_many ~sim ~id ~peers ~f ~send
    ~on_deliver () =
  assert (List.length peers >= (3 * f) + 1);
  let send_many =
    match send_many with
    | Some f -> f
    | None -> fun ~dsts msg -> List.iter (fun dst -> send ~dst msg) dsts
  in
  let t =
    {
      sim;
      id;
      peers;
      f;
      send;
      send_many;
      on_deliver;
      config;
      view = 0;
      alive = true;
      generation = 0;
      slots = Hashtbl.create 64;
      in_flight = Hashtbl.create 64;
      batcher = None;
      next_seq = 0;
      delivered = [];
      executed = Hashtbl.create 64;
      deliver_horizon = 0;
      pending = Hashtbl.create 64;
      view_changes = [];
      collecting_view = 0;
      recovering = false;
      recover_views = [];
    }
  in
  t.batcher <-
    Some
      (Batching.create ~sim ~config:config.batch ~flush:(fun items ->
           propose_batch t items));
  t

(** [crash t] silences the replica (crash or Byzantine-mute fault). *)
let crash t =
  t.alive <- false;
  t.generation <- t.generation + 1;
  t.recovering <- false;
  t.recover_views <- [];
  Batching.reset (batcher t)

let rec recover_tick t generation () =
  if t.alive && t.recovering && generation = t.generation then begin
    (* Re-ask until enough of the ensemble is reachable; requests are lost
       if we restarted into a partition. *)
    broadcast t Recover_request;
    Sim.schedule t.sim ~after:t.config.order_timeout (recover_tick t generation)
  end

(** [restart t] revives a crashed replica with its durable state (delivered
    history, execution dedup table) and kicks off view recovery. *)
let restart t =
  if not t.alive then begin
    t.alive <- true;
    Hashtbl.reset t.slots;
    Hashtbl.reset t.in_flight;
    Hashtbl.reset t.pending;
    Batching.reset (batcher t);
    t.view_changes <- [];
    t.deliver_horizon <- 0;
    t.next_seq <- 0;
    t.recovering <- true;
    t.recover_views <- [];
    Trace.debugf t.sim "pbft[%d] restarting (view %d)" t.id t.view;
    start t;
    Sim.schedule t.sim ~after:Sim_time.zero (recover_tick t t.generation)
  end

let delivered_count t = List.length t.delivered

(** Delivered history, oldest first (test observability). *)
let delivered_log t = List.rev t.delivered

(** [msg_size ~payload_size msg] models wire sizes; View_change carries a
    full history so its size reflects that. *)
let msg_size ~payload_size = function
  | Pre_prepare { batch; _ } ->
      List.fold_left (fun acc (_, p) -> acc + 16 + payload_size p) 40 batch
  | Prepare _ -> 40
  | Commit _ -> 40
  | View_change { delivered; pending; _ } ->
      let cost = List.fold_left (fun acc (_, p) -> acc + 16 + payload_size p) 0 in
      48 + cost delivered + cost pending
  | New_view _ -> 24
  | Recover_request -> 16
  | Recover_reply _ -> 24
