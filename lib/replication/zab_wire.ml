(** Binary codec for {!Zab} protocol messages (DESIGN.md §6g/§6h).

    Parametric in the payload codec, like ['p Zab.msg] itself: the
    deployment supplies [payload]/[of_payload] for its transaction type.
    Every variant is a list frame headed by a small integer tag; the
    decoder is total — malformed shapes come back as [Error].

    Tag registry (append-only; never reuse a retired value):
    0 Ping, 1 Propose, 2 Ack, 3 Commit, 4 Request_vote, 5 Vote,
    6 Sync_request, 7 Sync, 8 Snapshot_begin, 9 Snapshot_chunk,
    10 Snapshot_ack, 11 Join_request, 12 Fence, 13 Lease_grant,
    14 Observer_request.
    Timestamps ([Ping.sent], [Lease_grant.sent]) travel as integer
    nanoseconds of the sender's virtual clock.
    Entry payloads are themselves tagged: 0 App, 1 Cc_joint, 2 Cc_final.
    Membership frames: 0 Stable, 1 Joint. *)

open Edc_wire

let ( let* ) = Result.bind

let zxid_to_wire (z : Zab.zxid) = Wire.List [ Int z.epoch; Int z.counter ]

let zxid_of_wire = function
  | Wire.List [ Wire.Int epoch; Wire.Int counter ] ->
      Ok { Zab.epoch; counter }
  | _ -> Error "bad zxid"

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
        match f x with Ok y -> go (y :: acc) rest | Error _ as e -> e)
  in
  go [] l

let member_set_to_wire m = Wire.List (List.map (fun i -> Wire.Int i) m)

let member_set_of_wire = function
  | Wire.List ids ->
      map_result
        (function Wire.Int i -> Ok i | _ -> Error "bad member id")
        ids
  | _ -> Error "bad member set"

let membership_to_wire = function
  | Zab.Stable m -> Wire.List [ Int 0; member_set_to_wire m ]
  | Zab.Joint { c_old; c_new } ->
      Wire.List [ Int 1; member_set_to_wire c_old; member_set_to_wire c_new ]

let membership_of_wire = function
  | Wire.List [ Wire.Int 0; m ] ->
      let* m = member_set_of_wire m in
      Ok (Zab.Stable m)
  | Wire.List [ Wire.Int 1; old_; new_ ] ->
      let* c_old = member_set_of_wire old_ in
      let* c_new = member_set_of_wire new_ in
      Ok (Zab.Joint { c_old; c_new })
  | _ -> Error "bad membership"

(* Entry payloads are tagged so config changes travel inside the ordinary
   Propose/Sync frames: 0 = application payload, 1 = joint config entry,
   2 = final config entry. *)
let payload_to_wire payload = function
  | Zab.App p -> Wire.List [ Int 0; payload p ]
  | Zab.Config (Zab.Cc_joint { c_old; c_new }) ->
      Wire.List [ Int 1; member_set_to_wire c_old; member_set_to_wire c_new ]
  | Zab.Config (Zab.Cc_final { members }) ->
      Wire.List [ Int 2; member_set_to_wire members ]

let payload_of_wire of_payload = function
  | Wire.List [ Wire.Int 0; p ] ->
      let* p = of_payload p in
      Ok (Zab.App p)
  | Wire.List [ Wire.Int 1; old_; new_ ] ->
      let* c_old = member_set_of_wire old_ in
      let* c_new = member_set_of_wire new_ in
      Ok (Zab.Config (Zab.Cc_joint { c_old; c_new }))
  | Wire.List [ Wire.Int 2; m ] ->
      let* members = member_set_of_wire m in
      Ok (Zab.Config (Zab.Cc_final { members }))
  | _ -> Error "bad entry payload"

let entry_to_wire payload (e : 'p Zab.entry) =
  Wire.List [ zxid_to_wire e.zxid; payload_to_wire payload e.payload ]

let entry_of_wire of_payload = function
  | Wire.List [ z; p ] ->
      let* zxid = zxid_of_wire z in
      let* payload = payload_of_wire of_payload p in
      Ok { Zab.zxid; payload }
  | _ -> Error "bad log entry"

let to_wire ~payload (m : 'p Zab.msg) =
  let open Wire in
  match m with
  | Zab.Ping { epoch; committed; sent } ->
      List [ Int 0; Int epoch; Int committed; Int (Edc_simnet.Sim_time.to_ns sent) ]
  | Zab.Propose { epoch; index; prev_zxid; entries } ->
      List
        [ Int 1; Int epoch; Int index; zxid_to_wire prev_zxid;
          List (List.map (entry_to_wire payload) entries) ]
  | Zab.Ack { epoch; upto } -> List [ Int 2; Int epoch; Int upto ]
  | Zab.Commit { epoch; index } -> List [ Int 3; Int epoch; Int index ]
  | Zab.Request_vote { epoch; candidate; last_zxid } ->
      List [ Int 4; Int epoch; Int candidate; zxid_to_wire last_zxid ]
  | Zab.Vote { epoch } -> List [ Int 5; Int epoch ]
  | Zab.Sync_request { epoch; have } -> List [ Int 6; Int epoch; Int have ]
  | Zab.Sync { epoch; from; entries; committed } ->
      List
        [ Int 7; Int epoch; Int from;
          List (List.map (entry_to_wire payload) entries); Int committed ]
  | Zab.Snapshot_begin
      { epoch; base; total; chunk_size; digest; committed; config } ->
      List
        [ Int 8; Int epoch; Int base; Int total; Int chunk_size; Str digest;
          Int committed; membership_to_wire config ]
  | Zab.Snapshot_chunk { epoch; base; seq; data } ->
      List [ Int 9; Int epoch; Int base; Int seq; Str data ]
  | Zab.Snapshot_ack { epoch; base; received } ->
      List [ Int 10; Int epoch; Int base; Int received ]
  | Zab.Join_request { epoch; id } -> List [ Int 11; Int epoch; Int id ]
  | Zab.Fence { epoch } -> List [ Int 12; Int epoch ]
  | Zab.Lease_grant { epoch; sent } ->
      List [ Int 13; Int epoch; Int (Edc_simnet.Sim_time.to_ns sent) ]
  | Zab.Observer_request { epoch; id } -> List [ Int 14; Int epoch; Int id ]

let of_wire ~payload:of_payload w =
  let open Wire in
  match w with
  | List [ Int 0; Int epoch; Int committed; Int sent ] ->
      Ok (Zab.Ping { epoch; committed; sent = Edc_simnet.Sim_time.ns sent })
  | List [ Int 1; Int epoch; Int index; prev; List entries ] ->
      let* prev_zxid = zxid_of_wire prev in
      let* entries = map_result (entry_of_wire of_payload) entries in
      Ok (Zab.Propose { epoch; index; prev_zxid; entries })
  | List [ Int 2; Int epoch; Int upto ] -> Ok (Zab.Ack { epoch; upto })
  | List [ Int 3; Int epoch; Int index ] -> Ok (Zab.Commit { epoch; index })
  | List [ Int 4; Int epoch; Int candidate; z ] ->
      let* last_zxid = zxid_of_wire z in
      Ok (Zab.Request_vote { epoch; candidate; last_zxid })
  | List [ Int 5; Int epoch ] -> Ok (Zab.Vote { epoch })
  | List [ Int 6; Int epoch; Int have ] -> Ok (Zab.Sync_request { epoch; have })
  | List [ Int 7; Int epoch; Int from; List entries; Int committed ] ->
      let* entries = map_result (entry_of_wire of_payload) entries in
      Ok (Zab.Sync { epoch; from; entries; committed })
  | List
      [ Int 8; Int epoch; Int base; Int total; Int chunk_size; Str digest;
        Int committed; config ] ->
      let* config = membership_of_wire config in
      Ok
        (Zab.Snapshot_begin
           { epoch; base; total; chunk_size; digest; committed; config })
  | List [ Int 9; Int epoch; Int base; Int seq; Str data ] ->
      Ok (Zab.Snapshot_chunk { epoch; base; seq; data })
  | List [ Int 10; Int epoch; Int base; Int received ] ->
      Ok (Zab.Snapshot_ack { epoch; base; received })
  | List [ Int 11; Int epoch; Int id ] -> Ok (Zab.Join_request { epoch; id })
  | List [ Int 12; Int epoch ] -> Ok (Zab.Fence { epoch })
  | List [ Int 13; Int epoch; Int sent ] ->
      Ok (Zab.Lease_grant { epoch; sent = Edc_simnet.Sim_time.ns sent })
  | List [ Int 14; Int epoch; Int id ] -> Ok (Zab.Observer_request { epoch; id })
  | _ -> Error "bad zab message"

(* ------------------------------------------------------------------ *)
(* Streaming codec — byte-identical to the tree codec above; the tree
   stays as the reference implementation, and test/test_wire.ml fuzzes
   the two paths against each other.                                   *)
(* ------------------------------------------------------------------ *)

module W = Wire.Writer
module R = Wire.Reader

let write_zxid w (z : Zab.zxid) =
  W.begin_list w;
  W.int w z.epoch;
  W.int w z.counter;
  W.end_list w

let read_zxid r =
  R.begin_list r;
  let epoch = R.int r in
  let counter = R.int r in
  R.end_list r;
  { Zab.epoch; counter }

let write_member_set w m = W.list w W.int m
let read_member_set r = R.list r R.int

let write_membership w = function
  | Zab.Stable m ->
      W.begin_list w;
      W.int w 0;
      write_member_set w m;
      W.end_list w
  | Zab.Joint { c_old; c_new } ->
      W.begin_list w;
      W.int w 1;
      write_member_set w c_old;
      write_member_set w c_new;
      W.end_list w

let read_membership r =
  R.begin_list r;
  let v =
    match R.int r with
    | 0 ->
        let m = read_member_set r in
        Zab.Stable m
    | 1 ->
        let c_old = read_member_set r in
        let c_new = read_member_set r in
        Zab.Joint { c_old; c_new }
    | t -> R.error r (Printf.sprintf "bad membership tag %d" t)
  in
  R.end_list r;
  v

let write_payload_frame wp w = function
  | Zab.App p ->
      W.begin_list w;
      W.int w 0;
      wp w p;
      W.end_list w
  | Zab.Config (Zab.Cc_joint { c_old; c_new }) ->
      W.begin_list w;
      W.int w 1;
      write_member_set w c_old;
      write_member_set w c_new;
      W.end_list w
  | Zab.Config (Zab.Cc_final { members }) ->
      W.begin_list w;
      W.int w 2;
      write_member_set w members;
      W.end_list w

let read_payload_frame rp r =
  R.begin_list r;
  let v =
    match R.int r with
    | 0 -> Zab.App (rp r)
    | 1 ->
        let c_old = read_member_set r in
        let c_new = read_member_set r in
        Zab.Config (Zab.Cc_joint { c_old; c_new })
    | 2 ->
        let members = read_member_set r in
        Zab.Config (Zab.Cc_final { members })
    | t -> R.error r (Printf.sprintf "bad entry payload tag %d" t)
  in
  R.end_list r;
  v

let write_entry wp w (e : 'p Zab.entry) =
  W.begin_list w;
  write_zxid w e.zxid;
  write_payload_frame wp w e.payload;
  W.end_list w

let read_entry rp r =
  R.begin_list r;
  let zxid = read_zxid r in
  let payload = read_payload_frame rp r in
  R.end_list r;
  { Zab.zxid; payload }

let write ~payload:wp w (m : 'p Zab.msg) =
  W.begin_list w;
  (match m with
  | Zab.Ping { epoch; committed; sent } ->
      W.int w 0;
      W.int w epoch;
      W.int w committed;
      W.int w (Edc_simnet.Sim_time.to_ns sent)
  | Zab.Propose { epoch; index; prev_zxid; entries } ->
      W.int w 1;
      W.int w epoch;
      W.int w index;
      write_zxid w prev_zxid;
      W.list w (write_entry wp) entries
  | Zab.Ack { epoch; upto } ->
      W.int w 2;
      W.int w epoch;
      W.int w upto
  | Zab.Commit { epoch; index } ->
      W.int w 3;
      W.int w epoch;
      W.int w index
  | Zab.Request_vote { epoch; candidate; last_zxid } ->
      W.int w 4;
      W.int w epoch;
      W.int w candidate;
      write_zxid w last_zxid
  | Zab.Vote { epoch } ->
      W.int w 5;
      W.int w epoch
  | Zab.Sync_request { epoch; have } ->
      W.int w 6;
      W.int w epoch;
      W.int w have
  | Zab.Sync { epoch; from; entries; committed } ->
      W.int w 7;
      W.int w epoch;
      W.int w from;
      W.list w (write_entry wp) entries;
      W.int w committed
  | Zab.Snapshot_begin { epoch; base; total; chunk_size; digest; committed; config }
    ->
      W.int w 8;
      W.int w epoch;
      W.int w base;
      W.int w total;
      W.int w chunk_size;
      W.str w digest;
      W.int w committed;
      write_membership w config
  | Zab.Snapshot_chunk { epoch; base; seq; data } ->
      W.int w 9;
      W.int w epoch;
      W.int w base;
      W.int w seq;
      W.str w data
  | Zab.Snapshot_ack { epoch; base; received } ->
      W.int w 10;
      W.int w epoch;
      W.int w base;
      W.int w received
  | Zab.Join_request { epoch; id } ->
      W.int w 11;
      W.int w epoch;
      W.int w id
  | Zab.Fence { epoch } ->
      W.int w 12;
      W.int w epoch
  | Zab.Lease_grant { epoch; sent } ->
      W.int w 13;
      W.int w epoch;
      W.int w (Edc_simnet.Sim_time.to_ns sent)
  | Zab.Observer_request { epoch; id } ->
      W.int w 14;
      W.int w epoch;
      W.int w id);
  W.end_list w

let read ~payload:rp r =
  R.begin_list r;
  let m =
    match R.int r with
    | 0 ->
        let epoch = R.int r in
        let committed = R.int r in
        let sent = Edc_simnet.Sim_time.ns (R.int r) in
        Zab.Ping { epoch; committed; sent }
    | 1 ->
        let epoch = R.int r in
        let index = R.int r in
        let prev_zxid = read_zxid r in
        let entries = R.list r (read_entry rp) in
        Zab.Propose { epoch; index; prev_zxid; entries }
    | 2 ->
        let epoch = R.int r in
        let upto = R.int r in
        Zab.Ack { epoch; upto }
    | 3 ->
        let epoch = R.int r in
        let index = R.int r in
        Zab.Commit { epoch; index }
    | 4 ->
        let epoch = R.int r in
        let candidate = R.int r in
        let last_zxid = read_zxid r in
        Zab.Request_vote { epoch; candidate; last_zxid }
    | 5 ->
        let epoch = R.int r in
        Zab.Vote { epoch }
    | 6 ->
        let epoch = R.int r in
        let have = R.int r in
        Zab.Sync_request { epoch; have }
    | 7 ->
        let epoch = R.int r in
        let from = R.int r in
        let entries = R.list r (read_entry rp) in
        let committed = R.int r in
        Zab.Sync { epoch; from; entries; committed }
    | 8 ->
        let epoch = R.int r in
        let base = R.int r in
        let total = R.int r in
        let chunk_size = R.int r in
        let digest = R.str r in
        let committed = R.int r in
        let config = read_membership r in
        Zab.Snapshot_begin
          { epoch; base; total; chunk_size; digest; committed; config }
    | 9 ->
        let epoch = R.int r in
        let base = R.int r in
        let seq = R.int r in
        let data = R.str r in
        Zab.Snapshot_chunk { epoch; base; seq; data }
    | 10 ->
        let epoch = R.int r in
        let base = R.int r in
        let received = R.int r in
        Zab.Snapshot_ack { epoch; base; received }
    | 11 ->
        let epoch = R.int r in
        let id = R.int r in
        Zab.Join_request { epoch; id }
    | 12 ->
        let epoch = R.int r in
        Zab.Fence { epoch }
    | 13 ->
        let epoch = R.int r in
        let sent = Edc_simnet.Sim_time.ns (R.int r) in
        Zab.Lease_grant { epoch; sent }
    | 14 ->
        let epoch = R.int r in
        let id = R.int r in
        Zab.Observer_request { epoch; id }
    | t -> R.error r (Printf.sprintf "bad zab tag %d" t)
  in
  R.end_list r;
  m
