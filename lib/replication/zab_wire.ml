(** Binary codec for {!Zab} protocol messages (DESIGN.md §6g).

    Parametric in the payload codec, like ['p Zab.msg] itself: the
    deployment supplies [payload]/[of_payload] for its transaction type.
    Every variant is a list frame headed by a small integer tag; the
    decoder is total — malformed shapes come back as [Error]. *)

open Edc_wire

let ( let* ) = Result.bind

let zxid_to_wire (z : Zab.zxid) = Wire.List [ Int z.epoch; Int z.counter ]

let zxid_of_wire = function
  | Wire.List [ Wire.Int epoch; Wire.Int counter ] ->
      Ok { Zab.epoch; counter }
  | _ -> Error "bad zxid"

let entry_to_wire payload (e : 'p Zab.entry) =
  Wire.List [ zxid_to_wire e.zxid; payload e.payload ]

let entry_of_wire of_payload = function
  | Wire.List [ z; p ] ->
      let* zxid = zxid_of_wire z in
      let* payload = of_payload p in
      Ok { Zab.zxid; payload }
  | _ -> Error "bad log entry"

let to_wire ~payload (m : 'p Zab.msg) =
  let open Wire in
  match m with
  | Zab.Ping { epoch; committed } -> List [ Int 0; Int epoch; Int committed ]
  | Zab.Propose { epoch; index; prev_zxid; entries } ->
      List
        [ Int 1; Int epoch; Int index; zxid_to_wire prev_zxid;
          List (List.map (entry_to_wire payload) entries) ]
  | Zab.Ack { epoch; upto } -> List [ Int 2; Int epoch; Int upto ]
  | Zab.Commit { epoch; index } -> List [ Int 3; Int epoch; Int index ]
  | Zab.Request_vote { epoch; candidate; last_zxid } ->
      List [ Int 4; Int epoch; Int candidate; zxid_to_wire last_zxid ]
  | Zab.Vote { epoch } -> List [ Int 5; Int epoch ]
  | Zab.Sync_request { epoch; have } -> List [ Int 6; Int epoch; Int have ]
  | Zab.Sync { epoch; from; entries; committed } ->
      List
        [ Int 7; Int epoch; Int from;
          List (List.map (entry_to_wire payload) entries); Int committed ]
  | Zab.Snapshot_begin { epoch; base; total; chunk_size; digest; committed }
    ->
      List
        [ Int 8; Int epoch; Int base; Int total; Int chunk_size; Str digest;
          Int committed ]
  | Zab.Snapshot_chunk { epoch; base; seq; data } ->
      List [ Int 9; Int epoch; Int base; Int seq; Str data ]
  | Zab.Snapshot_ack { epoch; base; received } ->
      List [ Int 10; Int epoch; Int base; Int received ]

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
        match f x with Ok y -> go (y :: acc) rest | Error _ as e -> e)
  in
  go [] l

let of_wire ~payload:of_payload w =
  let open Wire in
  match w with
  | List [ Int 0; Int epoch; Int committed ] ->
      Ok (Zab.Ping { epoch; committed })
  | List [ Int 1; Int epoch; Int index; prev; List entries ] ->
      let* prev_zxid = zxid_of_wire prev in
      let* entries = map_result (entry_of_wire of_payload) entries in
      Ok (Zab.Propose { epoch; index; prev_zxid; entries })
  | List [ Int 2; Int epoch; Int upto ] -> Ok (Zab.Ack { epoch; upto })
  | List [ Int 3; Int epoch; Int index ] -> Ok (Zab.Commit { epoch; index })
  | List [ Int 4; Int epoch; Int candidate; z ] ->
      let* last_zxid = zxid_of_wire z in
      Ok (Zab.Request_vote { epoch; candidate; last_zxid })
  | List [ Int 5; Int epoch ] -> Ok (Zab.Vote { epoch })
  | List [ Int 6; Int epoch; Int have ] -> Ok (Zab.Sync_request { epoch; have })
  | List [ Int 7; Int epoch; Int from; List entries; Int committed ] ->
      let* entries = map_result (entry_of_wire of_payload) entries in
      Ok (Zab.Sync { epoch; from; entries; committed })
  | List
      [ Int 8; Int epoch; Int base; Int total; Int chunk_size; Str digest;
        Int committed ] ->
      Ok
        (Zab.Snapshot_begin
           { epoch; base; total; chunk_size; digest; committed })
  | List [ Int 9; Int epoch; Int base; Int seq; Str data ] ->
      Ok (Zab.Snapshot_chunk { epoch; base; seq; data })
  | List [ Int 10; Int epoch; Int base; Int received ] ->
      Ok (Zab.Snapshot_ack { epoch; base; received })
  | _ -> Error "bad zab message"
