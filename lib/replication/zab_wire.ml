(** Binary codec for {!Zab} protocol messages (DESIGN.md §6g/§6h).

    Parametric in the payload codec, like ['p Zab.msg] itself: the
    deployment supplies [payload]/[of_payload] for its transaction type.
    Every variant is a list frame headed by a small integer tag; the
    decoder is total — malformed shapes come back as [Error].

    Tag registry (append-only; never reuse a retired value):
    0 Ping, 1 Propose, 2 Ack, 3 Commit, 4 Request_vote, 5 Vote,
    6 Sync_request, 7 Sync, 8 Snapshot_begin, 9 Snapshot_chunk,
    10 Snapshot_ack, 11 Join_request, 12 Fence, 13 Lease_grant,
    14 Observer_request.
    Timestamps ([Ping.sent], [Lease_grant.sent]) travel as integer
    nanoseconds of the sender's virtual clock.
    Entry payloads are themselves tagged: 0 App, 1 Cc_joint, 2 Cc_final.
    Membership frames: 0 Stable, 1 Joint. *)

open Edc_wire

let ( let* ) = Result.bind

let zxid_to_wire (z : Zab.zxid) = Wire.List [ Int z.epoch; Int z.counter ]

let zxid_of_wire = function
  | Wire.List [ Wire.Int epoch; Wire.Int counter ] ->
      Ok { Zab.epoch; counter }
  | _ -> Error "bad zxid"

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
        match f x with Ok y -> go (y :: acc) rest | Error _ as e -> e)
  in
  go [] l

let member_set_to_wire m = Wire.List (List.map (fun i -> Wire.Int i) m)

let member_set_of_wire = function
  | Wire.List ids ->
      map_result
        (function Wire.Int i -> Ok i | _ -> Error "bad member id")
        ids
  | _ -> Error "bad member set"

let membership_to_wire = function
  | Zab.Stable m -> Wire.List [ Int 0; member_set_to_wire m ]
  | Zab.Joint { c_old; c_new } ->
      Wire.List [ Int 1; member_set_to_wire c_old; member_set_to_wire c_new ]

let membership_of_wire = function
  | Wire.List [ Wire.Int 0; m ] ->
      let* m = member_set_of_wire m in
      Ok (Zab.Stable m)
  | Wire.List [ Wire.Int 1; old_; new_ ] ->
      let* c_old = member_set_of_wire old_ in
      let* c_new = member_set_of_wire new_ in
      Ok (Zab.Joint { c_old; c_new })
  | _ -> Error "bad membership"

(* Entry payloads are tagged so config changes travel inside the ordinary
   Propose/Sync frames: 0 = application payload, 1 = joint config entry,
   2 = final config entry. *)
let payload_to_wire payload = function
  | Zab.App p -> Wire.List [ Int 0; payload p ]
  | Zab.Config (Zab.Cc_joint { c_old; c_new }) ->
      Wire.List [ Int 1; member_set_to_wire c_old; member_set_to_wire c_new ]
  | Zab.Config (Zab.Cc_final { members }) ->
      Wire.List [ Int 2; member_set_to_wire members ]

let payload_of_wire of_payload = function
  | Wire.List [ Wire.Int 0; p ] ->
      let* p = of_payload p in
      Ok (Zab.App p)
  | Wire.List [ Wire.Int 1; old_; new_ ] ->
      let* c_old = member_set_of_wire old_ in
      let* c_new = member_set_of_wire new_ in
      Ok (Zab.Config (Zab.Cc_joint { c_old; c_new }))
  | Wire.List [ Wire.Int 2; m ] ->
      let* members = member_set_of_wire m in
      Ok (Zab.Config (Zab.Cc_final { members }))
  | _ -> Error "bad entry payload"

let entry_to_wire payload (e : 'p Zab.entry) =
  Wire.List [ zxid_to_wire e.zxid; payload_to_wire payload e.payload ]

let entry_of_wire of_payload = function
  | Wire.List [ z; p ] ->
      let* zxid = zxid_of_wire z in
      let* payload = payload_of_wire of_payload p in
      Ok { Zab.zxid; payload }
  | _ -> Error "bad log entry"

let to_wire ~payload (m : 'p Zab.msg) =
  let open Wire in
  match m with
  | Zab.Ping { epoch; committed; sent } ->
      List [ Int 0; Int epoch; Int committed; Int (Edc_simnet.Sim_time.to_ns sent) ]
  | Zab.Propose { epoch; index; prev_zxid; entries } ->
      List
        [ Int 1; Int epoch; Int index; zxid_to_wire prev_zxid;
          List (List.map (entry_to_wire payload) entries) ]
  | Zab.Ack { epoch; upto } -> List [ Int 2; Int epoch; Int upto ]
  | Zab.Commit { epoch; index } -> List [ Int 3; Int epoch; Int index ]
  | Zab.Request_vote { epoch; candidate; last_zxid } ->
      List [ Int 4; Int epoch; Int candidate; zxid_to_wire last_zxid ]
  | Zab.Vote { epoch } -> List [ Int 5; Int epoch ]
  | Zab.Sync_request { epoch; have } -> List [ Int 6; Int epoch; Int have ]
  | Zab.Sync { epoch; from; entries; committed } ->
      List
        [ Int 7; Int epoch; Int from;
          List (List.map (entry_to_wire payload) entries); Int committed ]
  | Zab.Snapshot_begin
      { epoch; base; total; chunk_size; digest; committed; config } ->
      List
        [ Int 8; Int epoch; Int base; Int total; Int chunk_size; Str digest;
          Int committed; membership_to_wire config ]
  | Zab.Snapshot_chunk { epoch; base; seq; data } ->
      List [ Int 9; Int epoch; Int base; Int seq; Str data ]
  | Zab.Snapshot_ack { epoch; base; received } ->
      List [ Int 10; Int epoch; Int base; Int received ]
  | Zab.Join_request { epoch; id } -> List [ Int 11; Int epoch; Int id ]
  | Zab.Fence { epoch } -> List [ Int 12; Int epoch ]
  | Zab.Lease_grant { epoch; sent } ->
      List [ Int 13; Int epoch; Int (Edc_simnet.Sim_time.to_ns sent) ]
  | Zab.Observer_request { epoch; id } -> List [ Int 14; Int epoch; Int id ]

let of_wire ~payload:of_payload w =
  let open Wire in
  match w with
  | List [ Int 0; Int epoch; Int committed; Int sent ] ->
      Ok (Zab.Ping { epoch; committed; sent = Edc_simnet.Sim_time.ns sent })
  | List [ Int 1; Int epoch; Int index; prev; List entries ] ->
      let* prev_zxid = zxid_of_wire prev in
      let* entries = map_result (entry_of_wire of_payload) entries in
      Ok (Zab.Propose { epoch; index; prev_zxid; entries })
  | List [ Int 2; Int epoch; Int upto ] -> Ok (Zab.Ack { epoch; upto })
  | List [ Int 3; Int epoch; Int index ] -> Ok (Zab.Commit { epoch; index })
  | List [ Int 4; Int epoch; Int candidate; z ] ->
      let* last_zxid = zxid_of_wire z in
      Ok (Zab.Request_vote { epoch; candidate; last_zxid })
  | List [ Int 5; Int epoch ] -> Ok (Zab.Vote { epoch })
  | List [ Int 6; Int epoch; Int have ] -> Ok (Zab.Sync_request { epoch; have })
  | List [ Int 7; Int epoch; Int from; List entries; Int committed ] ->
      let* entries = map_result (entry_of_wire of_payload) entries in
      Ok (Zab.Sync { epoch; from; entries; committed })
  | List
      [ Int 8; Int epoch; Int base; Int total; Int chunk_size; Str digest;
        Int committed; config ] ->
      let* config = membership_of_wire config in
      Ok
        (Zab.Snapshot_begin
           { epoch; base; total; chunk_size; digest; committed; config })
  | List [ Int 9; Int epoch; Int base; Int seq; Str data ] ->
      Ok (Zab.Snapshot_chunk { epoch; base; seq; data })
  | List [ Int 10; Int epoch; Int base; Int received ] ->
      Ok (Zab.Snapshot_ack { epoch; base; received })
  | List [ Int 11; Int epoch; Int id ] -> Ok (Zab.Join_request { epoch; id })
  | List [ Int 12; Int epoch ] -> Ok (Zab.Fence { epoch })
  | List [ Int 13; Int epoch; Int sent ] ->
      Ok (Zab.Lease_grant { epoch; sent = Edc_simnet.Sim_time.ns sent })
  | List [ Int 14; Int epoch; Int id ] -> Ok (Zab.Observer_request { epoch; id })
  | _ -> Error "bad zab message"
