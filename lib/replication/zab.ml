(** Zab-like primary-backup atomic broadcast.

    Reproduces the replication substrate that ZooKeeper (and therefore the
    paper's EZK) runs on: a single primary orders all state transactions,
    disseminates them to backups, commits on a majority quorum, and backups
    apply the committed prefix in order (Junqueira et al., "Zab:
    High-performance broadcast for primary-backup systems", DSN '11).

    For leader recovery we use a vote-based election (a la Raft): a replica
    that stops hearing the leader's heartbeats becomes a candidate for the
    next epoch; voters grant at most one vote per epoch and only to
    candidates whose log is at least as up to date as theirs, which
    guarantees the winner holds every committed transaction.  The winner
    then synchronizes followers by shipping its log suffix.  This differs
    from ZooKeeper's Fast Leader Election in mechanism but provides the
    same guarantee the paper relies on (committed state survives primary
    failure, cf. §3.8), which is what our fault-tolerance experiments
    exercise.

    Membership is dynamic: the member set itself is replicated through the
    log using joint consensus (Raft §6 / ZooKeeper reconfig).  A change
    from [c_old] to [c_new] is proposed as a [Cc_joint] entry; from the
    moment that entry is *appended*, commits and elections require
    majorities of BOTH sets, so no decision can be made by [c_old] alone or
    [c_new] alone — the two-quorum overlap is what makes the transition
    safe under leader failure.  Once the joint entry commits, the leader
    proposes the [Cc_final] entry that collapses membership to [c_new].
    New replicas join as non-voting learners: they are bootstrapped with
    the chunked snapshot transfer plus log sync and only enter a config
    (gaining a vote) once caught up.  Replicas outside the config are
    fenced: voters ignore their campaigns and the leader tells them to
    stand down, so a deposed member can never win an election (and the
    deployment uses {!is_fenced} to refuse serving reads).

    The module is transport-agnostic: the deployment supplies a [send]
    function and feeds incoming messages to {!handle}.  All timers run on
    the shared simulator. *)

open Edc_simnet

type zxid = { epoch : int; counter : int }

let zxid_zero = { epoch = 0; counter = 0 }

let zxid_compare a b =
  match Int.compare a.epoch b.epoch with
  | 0 -> Int.compare a.counter b.counter
  | c -> c

let zxid_geq a b = zxid_compare a b >= 0

let pp_zxid ppf z = Fmt.pf ppf "%d.%d" z.epoch z.counter

(* ------------------------------------------------------------------ *)
(* Membership                                                          *)
(* ------------------------------------------------------------------ *)

type member_set = int list

type membership =
  | Stable of member_set
  | Joint of { c_old : member_set; c_new : member_set }

type config_change =
  | Cc_joint of { c_old : member_set; c_new : member_set }
  | Cc_final of { members : member_set }

let pp_member_set ppf m = Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) m

let pp_membership ppf = function
  | Stable m -> pp_member_set ppf m
  | Joint { c_old; c_new } ->
      Fmt.pf ppf "joint(%a->%a)" pp_member_set c_old pp_member_set c_new

let pp_config_change ppf = function
  | Cc_joint { c_old; c_new } ->
      Fmt.pf ppf "joint(%a->%a)" pp_member_set c_old pp_member_set c_new
  | Cc_final { members } -> Fmt.pf ppf "final(%a)" pp_member_set members

type 'p payload = App of 'p | Config of config_change

type 'p entry = { zxid : zxid; payload : 'p payload }

type 'p msg =
  | Ping of { epoch : int; committed : int; sent : Sim_time.t }
      (** leader heartbeat; also carries the commit horizon so idle
          followers still learn about commits.  [sent] is the leader's
          local (possibly skewed) clock reading at transmission time: the
          lease grant echoes it back, so the leader can anchor the lease
          expiry at its own send time — the only anchor that is provably
          on the follower's side of the promise under bounded clock
          error (see {!Lease_grant}). *)
  | Propose of {
      epoch : int;
      index : int;
      prev_zxid : zxid;  (** zxid of the leader's entry at [index - 1] *)
      entries : 'p entry list;
    }
      (** a group-committed batch of consecutive entries starting at
          absolute index [index]; each entry carries its own zxid.
          [prev_zxid] is the log-matching check (Raft's AppendEntries
          rule): a follower whose entry at [index - 1] differs holds a
          divergent tail and must re-sync instead of acking *)
  | Ack of { epoch : int; upto : int }
      (** cumulative: the follower durably holds the log prefix of length
          [upto] (FIFO links make per-entry acks redundant) *)
  | Commit of { epoch : int; index : int }
  | Request_vote of { epoch : int; candidate : int; last_zxid : zxid }
  | Vote of { epoch : int }
  | Sync_request of { epoch : int; have : int }
      (** follower asks the leader for entries from index [have] *)
  | Sync of { epoch : int; from : int; entries : 'p entry list; committed : int }
  | Snapshot_begin of {
      epoch : int;
      base : int;  (** the snapshot covers entries [0, base) *)
      total : int;  (** blob size in bytes *)
      chunk_size : int;
      digest : string;  (** of the whole blob; guards chunk-resume *)
      committed : int;
      config : membership;
          (** membership in effect at [base]: config entries below the
              compaction horizon live only here, so a bootstrapping
              learner can reconstruct the member set *)
    }
      (** opens a chunked state transfer to a follower that lags behind the
          leader's log-compaction horizon (ZooKeeper's snapshot + txn-log
          recovery).  The blob itself follows in [Snapshot_chunk]s under
          flow control; the retained log suffix is fetched afterwards via
          the ordinary [Sync_request]/[Sync] path. *)
  | Snapshot_chunk of { epoch : int; base : int; seq : int; data : string }
      (** chunk [seq] (0-based) of the snapshot blob for horizon [base] *)
  | Snapshot_ack of { epoch : int; base : int; received : int }
      (** cumulative: the follower holds the contiguous chunk prefix
          [0, received).  A duplicate ack (no progress since the last one)
          doubles as a retransmit solicit after drops or a partition heal —
          the leader resumes from [received], never from chunk 0. *)
  | Join_request of { epoch : int; id : int }
      (** learner handshake: a non-member asks the leader to adopt it as a
          non-voting learner and bootstrap it (snapshot + log sync);
          re-broadcast on silence, so it survives leader changes and
          crash/restart of a half-bootstrapped learner *)
  | Fence of { epoch : int }
      (** leader to a replica outside the config: stand down.  The
          recipient stops campaigning and stops serving reads; it unfences
          only if a later config readmits it. *)
  | Lease_grant of { epoch : int; sent : Sim_time.t }
      (** a voter's answer to a [Ping]: "I promise not to grant any vote
          for the next [lease_duration] on my clock".  [sent] echoes the
          ping's send timestamp; the leader treats the grant as live until
          [sent + lease_duration - 2ε] on its OWN clock — anchoring at the
          grant's receive time would be unsound, since message delay can
          push a receive-anchored expiry past the end of the follower's
          promise. *)
  | Observer_request of { epoch : int; id : int }
      (** observer handshake: a permanent non-voting replica asks the
          leader to feed it the commit stream (bootstrap via snapshot +
          log sync, same as a learner) — but unlike [Join_request] it
          never leads to promotion; re-broadcast on silence so it
          survives leader changes *)

type role = Leader | Follower | Candidate

let pp_role ppf = function
  | Leader -> Fmt.string ppf "leader"
  | Follower -> Fmt.string ppf "follower"
  | Candidate -> Fmt.string ppf "candidate"

type config = {
  heartbeat_interval : Sim_time.t;
  election_timeout : Sim_time.t;
      (** base timeout; each replica adds [id * election_stagger] so that
          timeouts are staggered deterministically *)
  election_stagger : Sim_time.t;
  batch : Batching.config;
      (** leader-side group commit: proposals accumulated while the
          previous batch syncs ride the next one *)
  unsafe_skip_log_matching : bool;
      (** TEST ONLY: disable the follower-side log-matching checks below,
          resurrecting the divergent-tail double-apply bug for the
          linearizability checker's mutation self-test *)
  unsafe_single_step_reconfig : bool;
      (** TEST ONLY: apply a [Cc_joint] entry as [Stable c_new] the moment
          it is appended — the classic one-step reconfiguration bug.
          During the transition a majority of [c_old] and a majority of
          [c_new] can be disjoint, so two leaders can commit independently
          and committed entries are lost.  Used to prove the checker and
          the regression tests convict exactly this. *)
  snapshot_chunk_size : int;
      (** state transfer streams the snapshot blob in pieces of this many
          bytes (counted by the deployment's [wire_size]) *)
  snapshot_window : int;
      (** chunks the leader keeps in flight beyond the follower's
          cumulative ack *)
  lease_duration : Sim_time.t;
      (** leader-lease length [D].  Voters answering a heartbeat promise
          not to grant votes (or campaign) for [D] on their local clock;
          the leader holding live grants from a majority serves
          linearizable reads locally.  Must stay below
          [election_timeout], so a promise never outlives the silence
          that triggers elections and availability is unaffected.
          [Sim_time.zero] disables leases entirely. *)
  clock_skew_bound : Sim_time.t;
      (** ε: the assumed bound on any replica's virtual-clock offset from
          real time.  The leader subtracts 2ε from every grant (its own
          clock may read up to ε late at expiry while the follower's read
          up to ε early at the promise), so lease reads stay linearizable
          for any skew within ±ε; skew beyond the bound voids the
          safety argument (which is what the clock-skew nemesis probes) *)
  unsafe_ignore_lease_expiry : bool;
      (** TEST ONLY: the leader treats every grant it ever received as
          live forever, so a deposed leader keeps serving "linearizable"
          reads from stale state.  Exists to prove the checker's
          stale-read detector convicts exactly this; never enable outside
          tests. *)
}

let default_config =
  {
    heartbeat_interval = Sim_time.ms 50;
    election_timeout = Sim_time.ms 200;
    election_stagger = Sim_time.ms 40;
    batch = Batching.off;
    unsafe_skip_log_matching = false;
    unsafe_single_step_reconfig = false;
    snapshot_chunk_size = 8192;
    snapshot_window = 8;
    lease_duration = Sim_time.ms 120;
    clock_skew_bound = Sim_time.ms 10;
    unsafe_ignore_lease_expiry = false;
  }

type lease_stats = {
  mutable grants_sent : int;  (** follower: promises made (Lease_grants sent) *)
  mutable grants_received : int;  (** leader: grants accepted from voters *)
  mutable reads_held : int;  (** leader: {!can_serve_lease_read} said yes *)
  mutable reads_expired : int;
      (** leader: {!can_serve_lease_read} said no (expired/never acquired) *)
  mutable vote_refusals : int;
      (** votes (or own campaigns) refused because a promise was
          outstanding *)
}

type reconfig_stats = {
  mutable joins_requested : int;
      (** leader: distinct learners adopted after a [Join_request] *)
  mutable joint_proposed : int;  (** leader: [Cc_joint] entries proposed *)
  mutable joint_commits : int;  (** [Cc_joint] entries committed (delivered) *)
  mutable finals_committed : int;  (** [Cc_final] entries committed *)
  mutable joins_completed : int;
      (** members that entered the stable config via a committed final *)
  mutable leaves_requested : int;  (** leader: [remove_server] accepted *)
  mutable leaves_completed : int;
      (** members that left the stable config via a committed final *)
  mutable aborted : int;
      (** joint entries truncated away uncommitted (a new leader that never
          saw the joint entry rewrote the tail) *)
  mutable fences : int;  (** times this replica was fenced *)
  mutable catchup_ms : float list;
      (** leader: per-promoted-learner bootstrap time, newest first — from
          [Join_request] adoption to the ack that proved it caught up *)
}

type 'p t = {
  sim : Sim.t;
  id : int;
  send : dst:int -> 'p msg -> unit;
  send_many : dsts:int list -> 'p msg -> unit;
      (** one message value to many peers; the TCP transport encodes it
          once (encode-once broadcast) *)
  on_deliver : zxid -> 'p -> unit;
  mutable on_role_change : role -> unit;
  config : config;
  (* --- persistent state (survives crash/restart) --- *)
  log : 'p entry Vec.t;  (** entries [base, base + Vec.length log) *)
  mutable base : int;  (** log-compaction horizon: absolute index of log.(0) *)
  mutable last_compacted_zxid : zxid;
  mutable snap_take : (unit -> string) option;
      (** lazy serializer for the app snapshot covering [0, base): captured
          (cheaply) at compaction time, forced only when a state transfer
          actually needs the bytes *)
  mutable snap_cache : (int * string) option;
      (** (base, blob): the forced serialization, reused until the next
          compaction moves the horizon *)
  mutable install_snapshot : (string -> (unit, string) result) option;
  mutable current_epoch : int;
  mutable voted_epoch : int;  (** highest epoch we granted a vote in *)
  mutable committed : int;  (** length of the committed log prefix *)
  mutable verified : int;
      (** length of the log prefix known to match the current epoch's
          leader.  Entries above it may be a divergent uncommitted tail
          from a deposed leader, so acks and commit advancement are both
          clamped to it; grafts and matching proposals extend it.  Resets
          to [committed] (always consistent, by the election rule) when a
          new epoch is adopted.  Invariant: committed <= verified <=
          abs_len. *)
  mutable base_config : membership;
      (** membership in effect just below [base]: the fold of every config
          entry that was compacted away, starting from the creation-time
          member set (persistent, moves only at compaction/installation) *)
  mutable members : membership;
      (** membership per this replica's log: [base_config] folded over the
          retained config entries.  Configs take effect at APPEND time
          (Raft §6), so this can run ahead of the committed prefix. *)
  mutable config_index : int;
      (** absolute index of the entry that set [members]; [base - 1] when
          no retained entry did (i.e. [members = base_config]) *)
  mutable last_stable : member_set;
      (** the last committed stable config (for join/leave accounting) *)
  mutable fenced : bool;
      (** outside the config per the leader (or a committed final): don't
          campaign, don't serve reads.  Persists across crash/restart;
          cleared if a config readmits us. *)
  created_learner : bool;
  created_observer : bool;
      (** permanent non-voting member: consumes the commit stream and
          serves sequentially-consistent reads, never promoted, never in
          any quorum or election *)
  mutable joining : bool;
      (** we are a learner still working toward a vote: keep broadcasting
          [Join_request] on silence until a committed final admits us *)
  mutable finalized : bool;
      (** a committed final admitted us at least once (always true for
          replicas created as members) *)
  (* --- volatile state --- *)
  mutable role : role;
  mutable leader_hint : int option;
  mutable alive : bool;
  mutable generation : int;  (** invalidates timers across crash/restart *)
  mutable votes : int list;  (** voters for us in [current_epoch] *)
  mutable next_counter : int;  (** leader: next zxid counter to assign *)
  match_len : (int, int) Hashtbl.t;
      (** leader: per-follower acked prefix length in [current_epoch] *)
  mutable learners : int list;
      (** leader: adopted non-voting learners (receive the replication
          stream, excluded from quorums); volatile — learners re-adopt
          themselves at the next leader via [Join_request] *)
  mutable observers : int list;
      (** leader: adopted observers — like learners they receive the full
          replication stream and count toward no quorum, but they are
          never promoted; volatile, observers re-announce via
          [Observer_request] *)
  mutable clock_skew : Sim_time.t;
      (** offset of this replica's virtual clock from simulated real time
          (nemesis-settable, may be negative).  Skew affects only local
          clock READINGS — lease promises and expiries — never the
          simulator's timer scheduling. *)
  mutable lease_promise_until : Sim_time.t;
      (** voter: end (on the LOCAL clock) of the no-vote promise made
          with the latest lease grant; never shrinks *)
  lease_grants : (int, Sim_time.t) Hashtbl.t;
      (** leader: per-voter expiry (on the leader's LOCAL clock) of the
          latest grant: ping-send time + lease_duration - 2ε *)
  lease : lease_stats;
  mutable pending_joins : (int * Sim_time.t) list;
      (** leader: learners awaiting promotion, with adoption time *)
  mutable pending_joint : bool;  (** leader: a [Cc_joint] sits in the batcher *)
  mutable pending_final : bool;  (** leader: a [Cc_final] sits in the batcher *)
  mutable batcher : (zxid * 'p payload) Batching.t option;
      (** set right after create *)
  mutable delivered : int;  (** length of the prefix passed to on_deliver *)
  mutable last_leader_contact : Sim_time.t;
  xfers : (int, xfer) Hashtbl.t;
      (** leader: per-follower in-flight snapshot transfer (volatile) *)
  mutable pending_snap : pending_snap option;
      (** follower: partially received snapshot (volatile; chunks are
          buffered in memory and only installed once complete) *)
  mutable stats : xfer_stats;
  reconfig : reconfig_stats;
}

(** Leader-side transfer state for one follower. *)
and xfer = {
  x_base : int;
  x_total : int;
  x_chunks : int;
  mutable x_acked : int;  (** cumulative ack: follower holds [0, x_acked) *)
  mutable x_sent : int;  (** high-water chunk sent so far *)
  mutable x_retx_after : Sim_time.t;
      (** earliest time the next duplicate-ack rewind is honoured: damps
          redundant solicits (ping re-acks, [Snapshot_begin] acks) that
          would otherwise each rewind and retransmit the same window *)
  mutable x_activity : Sim_time.t;
      (** last time the follower acked anything on this transfer: an
          active transfer pins the compaction horizon (see [compact]), so
          a follower that went silent past the TTL is abandoned rather
          than allowed to pin the log forever *)
}

(** Follower-side partial transfer: the contiguous chunk prefix received. *)
and pending_snap = {
  ps_base : int;
  ps_total : int;
  ps_chunks : int;
  ps_digest : string;
  ps_config : membership;  (** membership at [ps_base], from [Snapshot_begin] *)
  ps_buf : Buffer.t;
  mutable ps_received : int;
}

and xfer_stats = {
  mutable serializations : int;
      (** times the lazy snapshot was actually marshaled *)
  mutable chunks_sent : int;
  mutable chunk_retx : int;  (** chunks re-sent below the high-water mark *)
  mutable bytes_streamed : int;  (** chunk payload bytes put on the wire *)
  mutable transfers_started : int;
  mutable transfers_completed : int;  (** leader saw the final cumulative ack *)
  mutable resumes : int;
      (** transfers continued from a non-zero chunk after drops/heal *)
  mutable last_resume_from : int;
      (** chunk index the latest resume restarted from (0 = none yet) *)
  mutable installs : int;  (** follower: complete blobs handed to the app *)
  mutable install_rejects : int;
      (** follower: assembled blobs the application refused to decode *)
}

let set_union a b = List.sort_uniq compare (a @ b)

let voters t =
  match t.members with
  | Stable m -> m
  | Joint { c_old; c_new } -> set_union c_old c_new

(* [majority s ids]: do [ids] contain a majority of member set [s]? *)
let majority s ids =
  let n = List.length (List.filter (fun x -> List.mem x ids) s) in
  n >= (List.length s / 2) + 1

(* The election/decision quorum under the current membership: a single
   majority when stable, majorities of BOTH sets during a joint phase. *)
let quorum_met t ids =
  match t.members with
  | Stable m -> majority m ids
  | Joint { c_old; c_new } -> majority c_old ids && majority c_new ids

(* absolute log length and indexed access over the compacted log *)
let abs_len t = t.base + Vec.length t.log
let log_get t i = Vec.get t.log (i - t.base)

let last_zxid t =
  match Vec.last_opt t.log with
  | Some e -> e.zxid
  | None -> t.last_compacted_zxid

let is_leader t = t.role = Leader
let role t = t.role
let leader_hint t = t.leader_hint
let epoch t = t.current_epoch
let log_length t = abs_len t
let committed_length t = t.committed
let compaction_base t = t.base

let set_install_snapshot t f = t.install_snapshot <- Some f
let xfer_stats t = t.stats
let delivered_length t = t.delivered
let members t = voters t
let membership t = t.members
let learners t = t.learners
let is_fenced t = t.fenced
let reconfig_stats t = t.reconfig
let is_observer t = t.created_observer
let observers t = t.observers
let lease_stats t = t.lease

(* ------------------------------------------------------------------ *)
(* Leader leases                                                       *)
(* ------------------------------------------------------------------ *)

(* The replica's virtual clock: simulated real time plus a (nemesis-
   settable) offset.  Everything lease-related reads THIS clock, never
   [Sim.now] directly, so clock-skew faults hit exactly the code whose
   correctness depends on the ε assumption. *)
let local_now t = Sim_time.add (Sim.now t.sim) t.clock_skew
let set_clock_skew t d = t.clock_skew <- d
let clock_skew t = t.clock_skew
let leases_on t = Sim_time.compare t.config.lease_duration Sim_time.zero > 0

(* A voter that promised (by granting a lease) must not help elect a new
   leader — or campaign itself — until the promise runs out on its own
   clock.  Both majorities (lease grants counted by the old leader, votes
   counted by a candidate) draw from the voter set, so they intersect in
   at least one voter whose promise proves the old leader's lease expired
   before the new leader could commit anything. *)
let lease_promise_outstanding t =
  leases_on t
  && Sim_time.compare (local_now t) t.lease_promise_until < 0

(* Is [v]'s grant still live on the leader's clock?  The grant expires at
   [ping_sent + D - 2ε]: the follower's promise holds until at least
   [ping_sent + D] in real time minus its own skew (≤ ε), and our clock
   may read up to ε ahead, hence the 2ε margin.  The leader always counts
   itself (it cannot vote against itself while it believes it leads). *)
let grant_live t v =
  v = t.id
  ||
  match Hashtbl.find_opt t.lease_grants v with
  | None -> false
  | Some expiry ->
      t.config.unsafe_ignore_lease_expiry
      || Sim_time.compare (local_now t) expiry < 0

(* The lease mirrors the commit rule: a majority of the stable set, or —
   during a joint phase — majorities of BOTH sets (the intersection rule:
   a new leader elected under either configuration must overlap the set
   that promised us the lease). *)
let lease_valid t =
  t.alive && t.role = Leader && leases_on t
  &&
  let live = List.filter (grant_live t) (voters t) in
  match t.members with
  | Stable m -> majority m live
  | Joint { c_old; c_new } -> majority c_old live && majority c_new live

(* [can_serve_lease_read t]: the deployment's fast-path gate, with
   accounting.  False means the read must fall back to the commit path
   (quorum round trip through the log). *)
let can_serve_lease_read t =
  let ok = lease_valid t in
  if t.role = Leader && leases_on t then
    if ok then t.lease.reads_held <- t.lease.reads_held + 1
    else t.lease.reads_expired <- t.lease.reads_expired + 1;
  ok

let reconfig_in_flight t =
  t.pending_joint || t.pending_final
  || (match t.members with Joint _ -> true | Stable _ -> false)

(* Force (or reuse) the serialized snapshot for the current horizon.
   Followers that never fall behind never call this, so they never pay the
   serialization cost — compaction only stores the thunk. *)
let snapshot_blob t =
  match t.snap_cache with
  | Some (b, blob) when b = t.base -> blob
  | _ ->
      let blob = match t.snap_take with Some f -> f () | None -> "" in
      t.stats.serializations <- t.stats.serializations + 1;
      t.snap_cache <- Some (t.base, blob);
      blob

let chunk_count ~total ~chunk_size =
  if total = 0 then 0 else ((total - 1) / chunk_size) + 1

(* Stream the next window of chunks to [dst]: everything between the
   high-water mark and [acked + window].  Called on transfer start and on
   every ack, so the window self-clocks off the follower's progress. *)
let send_chunks t ~dst =
  match Hashtbl.find_opt t.xfers dst with
  | None -> ()
  | Some x ->
      let blob = snapshot_blob t in
      let cs = t.config.snapshot_chunk_size in
      let limit = Stdlib.min x.x_chunks (x.x_acked + t.config.snapshot_window) in
      while x.x_sent < limit do
        let seq = x.x_sent in
        let off = seq * cs in
        let len = Stdlib.min cs (x.x_total - off) in
        let data = String.sub blob off len in
        t.stats.chunks_sent <- t.stats.chunks_sent + 1;
        t.stats.bytes_streamed <- t.stats.bytes_streamed + len;
        t.send ~dst
          (Snapshot_chunk { epoch = t.current_epoch; base = x.x_base; seq; data });
        x.x_sent <- seq + 1
      done

(* Open (or re-open after a leader change / recompaction) a chunked state
   transfer to [dst].  [resume_from] carries the follower's cumulative ack
   when known, so a new leader with the same horizon — deterministic
   serialization makes its blob byte-identical, which the digest in
   [Snapshot_begin] lets the follower verify — continues where the old one
   stopped. *)
let begin_snapshot_xfer ?(resume_from = 0) t ~dst =
  let blob = snapshot_blob t in
  let total = String.length blob in
  let cs = t.config.snapshot_chunk_size in
  let chunks = chunk_count ~total ~chunk_size:cs in
  let resume_from = Stdlib.min resume_from chunks in
  (match Hashtbl.find_opt t.xfers dst with
  | Some x when x.x_base = t.base -> ()
  | _ ->
      Hashtbl.replace t.xfers dst
        {
          x_base = t.base;
          x_total = total;
          x_chunks = chunks;
          x_acked = resume_from;
          x_sent = resume_from;
          x_retx_after = Sim.now t.sim;
          x_activity = Sim.now t.sim;
        };
      t.stats.transfers_started <- t.stats.transfers_started + 1);
  Trace.debugf t.sim "zab[%d] snapshot xfer -> %d base=%d chunks=%d resume=%d"
    t.id dst t.base chunks resume_from;
  t.send ~dst
    (Snapshot_begin
       {
         epoch = t.current_epoch;
         base = t.base;
         total;
         chunk_size = cs;
         digest = Digest.string blob;
         committed = t.committed;
         config = t.base_config;
       });
  send_chunks t ~dst

let batcher t =
  match t.batcher with Some b -> b | None -> invalid_arg "zab not wired"

(* Everybody this replica talks to: the voters of its current membership
   view plus (on a leader) the adopted learners and observers, which
   receive the full replication stream without counting toward quorums. *)
let others t =
  List.filter
    (fun p -> p <> t.id)
    (set_union (voters t) (set_union t.learners t.observers))

(* Every broadcast goes through [send_many], so a transport that
   serializes pays one encode per fan-out — Propose/Commit on the hot
   path, and heartbeat [Ping]s, which PR 8's lease widening would
   otherwise re-encode per follower every beat. *)
let broadcast t msg = t.send_many ~dsts:(others t) msg

(* ------------------------------------------------------------------ *)
(* Membership bookkeeping                                              *)
(* ------------------------------------------------------------------ *)

let apply_cc t cc =
  match cc with
  | Cc_joint { c_old; c_new } ->
      if t.config.unsafe_single_step_reconfig then Stable c_new
      else Joint { c_old; c_new }
  | Cc_final { members } -> Stable members

(* React to a membership-view change: a config that readmits us lifts the
   fence; a leader drops learners that just became voters (they keep
   receiving the stream as members). *)
let refresh_membership_flags t =
  let v = voters t in
  if List.mem t.id v && t.fenced then begin
    t.fenced <- false;
    Trace.debugf t.sim "zab[%d] unfenced by config %a" t.id pp_membership
      t.members
  end;
  t.learners <- List.filter (fun l -> not (List.mem l v)) t.learners

(* A config entry was appended at absolute index [idx]: configs take
   effect at APPEND time, not commit time (Raft §6). *)
let note_appended t idx (e : 'p entry) =
  match e.payload with
  | App _ -> ()
  | Config cc ->
      t.members <- apply_cc t cc;
      t.config_index <- idx;
      (match cc with
      | Cc_joint _ -> t.pending_joint <- false
      | Cc_final _ -> t.pending_final <- false);
      Trace.debugf t.sim "zab[%d] config@%d -> %a" t.id idx pp_membership
        t.members;
      refresh_membership_flags t

(* Recompute [members] from scratch after a truncating graft or snapshot
   install: [base_config] folded over the retained config entries.  A
   previously known joint entry that vanished means the reconfiguration it
   started was aborted (its proposer lost leadership before commit). *)
let recompute_membership t =
  let was = t.members and was_idx = t.config_index in
  let m = ref t.base_config and idx = ref (t.base - 1) in
  Vec.iteri
    (fun i e ->
      match e.payload with
      | Config cc ->
          m := apply_cc t cc;
          idx := t.base + i
      | App _ -> ())
    t.log;
  t.members <- !m;
  t.config_index <- !idx;
  (match was with
  | Joint _ when t.config_index < was_idx ->
      t.reconfig.aborted <- t.reconfig.aborted + 1;
      Trace.debugf t.sim "zab[%d] reconfig aborted (joint@%d truncated)" t.id
        was_idx
  | _ -> ());
  refresh_membership_flags t

let set_role t role =
  if t.role <> role then begin
    if t.role = Leader then begin
      Batching.reset (batcher t);
      (* a deposed leader's transfer state is meaningless: the follower
         will re-solicit from whoever leads next *)
      Hashtbl.reset t.xfers;
      (* so is its reconfiguration state: adopted learners re-announce
         themselves to the next leader, and any config entry still in the
         batcher died with the reset above *)
      t.learners <- [];
      t.observers <- [];
      t.pending_joins <- [];
      t.pending_joint <- false;
      t.pending_final <- false;
      (* a deposed leader's grants are dead weight: if it leads again it
         must re-acquire the lease from scratch in the new epoch *)
      Hashtbl.reset t.lease_grants
    end;
    t.role <- role;
    Trace.debugf t.sim "zab[%d] -> %a (epoch %d)" t.id pp_role role
      t.current_epoch;
    t.on_role_change role
  end

(* ------------------------------------------------------------------ *)
(* Delivery and the config state machine                               *)
(* ------------------------------------------------------------------ *)

(* [propose_config], [config_committed] and [maybe_promote] recurse
   through [deliver_ready]: committing a joint entry makes the leader
   propose the final one, and (with batching off) Batching.add flushes
   synchronously into the append/commit path. *)
let rec deliver_ready t =
  while t.delivered < t.committed do
    let e = log_get t t.delivered in
    t.delivered <- t.delivered + 1;
    match e.payload with
    | App p -> t.on_deliver e.zxid p
    | Config cc -> config_committed t cc
  done

and config_committed t cc =
  match cc with
  | Cc_joint { c_new; _ } ->
      t.reconfig.joint_commits <- t.reconfig.joint_commits + 1;
      (* the joint entry is committed under both majorities: the leader
         finalizes by proposing the entry that collapses to [c_new] *)
      if t.role = Leader && not t.pending_final then begin
        match t.members with
        | Joint _ -> propose_config t (Cc_final { members = c_new })
        | Stable _ -> ()
      end
  | Cc_final { members = m } ->
      t.reconfig.finals_committed <- t.reconfig.finals_committed + 1;
      let joined = List.filter (fun x -> not (List.mem x t.last_stable)) m in
      let left = List.filter (fun x -> not (List.mem x m)) t.last_stable in
      t.reconfig.joins_completed <-
        t.reconfig.joins_completed + List.length joined;
      t.reconfig.leaves_completed <-
        t.reconfig.leaves_completed + List.length left;
      t.last_stable <- m;
      let was_leader = t.role = Leader in
      if List.mem t.id m then begin
        t.fenced <- false;
        t.joining <- false;
        t.finalized <- true
      end
      else begin
        (* removed: fence ourselves.  A leader that removed itself led
           until the final entry committed (Raft §6) and steps down now —
           the Commit broadcast already went out above us on the stack. *)
        if not t.fenced then begin
          t.fenced <- true;
          t.reconfig.fences <- t.reconfig.fences + 1;
          Trace.debugf t.sim "zab[%d] fenced: removed by committed final"
            t.id
        end;
        if t.role <> Follower then set_role t Follower
      end;
      (* Farewell: departed replicas just left the broadcast set, so this
         Commit is the last thing they would ever hear from us — without
         an explicit stand-down they would sit on their joint view and
         campaign forever.  (Lost farewells are repaired by the fence
         echo on their eventual vote refusal.) *)
      if was_leader then
        List.iter
          (fun r ->
            if r <> t.id then
              t.send ~dst:r (Fence { epoch = t.current_epoch }))
          left;
      if t.role = Leader then maybe_promote t

(* Promote at most one caught-up learner at a time: membership changes are
   serialized — the next promotion waits until the previous change's final
   entry committed and delivered. *)
and maybe_promote t =
  if t.role = Leader && not (reconfig_in_flight t) then
    match t.members with
    | Joint _ -> ()
    | Stable m -> (
        let ready =
          List.find_opt
            (fun (jid, _) ->
              (not (List.mem jid m))
              &&
              match Hashtbl.find_opt t.match_len jid with
              | Some n -> n >= t.committed
              | None -> false)
            (List.rev t.pending_joins)
        in
        match ready with
        | None -> ()
        | Some (jid, t0) ->
            t.pending_joins <-
              List.filter (fun (j, _) -> j <> jid) t.pending_joins;
            t.reconfig.catchup_ms <-
              Sim_time.to_float_ms (Sim_time.sub (Sim.now t.sim) t0)
              :: t.reconfig.catchup_ms;
            t.reconfig.joint_proposed <- t.reconfig.joint_proposed + 1;
            Trace.debugf t.sim "zab[%d] promotes learner %d" t.id jid;
            propose_config t
              (Cc_joint { c_old = m; c_new = set_union [ jid ] m }))

(* Config entries ride the ordinary group-commit batcher so zxids stay in
   assignment order relative to concurrent app proposals. *)
and propose_config t cc =
  if t.alive && t.role = Leader then begin
    let zxid = { epoch = t.current_epoch; counter = t.next_counter } in
    t.next_counter <- t.next_counter + 1;
    (match cc with
    | Cc_joint _ -> t.pending_joint <- true
    | Cc_final _ -> t.pending_final <- true);
    Trace.debugf t.sim "zab[%d] proposes config %a" t.id pp_config_change cc;
    Batching.add (batcher t) (zxid, Config cc)
  end

(* ------------------------------------------------------------------ *)
(* Leader side                                                         *)
(* ------------------------------------------------------------------ *)

(* The longest prefix committable by member set [s]: the (majority)-th
   largest acked length among its members (our own log is an implicit
   ack). *)
let commit_target_of_set t s =
  let lens =
    List.map
      (fun p ->
        if p = t.id then abs_len t
        else match Hashtbl.find_opt t.match_len p with Some n -> n | None -> 0)
      s
  in
  let sorted = List.sort (fun a b -> Int.compare b a) lens in
  List.nth sorted ((List.length s / 2) + 1 - 1)

let leader_commit_check t =
  (* Advance the commit horizon to the longest prefix held by a quorum.
     During a joint phase that means a majority of BOTH member sets — the
     defining property of joint consensus. *)
  let target =
    match t.members with
    | Stable m -> commit_target_of_set t m
    | Joint { c_old; c_new } ->
        Stdlib.min (commit_target_of_set t c_old) (commit_target_of_set t c_new)
  in
  if target > t.committed then begin
    t.committed <- target;
    broadcast t (Commit { epoch = t.current_epoch; index = t.committed });
    deliver_ready t
  end

(* Flush callback of the group-commit batcher: append the batch to the
   leader's log as consecutive entries and disseminate it as ONE proposal.
   Replicas apply its entries in order within a single simulation event, so
   a batch is atomic on every replica. *)
let commit_batch t items =
  if t.alive && t.role = Leader then begin
    (* a stale flush can straddle a re-election; drop foreign-epoch items *)
    let items =
      List.filter (fun ((zxid : zxid), _) -> zxid.epoch = t.current_epoch) items
    in
    if items <> [] then begin
      let index = abs_len t in
      let prev_zxid = last_zxid t in
      let entries = List.map (fun (zxid, payload) -> { zxid; payload }) items in
      List.iteri
        (fun i e ->
          Vec.push t.log e;
          note_appended t (index + i) e)
        entries;
      broadcast t
        (Propose { epoch = t.current_epoch; index; prev_zxid; entries });
      (* A single-replica ensemble commits immediately. *)
      leader_commit_check t
    end
  end

(** [propose t payload] — leader only — assigns the next zxid and hands the
    payload to the group-commit batcher (with batching off it is appended
    and disseminated synchronously, exactly as without a batcher).  Returns
    the assigned zxid, or [None] if this replica is not the leader. *)
let propose t payload =
  if (not t.alive) || t.role <> Leader then None
  else begin
    let zxid = { epoch = t.current_epoch; counter = t.next_counter } in
    t.next_counter <- t.next_counter + 1;
    Batching.add (batcher t) (zxid, App payload);
    Some zxid
  end

(** [remove_server t ~id] — leader only — starts the joint-consensus
    removal of [id] from the stable config.  At most one reconfiguration
    runs at a time. *)
let remove_server t ~id =
  if (not t.alive) || t.role <> Leader then Error "not leader"
  else if reconfig_in_flight t then Error "reconfiguration already in flight"
  else
    match t.members with
    | Joint _ -> Error "reconfiguration already in flight"
    | Stable m ->
        if not (List.mem id m) then Error "not a member"
        else if List.length m <= 1 then Error "cannot remove the last member"
        else begin
          t.reconfig.leaves_requested <- t.reconfig.leaves_requested + 1;
          t.reconfig.joint_proposed <- t.reconfig.joint_proposed + 1;
          propose_config t
            (Cc_joint { c_old = m; c_new = List.filter (fun x -> x <> id) m });
          Ok ()
        end

let reconfigure t ~c_new =
  let c_new = List.sort_uniq Int.compare c_new in
  if (not t.alive) || t.role <> Leader then Error "not leader"
  else if reconfig_in_flight t then Error "reconfiguration already in flight"
  else
    match t.members with
    | Joint _ -> Error "reconfiguration already in flight"
    | Stable m ->
        if c_new = [] then Error "empty member set"
        else if c_new = m then Error "no change"
        else begin
          let joins = List.filter (fun x -> not (List.mem x m)) c_new in
          let leaves = List.filter (fun x -> not (List.mem x c_new)) m in
          t.reconfig.joins_requested <-
            t.reconfig.joins_requested + List.length joins;
          t.reconfig.leaves_requested <-
            t.reconfig.leaves_requested + List.length leaves;
          t.reconfig.joint_proposed <- t.reconfig.joint_proposed + 1;
          propose_config t (Cc_joint { c_old = m; c_new });
          Ok ()
        end

(* ------------------------------------------------------------------ *)
(* Election                                                            *)
(* ------------------------------------------------------------------ *)

let become_leader t =
  set_role t Leader;
  t.leader_hint <- Some t.id;
  t.next_counter <- 0;
  t.verified <- abs_len t;
  Hashtbl.reset t.match_len;
  Hashtbl.reset t.xfers;
  Hashtbl.reset t.lease_grants;
  t.learners <- [];
  t.observers <- [];
  t.pending_joins <- [];
  t.pending_joint <- false;
  t.pending_final <- false;
  (* Synchronize followers: ship the retained log suffix.  A follower whose
     own state does not reach our compaction horizon answers the Sync with
     a [Sync_request { have < base }] (or a [Snapshot_ack] if it holds a
     partial transfer from the deposed leader), which opens — or resumes —
     a chunked state transfer.  Followers that kept up never see snapshot
     traffic at all. *)
  broadcast t
    (Sync
       {
         epoch = t.current_epoch;
         from = t.base;
         entries = Vec.to_list t.log;
         committed = t.committed;
       });
  broadcast t
    (Ping
       { epoch = t.current_epoch; committed = t.committed; sent = local_now t });
  (* An inherited joint phase is now our job to finish.  If its entry is
     already delivered, the commit-time trigger fired on the old leader
     (or on us as a follower, uselessly): re-propose the final entry.
     Otherwise [config_committed] fires when it commits under us. *)
  match t.members with
  | Joint { c_new; _ } when t.config_index < t.delivered ->
      propose_config t (Cc_final { members = c_new })
  | _ -> ()

let start_election t =
  t.current_epoch <- t.current_epoch + 1;
  t.voted_epoch <- t.current_epoch;
  t.votes <- [ t.id ];
  t.leader_hint <- None;
  set_role t Candidate;
  Trace.debugf t.sim "zab[%d] starts election for epoch %d" t.id
    t.current_epoch;
  broadcast t
    (Request_vote
       { epoch = t.current_epoch; candidate = t.id; last_zxid = last_zxid t });
  (* A single-replica ensemble (or one whose quorum is just us) elects
     itself immediately. *)
  if quorum_met t t.votes then become_leader t

(* ------------------------------------------------------------------ *)
(* Message handling                                                    *)
(* ------------------------------------------------------------------ *)

let note_leader t ~src ~epoch =
  if epoch > t.current_epoch then begin
    t.current_epoch <- epoch;
    set_role t Follower
  end;
  if epoch = t.current_epoch then begin
    if t.role <> Follower then set_role t Follower;
    (* replication traffic from the current leader proves we are inside
       its world — leaders address only voters and adopted learners — so
       any fence we carry is stale (e.g. from a deposed minority leader
       that had not seen the config that readmitted us) *)
    if t.fenced then begin
      t.fenced <- false;
      Trace.debugf t.sim "zab[%d] unfenced by leader %d contact" t.id src
    end;
    t.leader_hint <- Some src;
    t.last_leader_contact <- Sim.now t.sim
  end

let follower_commit t upto =
  (* Never commit past the verified prefix: entries above it may be a
     divergent tail that merely occupies the same indices as what the
     leader actually committed. *)
  let upto = Stdlib.min upto t.verified in
  if upto > t.committed then begin
    t.committed <- upto;
    deliver_ready t
  end

(* Graft a leader-shipped suffix starting at absolute index [from] onto our
   (possibly compacted) log, then cumulatively ack the prefix we now hold. *)
let graft_entries t ~src ~epoch ~from entries =
  (if from >= t.base then begin
     Vec.replace_from t.log (from - t.base) entries;
     t.verified <- abs_len t;
     recompute_membership t;
     t.send ~dst:src (Ack { epoch; upto = abs_len t })
   end
   else begin
     (* the shipped suffix starts before our own compaction horizon: drop
        what we already snapshotted *)
     let drop = t.base - from in
     if List.length entries >= drop then begin
       let keep = List.filteri (fun i _ -> i >= drop) entries in
       Vec.replace_from t.log 0 keep;
       t.verified <- abs_len t;
       recompute_membership t;
       t.send ~dst:src (Ack { epoch; upto = abs_len t })
     end
   end)

let epoch_of_msg = function
  | Ping { epoch; _ }
  | Propose { epoch; _ }
  | Ack { epoch; _ }
  | Commit { epoch; _ }
  | Request_vote { epoch; _ }
  | Vote { epoch }
  | Sync_request { epoch; _ }
  | Sync { epoch; _ }
  | Snapshot_begin { epoch; _ }
  | Snapshot_chunk { epoch; _ }
  | Snapshot_ack { epoch; _ }
  | Join_request { epoch; _ }
  | Fence { epoch }
  | Lease_grant { epoch; _ }
  | Observer_request { epoch; _ } ->
      epoch

(* Raft's term rule, applied to every message: a higher epoch proves our
   current role is stale, so adopt it and fall back to follower even when
   the message itself is refused (e.g. a vote request from a lagging log).
   Without this, a deposed replica that restarts with a stale log can
   campaign at ever-higher epochs that nobody adopts: the old leader —
   whose uncommitted tail makes it refuse every vote — keeps serving an
   epoch its followers have moved past, the healthy follower's campaign
   epoch never catches the straggler's [voted_epoch], and no election
   converges. *)
let maybe_adopt_epoch t epoch =
  if epoch > t.current_epoch then begin
    t.current_epoch <- epoch;
    t.votes <- [];
    (* the new epoch's leader may hold a different tail: only the
       committed prefix is known consistent *)
    t.verified <- t.committed;
    if t.role <> Follower then begin
      t.leader_hint <- None;
      set_role t Follower
    end
  end

(* Whether a message's epoch participates in the term rule.  A campaign by
   a non-member must not drag the config's epochs upward (that is exactly
   the disruption fencing exists to prevent), and a [Fence] is an order to
   stand down, not evidence about the current leader's epoch. *)
let adopts_epoch t = function
  | Request_vote { candidate; _ } -> List.mem candidate (voters t)
  | Fence _ -> false
  | _ -> true

(* Is [src] inside the leader's world — a voter, an adopted learner, or an
   adopted observer?  Anything else is a deposed/foreign replica and gets
   fenced. *)
let known t src =
  List.mem src (voters t) || List.mem src t.learners
  || List.mem src t.observers

(* [epoch] echoes the epoch the offender used: a removed replica keeps
   bumping its own epoch with every failed campaign, so a fence carrying
   only our (lower) epoch would fail its staleness check and never land. *)
let fence ?(epoch = 0) t ~dst =
  t.send ~dst (Fence { epoch = Stdlib.max t.current_epoch epoch })

let rec handle t ~src msg =
  if t.alive then begin
    if adopts_epoch t msg then maybe_adopt_epoch t (epoch_of_msg msg);
    match msg with
    | Ping { epoch; committed; sent } ->
        if epoch >= t.current_epoch then begin
          note_leader t ~src ~epoch;
          (* Lease grant piggybacks on the heartbeat: record the no-vote
             promise FIRST (on our clock), then echo the leader's send
             timestamp so it can anchor the expiry at its own send time.
             Only voters grant — an observer's promise would be
             meaningless (it never votes) and must not count. *)
          if leases_on t && (not t.fenced) && List.mem t.id (voters t)
          then begin
            t.lease_promise_until <-
              Sim_time.max t.lease_promise_until
                (Sim_time.add (local_now t) t.config.lease_duration);
            t.lease.grants_sent <- t.lease.grants_sent + 1;
            t.send ~dst:src (Lease_grant { epoch; sent })
          end;
          follower_commit t committed;
          if committed > t.verified then
            match t.pending_snap with
            | Some ps ->
                (* mid-transfer and the stream stalled (drops, partition):
                   re-issue the cumulative ack so the leader resumes from
                   the last contiguous chunk instead of starting over *)
                t.send ~dst:src
                  (Snapshot_ack
                     { epoch; base = ps.ps_base; received = ps.ps_received })
            | None ->
                (* the leader has committed past what we know matches its
                   log (e.g. the post-election sync was lost): re-sync from
                   the verified prefix so the graft can repair our tail *)
                t.send ~dst:src (Sync_request { epoch; have = t.verified })
        end
        else if not (List.mem src (voters t)) then
          (* a deposed leader outside our config pings from a dead epoch:
             it can never hear the new epoch through replication (nobody
             sends to it), so tell it to stand down — this is what stops a
             removed ex-leader from serving stale reads forever *)
          fence t ~dst:src
    | Propose { epoch; index = _; _ } when epoch < t.current_epoch ->
        () (* stale leader; drop *)
    | Propose { epoch; index; prev_zxid; entries } ->
        note_leader t ~src ~epoch;
        let len = List.length entries in
        (* Log matching: the entry before the batch, and any entry the
           batch overlaps, must agree with ours.  A mismatch means our
           uncommitted tail came from a deposed leader and the
           post-election sync that should have repaired it was lost. *)
        let prev_matches =
          t.config.unsafe_skip_log_matching
          || index <= t.base || index = 0
          || index > abs_len t
          || (log_get t (index - 1)).zxid = prev_zxid
        in
        let first_matches =
          t.config.unsafe_skip_log_matching
          ||
          match entries with
          | e :: _ when t.base <= index && index < abs_len t ->
              (log_get t index).zxid = e.zxid
          | _ -> true
        in
        if index > abs_len t then
          (* Gap: we missed entries (fresh restart).  Ask for a sync from
             our committed prefix — anything above it may be a divergent
             tail the graft must be allowed to truncate. *)
          t.send ~dst:src (Sync_request { epoch; have = t.committed })
        else if not (prev_matches && first_matches) then
          (* divergent tail: re-sync from the committed prefix, which the
             leader's graft will repair by truncation *)
          t.send ~dst:src (Sync_request { epoch; have = t.committed })
        else if index + len <= abs_len t then begin
          (* Entirely a duplicate (e.g. resent around a sync).  The prev
             and first checks passed, so the batch's span matches; re-ack
             it, but no further — anything above may still diverge. *)
          t.verified <- Stdlib.max t.verified (index + len);
          t.send ~dst:src (Ack { epoch; upto = t.verified })
        end
        else begin
          (* Append the suffix of the batch we are missing, in one event so
             the batch lands atomically.  Within an epoch the leader's log
             is append-only, so overlapping entries are identical and a
             duplicate never truncates what we already hold. *)
          let start = abs_len t in
          let fresh = List.filteri (fun i _ -> index + i >= start) entries in
          List.iteri
            (fun i e ->
              Vec.push t.log e;
              note_appended t (start + i) e)
            fresh;
          t.verified <- abs_len t;
          t.send ~dst:src (Ack { epoch; upto = abs_len t })
        end
    | Ack { epoch; upto } ->
        if t.role = Leader && epoch = t.current_epoch then begin
          if not (known t src) then fence t ~dst:src
          else begin
            let prev =
              match Hashtbl.find_opt t.match_len src with
              | Some n -> n
              | None -> 0
            in
            if upto > prev then begin
              Hashtbl.replace t.match_len src upto;
              leader_commit_check t;
              maybe_promote t
            end
          end
        end
    | Commit { epoch; index } ->
        if epoch = t.current_epoch && t.role = Follower then begin
          t.last_leader_contact <- Sim.now t.sim;
          follower_commit t index
        end
    | Request_vote { epoch; candidate; last_zxid = candidate_last } ->
        if not (List.mem candidate (voters t)) then begin
          (* a replica outside our config can never win here: refuse
             without adopting its epoch, and (as leader, authoritatively)
             order it to stand down *)
          if t.role = Leader then fence t ~epoch ~dst:candidate
        end
        else if
          (* the epoch itself was adopted above; grant at most one vote per
             epoch, and only to a log at least as up to date as ours — and
             never while fenced, so a deposed replica cannot help elect,
             and only if we hold a vote at all (observers and other
             non-members have none to give) *)
          (not t.fenced)
          && List.mem t.id (voters t)
          && epoch = t.current_epoch && epoch > t.voted_epoch
          && zxid_geq candidate_last (last_zxid t)
        then begin
          if lease_promise_outstanding t then begin
            (* the no-vote promise behind a lease grant: refusing here is
               exactly what keeps a still-leased leader's local reads
               linearizable — no new leader can form until the promises
               (and with them, by the 2ε margin, the lease) have run out *)
            t.lease.vote_refusals <- t.lease.vote_refusals + 1;
            Trace.debugf t.sim
              "zab[%d] refuses vote for %d (epoch %d): lease promise held"
              t.id candidate epoch
          end
          else begin
            t.voted_epoch <- epoch;
            t.leader_hint <- None;
            (* Reset the clock so we do not immediately start a competing
               election while the new leader synchronizes. *)
            t.last_leader_contact <- Sim.now t.sim;
            Trace.debugf t.sim "zab[%d] votes for %d (epoch %d)" t.id
              candidate epoch;
            t.send ~dst:candidate (Vote { epoch })
          end
        end
    | Vote { epoch } ->
        if t.role = Candidate && epoch = t.current_epoch then begin
          if not (List.mem src t.votes) then t.votes <- src :: t.votes;
          (* during a joint phase the election needs majorities of BOTH
             member sets (votes from non-members never help: quorum_met
             intersects with the sets) *)
          if quorum_met t t.votes then become_leader t
        end
    | Sync_request { epoch; have } ->
        if t.role = Leader && epoch = t.current_epoch then
          if not (known t src) then fence t ~dst:src
          else
            let have = Stdlib.min have (abs_len t) in
            if have < t.base then
              (* the follower needs entries we compacted away: chunked state
                 transfer (§3.8's recovery path) *)
              begin_snapshot_xfer t ~dst:src
            else
              t.send ~dst:src
                (Sync
                   {
                     epoch;
                     from = have;
                     entries = Vec.sub t.log (have - t.base) (abs_len t - have);
                     committed = t.committed;
                   })
    | Sync { epoch; from; entries; committed } ->
        if epoch >= t.current_epoch then begin
          note_leader t ~src ~epoch;
          (* Replace our log from [from] with the leader's suffix.  The
             election rule guarantees the leader holds every committed
             entry, so truncation never loses committed state. *)
          if from <= abs_len t then begin
            graft_entries t ~src ~epoch ~from entries;
            follower_commit t committed
          end
          else begin
            match t.pending_snap with
            | Some ps when ps.ps_base = from ->
                (* a new leader covers the same horizon as our partial
                   transfer (deterministic serialization makes its blob
                   identical — the next [Snapshot_begin]'s digest checks
                   that): ask it to resume, not restart *)
                t.send ~dst:src
                  (Snapshot_ack { epoch; base = from; received = ps.ps_received })
            | _ -> t.send ~dst:src (Sync_request { epoch; have = t.committed })
          end
        end
    | Snapshot_begin { epoch; base; total; chunk_size; digest; committed; config }
      ->
        if epoch >= t.current_epoch then begin
          note_leader t ~src ~epoch;
          if base <= abs_len t && t.delivered >= base then
            (* our state already covers the snapshot: decline the transfer
               and fetch the retained suffix through the normal path *)
            t.send ~dst:src (Sync_request { epoch; have = t.verified })
          else begin
            (match t.pending_snap with
            | Some ps when ps.ps_base = base && ps.ps_digest = digest ->
                () (* keep the partial prefix: the ack below resumes it *)
            | _ ->
                t.pending_snap <-
                  Some
                    {
                      ps_base = base;
                      ps_total = total;
                      ps_chunks = chunk_count ~total ~chunk_size;
                      ps_digest = digest;
                      ps_config = config;
                      ps_buf = Buffer.create (Stdlib.max total 16);
                      ps_received = 0;
                    });
            follower_commit t committed;
            let ps = Option.get t.pending_snap in
            if ps.ps_received >= ps.ps_chunks then
              finish_snapshot_install t ~src ~epoch
            else if ps.ps_received > 0 then
              (* resuming: tell the (possibly new) leader where we are.  On
                 a fresh transfer the leader already assumes chunk 0 and
                 has the first window in flight — acking here would read as
                 a duplicate ack and trigger a spurious retransmit. *)
              t.send ~dst:src
                (Snapshot_ack { epoch; base; received = ps.ps_received })
          end
        end
    | Snapshot_chunk { epoch; base; seq; data } ->
        if epoch >= t.current_epoch then begin
          note_leader t ~src ~epoch;
          match t.pending_snap with
          | Some ps when ps.ps_base = base ->
              if seq = ps.ps_received then begin
                Buffer.add_string ps.ps_buf data;
                ps.ps_received <- ps.ps_received + 1;
                if ps.ps_received >= ps.ps_chunks then
                  finish_snapshot_install t ~src ~epoch
                else
                  t.send ~dst:src
                    (Snapshot_ack { epoch; base; received = ps.ps_received })
              end
              else if seq > ps.ps_received then
                (* gap: a chunk below [seq] was dropped — the duplicate
                   cumulative ack solicits a retransmit *)
                t.send ~dst:src
                  (Snapshot_ack { epoch; base; received = ps.ps_received })
              (* [seq < ps_received] is a stale duplicate from a window
                 retransmit we already advanced past.  Acking it would hand
                 the leader another duplicate ack and re-trigger the very
                 retransmit that produced it (a self-sustaining storm);
                 staying silent is safe because any genuine stall is broken
                 by the ping-driven re-ack. *)
          | _ -> () (* stale transfer (horizon moved on); drop *)
        end
    | Snapshot_ack { epoch; base; received } ->
        if t.role = Leader && epoch = t.current_epoch then begin
          if not (known t src) then fence t ~dst:src
          else if base <> t.base then
            (* we compacted past the transfer's horizon: restart at the new
               one (the follower drops its stale prefix on Snapshot_begin) *)
            begin_snapshot_xfer t ~dst:src
          else begin
            (match Hashtbl.find_opt t.xfers src with
            | None ->
                (* no transfer state (leader change or restart): adopt the
                   follower's progress and continue from there *)
                t.stats.resumes <- t.stats.resumes + 1;
                t.stats.last_resume_from <-
                  Stdlib.max t.stats.last_resume_from received;
                begin_snapshot_xfer ~resume_from:received t ~dst:src
            | Some x ->
                x.x_activity <- Sim.now t.sim;
                if received > x.x_acked then begin
                  (* forward progress: slide the window.  A jump of more
                     than one chunk means our view of the follower was
                     stale — its acks were lost (cut link, partition) while
                     our chunks got through — and this ack is really the
                     post-heal resume solicitation, so record it as one. *)
                  if received > x.x_acked + 1 then begin
                    t.stats.resumes <- t.stats.resumes + 1;
                    t.stats.last_resume_from <-
                      Stdlib.max t.stats.last_resume_from received;
                    Trace.debugf t.sim
                      "zab[%d] snapshot to %d resumes at chunk %d (acked %d)"
                      t.id src received x.x_acked
                  end;
                  x.x_acked <- received;
                  send_chunks t ~dst:src
                end
                else if
                  Sim_time.compare (Sim.now t.sim) x.x_retx_after >= 0
                  && x.x_sent > received
                then begin
                  (* duplicate ack: chunks past [received] were dropped
                     (link cut, partition).  Rewind the high-water mark and
                     retransmit the window — from [received], not from 0.
                     At most once per heartbeat: several solicits can
                     arrive for the same loss (ping re-acks, gap acks) and
                     honouring each would retransmit the window as many
                     times over. *)
                  t.stats.resumes <- t.stats.resumes + 1;
                  t.stats.last_resume_from <-
                    Stdlib.max t.stats.last_resume_from received;
                  t.stats.chunk_retx <- t.stats.chunk_retx + (x.x_sent - received);
                  x.x_acked <- received;
                  x.x_sent <- received;
                  x.x_retx_after <-
                    Sim_time.add (Sim.now t.sim) t.config.heartbeat_interval;
                  send_chunks t ~dst:src
                end);
            match Hashtbl.find_opt t.xfers src with
            | Some x when x.x_acked >= x.x_chunks ->
                t.stats.transfers_completed <- t.stats.transfers_completed + 1;
                Hashtbl.remove t.xfers src
            | _ -> ()
          end
        end
    | Join_request { epoch = _; id = jid } ->
        if t.role = Leader && jid <> t.id then begin
          if (not (List.mem jid (voters t))) && not (List.mem jid t.learners)
          then begin
            (* adopt as a non-voting learner: it receives the replication
               stream (so its acks track its catch-up) but never counts
               toward a quorum until a committed config admits it *)
            t.learners <- jid :: t.learners;
            t.pending_joins <- (jid, Sim.now t.sim) :: t.pending_joins;
            t.reconfig.joins_requested <- t.reconfig.joins_requested + 1;
            Trace.debugf t.sim "zab[%d] adopts learner %d" t.id jid
          end;
          (* bootstrap (or re-bootstrap after a stall): ship the retained
             log; a learner behind our compaction horizon answers with
             [Sync_request { have < base }], which opens the chunked
             snapshot transfer *)
          t.send ~dst:jid
            (Sync
               {
                 epoch = t.current_epoch;
                 from = t.base;
                 entries = Vec.to_list t.log;
                 committed = t.committed;
               })
        end
    | Lease_grant { epoch; sent } ->
        if
          t.role = Leader && epoch = t.current_epoch
          && List.mem src (voters t)
        then begin
          (* Anchor the expiry at OUR send time of the ping this grant
             echoes: the follower's promise covers at least
             [sent + D] minus its skew in real time, and our clock may
             read up to ε ahead of real time, so [sent + D - 2ε] on our
             clock is provably inside the promise.  (Anchoring at receive
             time would not be: the network delay between send and
             receive has no bound that helps us.) *)
          let expiry =
            Sim_time.sub
              (Sim_time.add sent t.config.lease_duration)
              (Sim_time.scale t.config.clock_skew_bound 2.)
          in
          let prev =
            Option.value ~default:Sim_time.zero
              (Hashtbl.find_opt t.lease_grants src)
          in
          t.lease.grants_received <- t.lease.grants_received + 1;
          Hashtbl.replace t.lease_grants src (Sim_time.max prev expiry)
        end
    | Observer_request { epoch = _; id = oid } ->
        if t.role = Leader && oid <> t.id then begin
          if (not (List.mem oid (voters t))) && not (List.mem oid t.observers)
          then begin
            (* adopt as a permanent non-voting observer: it gets the full
               replication stream (so it can serve sequentially-consistent
               reads from its applied prefix) but — unlike a learner — is
               never queued for promotion and never enters a quorum *)
            t.observers <- oid :: t.observers;
            Trace.debugf t.sim "zab[%d] adopts observer %d" t.id oid
          end;
          (* bootstrap (or re-bootstrap after a stall): same path as a
             learner — ship the retained log; an observer behind our
             compaction horizon answers with [Sync_request { have < base }],
             which opens the chunked snapshot transfer *)
          t.send ~dst:oid
            (Sync
               {
                 epoch = t.current_epoch;
                 from = t.base;
                 entries = Vec.to_list t.log;
                 committed = t.committed;
               })
        end
    | Fence { epoch } ->
        if epoch >= t.current_epoch then
          if t.created_observer then
            (* an observer is outside every config by design, so a fence
               from a new leader that has not adopted it yet is routine:
               re-announce instead of standing down (its reads are only
               sequentially consistent, so serving from the applied prefix
               stays correct) *)
            broadcast t (Observer_request { epoch = t.current_epoch; id = t.id })
          else begin
            if not t.fenced then begin
              t.fenced <- true;
              t.reconfig.fences <- t.reconfig.fences + 1;
              Trace.debugf t.sim "zab[%d] fenced by %d (epoch %d)" t.id src
                epoch
            end;
            t.votes <- [];
            if t.role <> Follower then set_role t Follower;
            (* a learner whose half-finished join was aborted (its joint
               entry died with the old leader) starts the join over *)
            if t.created_learner && not t.finalized then t.joining <- true
          end
  end

(* The whole blob arrived: verify it against the digest from
   [Snapshot_begin], hand it to the application in ONE atomic step, and
   adopt the leader's horizon.  Chunked delivery never exposes a partially
   installed state — the application sees either its old tree or the
   complete new one.  The retained log suffix is fetched afterwards through
   the ordinary sync path. *)
and finish_snapshot_install t ~src ~epoch =
  match t.pending_snap with
  | None -> ()
  | Some ps ->
      let blob = Buffer.contents ps.ps_buf in
      t.pending_snap <- None;
      if Digest.string blob <> ps.ps_digest then
        (* corrupted assembly (should be impossible on FIFO links): restart
           the transfer from scratch *)
        t.send ~dst:src (Sync_request { epoch; have = t.committed })
      else begin
        match
          match t.install_snapshot with Some f -> f blob | None -> Ok ()
        with
        | Error _ ->
            (* the application refused the blob (it failed to decode): our
               state is untouched — reject the snapshot cleanly and ask the
               leader to sync us again instead of dying on bad bytes *)
            t.stats.install_rejects <- t.stats.install_rejects + 1;
            t.send ~dst:src (Sync_request { epoch; have = t.committed })
        | Ok () ->
            t.stats.installs <- t.stats.installs + 1;
            t.base <- ps.ps_base;
            t.delivered <- ps.ps_base;
            t.committed <- ps.ps_base;
            t.verified <- ps.ps_base;
            Vec.clear t.log;
            (* the blob covers every config entry below [base] too: adopt
               the membership the leader snapshotted with it *)
            t.base_config <- ps.ps_config;
            recompute_membership t;
            (* our own snapshot of [0, base) is exactly the blob we
               installed: cache it, so if we lead later we can serve
               transfers without re-serializing *)
            t.snap_take <- Some (fun () -> blob);
            t.snap_cache <- Some (ps.ps_base, blob);
            t.send ~dst:src
              (Snapshot_ack
                 { epoch; base = ps.ps_base; received = ps.ps_chunks });
            (* fetch the retained suffix *)
            t.send ~dst:src (Sync_request { epoch; have = ps.ps_base })
      end

(* ------------------------------------------------------------------ *)
(* Timers                                                              *)
(* ------------------------------------------------------------------ *)

let election_deadline t =
  Sim_time.add t.config.election_timeout
    (Sim_time.scale t.config.election_stagger (float_of_int t.id))

let rec tick t generation () =
  if t.alive && generation = t.generation then begin
    (match t.role with
    | Leader ->
        broadcast t
          (Ping
             {
               epoch = t.current_epoch;
               committed = t.committed;
               sent = local_now t;
             })
    | Follower | Candidate ->
        let silence = Sim_time.sub (Sim.now t.sim) t.last_leader_contact in
        if Sim_time.(election_deadline t <= silence) then begin
          if List.mem t.id (voters t) && not t.fenced then begin
            if lease_promise_outstanding t then
              (* our own campaign counts as a vote for ourselves: a live
                 no-vote promise defers it (retried next tick; the promise
                 is shorter than the election timeout, so this never
                 delays an election that real silence justifies) *)
              t.lease.vote_refusals <- t.lease.vote_refusals + 1
            else begin
              t.last_leader_contact <- Sim.now t.sim;
              start_election t
            end
          end
          else begin
            t.last_leader_contact <- Sim.now t.sim;
            if t.joining then
              (* learners never campaign: they (re-)announce themselves to
                 whoever leads now *)
              broadcast t
                (Join_request { epoch = t.current_epoch; id = t.id })
            else if t.created_observer then
              (* observers re-announce on silence too, so they survive
                 leader changes and find whoever leads now *)
              broadcast t
                (Observer_request { epoch = t.current_epoch; id = t.id })
          end
        end);
    Sim.schedule t.sim ~after:t.config.heartbeat_interval (tick t generation)
  end

(** [start t] begins heartbeats/election timers.  If [t.id] matches
    [initial_leader] given at [create], the replica starts as leader of
    epoch 1 immediately (mirrors a freshly booted ensemble that has already
    elected its first leader, so experiments skip the cold election). *)
let start t =
  t.generation <- t.generation + 1;
  t.last_leader_contact <- Sim.now t.sim;
  Sim.schedule t.sim ~after:Sim_time.zero (tick t t.generation);
  if t.joining then
    (* announce immediately; the tick path re-broadcasts on silence *)
    broadcast t (Join_request { epoch = t.current_epoch; id = t.id })
  else if t.created_observer then
    broadcast t (Observer_request { epoch = t.current_epoch; id = t.id })

let create ?(config = default_config) ?initial_leader ?(learner = false)
    ?(observer = false) ?send_many ~sim ~id ~peers ~send ~on_deliver () =
  let send_many =
    match send_many with
    | Some f -> f
    | None -> fun ~dsts msg -> List.iter (fun dst -> send ~dst msg) dsts
  in
  let peers = List.sort_uniq compare peers in
  let initial_members =
    if learner || observer then List.filter (fun p -> p <> id) peers else peers
  in
  let t =
    {
      sim;
      id;
      send;
      send_many;
      on_deliver;
      on_role_change = (fun _ -> ());
      config;
      log = Vec.create ();
      base = 0;
      last_compacted_zxid = zxid_zero;
      snap_take = None;
      snap_cache = None;
      install_snapshot = None;
      current_epoch = 0;
      voted_epoch = 0;
      committed = 0;
      verified = 0;
      base_config = Stable initial_members;
      members = Stable initial_members;
      config_index = -1;
      last_stable = initial_members;
      fenced = false;
      created_learner = learner;
      created_observer = observer;
      joining = learner;
      finalized = not learner;
      role = Follower;
      leader_hint = None;
      alive = true;
      generation = 0;
      votes = [];
      next_counter = 0;
      match_len = Hashtbl.create 8;
      learners = [];
      observers = [];
      clock_skew = Sim_time.zero;
      lease_promise_until = Sim_time.zero;
      lease_grants = Hashtbl.create 8;
      lease =
        {
          grants_sent = 0;
          grants_received = 0;
          reads_held = 0;
          reads_expired = 0;
          vote_refusals = 0;
        };
      pending_joins = [];
      pending_joint = false;
      pending_final = false;
      batcher = None;
      delivered = 0;
      last_leader_contact = Sim.now sim;
      xfers = Hashtbl.create 4;
      pending_snap = None;
      stats =
        {
          serializations = 0;
          chunks_sent = 0;
          chunk_retx = 0;
          bytes_streamed = 0;
          transfers_started = 0;
          transfers_completed = 0;
          resumes = 0;
          last_resume_from = 0;
          installs = 0;
          install_rejects = 0;
        };
      reconfig =
        {
          joins_requested = 0;
          joint_proposed = 0;
          joint_commits = 0;
          finals_committed = 0;
          joins_completed = 0;
          leaves_requested = 0;
          leaves_completed = 0;
          aborted = 0;
          fences = 0;
          catchup_ms = [];
        };
    }
  in
  t.batcher <-
    Some
      (Batching.create ~sim ~config:config.batch ~flush:(fun items ->
           commit_batch t items));
  (match initial_leader with
  | Some leader ->
      t.current_epoch <- 1;
      t.voted_epoch <- 1;
      t.leader_hint <- Some leader;
      if leader = id then t.role <- Leader
  | None -> ());
  t

let set_on_role_change t f = t.on_role_change <- f

(** [crash t] stops the replica.  Persistent state (log, epoch, committed
    prefix, membership) is retained, modeling ZooKeeper's on-disk
    transaction log. *)
let crash t =
  t.alive <- false;
  t.generation <- t.generation + 1;
  t.role <- Follower;
  t.votes <- [];
  Hashtbl.reset t.match_len;
  (* in-flight transfers are volatile: partially received chunks live in
     memory, so a crashed follower restarts its transfer from scratch
     (resume is for link drops, which lose no local state) *)
  Hashtbl.reset t.xfers;
  t.pending_snap <- None;
  t.learners <- [];
  t.observers <- [];
  (* leader-side grants are volatile; the follower-side no-vote promise
     ([lease_promise_until]) deliberately survives — modeling a promise
     persisted to disk, since forgetting it across a quick crash/restart
     would let us vote inside a window another leader still leases *)
  Hashtbl.reset t.lease_grants;
  t.pending_joins <- [];
  t.pending_joint <- false;
  t.pending_final <- false;
  Batching.reset (batcher t)

(** [restart t] brings a crashed replica back as a follower; it will catch
    up via [Sync_request] when it hears from the current leader. *)
let restart t =
  t.alive <- true;
  t.leader_hint <- None;
  t.verified <- t.committed;
  t.last_leader_contact <- Sim.now t.sim;
  start t;
  if (not t.joining) && not t.created_observer then
    (* Proactively ask whoever leads now for the missing suffix: we cannot
       address them yet, so we ask everyone; non-leaders ignore it.  (A
       still-joining learner already re-announced itself in [start]: a
       [Sync_request] from a non-member would just get it fenced.) *)
    List.iter
      (fun dst ->
        (* ask from the committed prefix: our uncommitted tail may predate
           the crash and diverge from the current leader's log *)
        t.send ~dst
          (Sync_request { epoch = t.current_epoch; have = t.committed }))
      (others t)

(** [compact t ~take] discards the delivered log prefix after capturing an
    application snapshot that covers exactly the delivered entries
    (ZooKeeper's fuzzy-snapshot-plus-log made crisp by the simulator's
    synchronous apply).  [take ()] runs now — it must pin the state at the
    horizon — but only returns a serializer; the encoding work happens the
    first time a state transfer needs the bytes, and the result is cached
    until the next compaction.  A replica that never serves a transfer
    never serializes at all. *)
let compact t ~take =
  (* An in-flight state transfer pins the compaction horizon: the
     follower's partial prefix is only resumable while the blob at
     [t.base] stays the serialization source — moving the base would
     force every interrupted bootstrap to restart from chunk 0.  A
     follower that stopped acking (crashed learner, permanent partition)
     is abandoned after a TTL so one silent peer can't pin the log
     forever. *)
  let xfer_ttl = Sim_time.scale t.config.heartbeat_interval 20. in
  let stale =
    Hashtbl.fold
      (fun dst x acc ->
        if Sim_time.(compare (sub (Sim.now t.sim) x.x_activity) xfer_ttl > 0)
        then dst :: acc
        else acc)
      t.xfers []
  in
  List.iter
    (fun dst ->
      Trace.debugf t.sim "zab[%d] abandons stalled snapshot xfer -> %d" t.id
        dst;
      Hashtbl.remove t.xfers dst)
    stale;
  if t.alive && Hashtbl.length t.xfers = 0 && t.delivered > t.base then begin
    t.snap_take <- Some (take ());
    t.snap_cache <- None;
    t.last_compacted_zxid <- (log_get t (t.delivered - 1)).zxid;
    (* config entries about to be dropped fold into the base config, so
       [members] stays reconstructible from [base_config] + retained log *)
    for i = t.base to t.delivered - 1 do
      match (log_get t i).payload with
      | Config cc -> t.base_config <- apply_cc t cc
      | App _ -> ()
    done;
    let suffix = Vec.sub t.log (t.delivered - t.base) (abs_len t - t.delivered) in
    Vec.replace_from t.log 0 suffix;
    t.base <- t.delivered
  end

(* modelled wire sizes for membership data: ~8 bytes per member id *)
let member_set_size m = 8 * List.length m

let membership_size = function
  | Stable m -> 8 + member_set_size m
  | Joint { c_old; c_new } -> 8 + member_set_size c_old + member_set_size c_new

let config_change_size = function
  | Cc_joint { c_old; c_new } ->
      16 + member_set_size c_old + member_set_size c_new
  | Cc_final { members } -> 16 + member_set_size members

(** [msg_size ~payload_size msg] models the wire size of a protocol
    message: a fixed header plus the payload. *)
let msg_size ~payload_size =
  let entry_size (e : _ entry) =
    match e.payload with
    | App p -> 48 + payload_size p
    | Config cc -> 48 + config_change_size cc
  in
  function
  | Ping _ -> 32
  | Propose { entries; _ } ->
      List.fold_left (fun acc e -> acc + entry_size e) 0 entries
  | Ack _ -> 24
  | Commit _ -> 24
  | Request_vote _ -> 32
  | Vote _ -> 16
  | Sync_request _ -> 24
  | Sync { entries; _ } ->
      List.fold_left (fun acc e -> acc + entry_size e) 32 entries
  | Snapshot_begin { digest; config; _ } ->
      56 + String.length digest + membership_size config
  | Snapshot_chunk { data; _ } -> 40 + String.length data
  | Snapshot_ack _ -> 32
  | Join_request _ -> 24
  | Fence _ -> 16
  | Lease_grant _ -> 24
  | Observer_request _ -> 24
