(** PBFT-style Byzantine fault-tolerant state machine replication (the
    DepSpace/BFT-SMaRt substrate).

    [n = 3f + 1] replicas; clients multicast requests to all of them; the
    view's primary assigns sequence numbers and runs the three-phase
    exchange (pre-prepare / prepare / commit with [2f] and [2f + 1]
    quorums); replicas execute in order and reply directly to the client,
    which masks faults by collecting [f + 1] matching replies.

    Each ordered request carries a primary-assigned timestamp, giving
    replicas a deterministic shared clock for lease expiry.

    The view change is simplified for crash/silent faults (it transfers
    the longest delivered history among [2f + 1] VIEW-CHANGE messages
    instead of prepared certificates); see DESIGN.md. *)

open Edc_simnet

type request_id = { client : int; rseq : int }

val request_id_compare : request_id -> request_id -> int
val pp_request_id : Format.formatter -> request_id -> unit

type 'p msg =
  | Pre_prepare of {
      view : int;
      seq : int;
      batch : (request_id * 'p) list;
          (** one consensus instance orders a whole batch, executed
              atomically in batch order on every replica *)
      ts : Sim_time.t;
    }
  | Prepare of { view : int; seq : int }
  | Commit of { view : int; seq : int }
  | View_change of {
      new_view : int;
      delivered : (request_id * 'p) list;
      pending : (request_id * 'p) list;
    }
  | New_view of { view : int }
  | Recover_request
      (** a restarted replica asking the ensemble for the current view *)
  | Recover_reply of { view : int }

type config = {
  order_timeout : Sim_time.t;
      (** backup patience before suspecting the primary *)
  check_interval : Sim_time.t;
  batch : Batching.config;
      (** primary-side request batching; {!Batching.off} reproduces
          unbatched behaviour exactly *)
}

val default_config : config

type 'p t

(** [create ~sim ~id ~peers ~f ~send ~on_deliver ()] — one replica.
    [on_deliver] receives each request exactly once, in total order, with
    the primary's timestamp. *)
val create :
  ?config:config ->
  ?send_many:(dsts:int list -> 'p msg -> unit) ->
  sim:Sim.t ->
  id:int ->
  peers:int list ->
  f:int ->
  send:(dst:int -> 'p msg -> unit) ->
  on_deliver:(request_id -> 'p -> ts:Sim_time.t -> unit) ->
  unit ->
  'p t

val start : 'p t -> unit

(** [submit t rid payload] — a client request reached this replica (clients
    multicast); the primary batches and orders it, backups watch for it. *)
val submit : 'p t -> request_id -> 'p -> unit

val handle : 'p t -> src:int -> 'p msg -> unit

val is_primary : 'p t -> bool
val view : 'p t -> int

(** [crash t] silences the replica (crash or Byzantine-mute). *)
val crash : 'p t -> unit

(** [restart t] brings a crashed replica back.  It keeps its durable state
    (delivered history and execution dedup table), asks the ensemble for
    the current view ([Recover_request]), and once [f + 1] replicas answer
    it forces a view change from the highest view it heard; the simplified
    view change transfers the full delivered history, so the rejoiner
    re-executes exactly the suffix it missed (dedup by request id). *)
val restart : 'p t -> unit

val delivered_count : 'p t -> int

(** Delivered history, oldest first (test observability). *)
val delivered_log : 'p t -> (request_id * 'p) list

val msg_size : payload_size:('p -> int) -> 'p msg -> int
