(** Group-commit batcher shared by both replication substrates.

    Real coordination services never run one agreement round per client
    operation: ZooKeeper's leader groups transaction-log writes behind a
    single fsync (group commit), and BFT-SMaRt's proposer packs every
    request that arrived during the previous consensus instance into the
    next PRE-PREPARE.  This module factors that mechanism out: items are
    accumulated and handed to [flush] in arrival order, as one batch,
    when either

    - the batch is full ([max_batch] items), or
    - the oldest pending item has waited [max_delay], and

    a previous flush is not still syncing.  [sync_cost] models the serial
    per-batch cost of the agreement round itself (the leader's log fsync,
    the proposer's per-instance protocol work): while a flush is paying it,
    arrivals pile up and ride the *next* batch — which is exactly how group
    commit self-clocks under load without any tuned delay.

    With [sync_cost = 0] and [max_delay = 0] every [add] flushes a
    singleton batch synchronously, making the batcher a no-op: the
    unbatched protocols behave bit-for-bit as before. *)

open Edc_simnet

type config = {
  max_batch : int;  (** maximum items packed into one proposal (>= 1) *)
  max_delay : Sim_time.t;
      (** how long the oldest pending item may wait for company *)
  sync_cost : Sim_time.t;
      (** serial per-batch agreement cost (log fsync / proposer work) *)
}

(** Unbatched: one item per proposal, no added latency, no modelled sync
    cost.  Behaviourally identical to the pre-batching protocols. *)
let off = { max_batch = 1; max_delay = Sim_time.zero; sync_cost = Sim_time.zero }

let group_commit ?(max_batch = 32) ?(max_delay = Sim_time.zero)
    ?(sync_cost = Sim_time.zero) () =
  { max_batch = Stdlib.max 1 max_batch; max_delay; sync_cost }

let pp ppf c =
  Fmt.pf ppf "batch<=%d delay=%a sync=%a" c.max_batch Sim_time.pp c.max_delay
    Sim_time.pp c.sync_cost

type 'a t = {
  sim : Sim.t;
  config : config;
  flush : 'a list -> unit;
  mutable pending : 'a list;  (** newest first *)
  mutable n_pending : int;
  mutable oldest : Sim_time.t;  (** arrival time of the oldest pending item *)
  mutable syncing : bool;  (** a flush is paying [sync_cost] right now *)
  mutable timer_armed : bool;
  mutable generation : int;  (** invalidates timers and in-flight syncs *)
}

let create ~sim ~config ~flush =
  {
    sim;
    config = { config with max_batch = Stdlib.max 1 config.max_batch };
    flush;
    pending = [];
    n_pending = 0;
    oldest = Sim_time.zero;
    syncing = false;
    timer_armed = false;
    generation = 0;
  }

let pending t = t.n_pending

(** [reset t] drops pending items and invalidates any armed timer or
    in-flight sync (leadership loss, view change, crash).  Dropped items
    are exactly the proposals that would have been lost had they been
    proposed individually at the same instant. *)
let reset t =
  t.pending <- [];
  t.n_pending <- 0;
  t.syncing <- false;
  t.timer_armed <- false;
  t.generation <- t.generation + 1

(* Oldest-first batch of at most [max_batch] items; the remainder stays
   pending with its wait clock restarted. *)
let take_batch t =
  let rec split k acc rest =
    match rest with
    | [] -> (List.rev acc, [])
    | _ when k = 0 -> (List.rev acc, rest)
    | x :: rest -> split (k - 1) (x :: acc) rest
  in
  let batch, rest = split t.config.max_batch [] (List.rev t.pending) in
  t.pending <- List.rev rest;
  t.n_pending <- List.length rest;
  if rest <> [] then t.oldest <- Sim.now t.sim;
  batch

let rec maybe_flush t =
  if (not t.syncing) && t.n_pending > 0 then begin
    let due =
      t.n_pending >= t.config.max_batch
      || Sim_time.(Sim_time.add t.oldest t.config.max_delay <= Sim.now t.sim)
    in
    if due then begin
      let batch = take_batch t in
      if Sim_time.(t.config.sync_cost <= Sim_time.zero) then begin
        t.flush batch;
        maybe_flush t
      end
      else begin
        t.syncing <- true;
        let gen = t.generation in
        Sim.schedule t.sim ~after:t.config.sync_cost (fun () ->
            if gen = t.generation then begin
              t.syncing <- false;
              t.flush batch;
              maybe_flush t
            end)
      end
    end
    else if not t.timer_armed then begin
      t.timer_armed <- true;
      let gen = t.generation in
      Sim.schedule_at t.sim
        ~at:(Sim_time.add t.oldest t.config.max_delay)
        (fun () ->
          if gen = t.generation then begin
            t.timer_armed <- false;
            maybe_flush t
          end)
    end
  end

let add t x =
  if t.n_pending = 0 then t.oldest <- Sim.now t.sim;
  t.pending <- x :: t.pending;
  t.n_pending <- t.n_pending + 1;
  maybe_flush t
