(** Table 2, ZooKeeper column: the abstract API over the ZooKeeper (and
    EZK) client library, preserving the table's RPC cost structure
    ([sub_objects] = getChildren + k × getData; [block] = exists-watch +
    notification; [monitor] = ephemeral node). *)

(** [of_client ~extensible c] builds the abstract API for a connected
    client; [extensible] enables the extension operations (EZK). *)
val of_client : extensible:bool -> Edc_zookeeper.Client.t -> Coord_api.t

(** [of_session ~extensible s] builds the same API over a resilient
    session: every timeout-bounded operation gets deadlines, backoff,
    replica failover and the safe-resubmission policy of
    {!Edc_zookeeper.Session}; parking operations ([block], [await_change],
    [invoke_block]) are passed through untouched. *)
val of_session : extensible:bool -> Edc_zookeeper.Session.t -> Coord_api.t
