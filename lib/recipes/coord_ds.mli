(** Table 2, DepSpace column: the abstract API over the DepSpace (and EDS)
    client library via the object-tuple convention
    ({!Edc_depspace.Objects}).

    [await_change]/[signal_change] use an epoch-token scheme in the spirit
    of DepSpace's blocking reads (§5.2.1): the signaller atomically bumps
    an epoch counter tuple and creates a per-epoch token; waiters read the
    counter and issue a blocking [rd] for the *next* token (tokens are
    never removed, so no wakeup can be lost to concurrent bumps). *)

(** [of_client ~extensible ~monitor_lease c] builds the abstract API;
    [extensible] enables the extension operations (EDS). *)
val of_client :
  extensible:bool ->
  ?monitor_lease:Edc_simnet.Sim_time.t ->
  Edc_depspace.Ds_client.t ->
  Coord_api.t

(** [of_session ~extensible s] builds the same API over a resilient
    session: every timeout-bounded operation gets the deadline, backoff
    and safe-resubmission policy of {!Edc_depspace.Ds_session}; blocking
    reads ([block], [await_change], [invoke_block]) pass through
    untouched. *)
val of_session :
  extensible:bool ->
  ?monitor_lease:Edc_simnet.Sim_time.t ->
  Edc_depspace.Ds_session.t ->
  Coord_api.t
