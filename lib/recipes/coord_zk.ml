(** Table 2, ZooKeeper column: the abstract API over the ZooKeeper (and
    EZK) client library. *)

open Edc_zookeeper
open Edc_ezk

let zerr e = Error (Zerror.to_string e)

let obj_of ~oid ~data (s : Znode.stat) =
  {
    Coord_api.oid;
    data;
    version = s.Znode.version;
    ctime = s.Znode.czxid;
  }

(* How each call reaches the wire: directly ([of_client]) or through a
   resilient session ([of_session]).  The [op] kind drives the session's
   safe-resubmission policy; the direct runner ignores it.  Operations
   that park indefinitely (block / await_change / invoke_block) never go
   through the runner — they have no timeout for a retry policy to act
   on. *)
type runner = {
  run :
    'a.
    op:Session.op_kind -> (unit -> ('a, string) result) -> ('a, string) result;
}

let direct_runner = { run = (fun ~op:_ f -> f ()) }

let session_runner s = { run = (fun ~op f -> Session.call_str s ~op (fun _ -> f ())) }

let rd = Session.Read
let wr_idem = Session.Write { idempotent = true }
let wr = Session.Write { idempotent = false }

let build ~extensible ~runner c =
  let { run } = runner in
  let create ~oid ~data =
    (* Non-idempotent: a resubmitted create that already applied would
       misreport Node_exists. *)
    run ~op:wr (fun () ->
        match Client.create_node c oid data with
        | Ok p -> Ok p
        | Error e -> zerr e)
  in
  let delete ~oid =
    (* Idempotent in effect: deleting twice converges on "gone". *)
    run ~op:wr_idem (fun () ->
        match Client.delete c oid with
        | Ok () -> Ok true
        | Error Zerror.No_node -> Ok false
        | Error e -> zerr e)
  in
  let read ~oid =
    run ~op:rd (fun () ->
        match Client.get_data c oid with
        | Ok (data, s) -> Ok (Some (obj_of ~oid ~data s))
        | Error Zerror.No_node -> Ok None
        | Error e -> zerr e)
  in
  let update ~oid ~data =
    (* Blind overwrite: re-applying the same data is harmless. *)
    run ~op:wr_idem (fun () ->
        match Client.set_data c oid data with
        | Ok _ -> Ok ()
        | Error e -> zerr e)
  in
  let cas ~expected ~data =
    (* "int v = object version observed by last read(o); setData(o, nc, v)".
       Non-idempotent: if the first try applied, a resubmission would hit
       Bad_version and misreport a lost race. *)
    run ~op:wr (fun () ->
        match
          Client.set_data c ~expected_version:expected.Coord_api.version
            expected.Coord_api.oid data
        with
        | Ok _ -> Ok true
        | Error Zerror.Bad_version -> Ok false
        | Error e -> zerr e)
  in
  let sub_object_ids ~oid =
    run ~op:rd (fun () ->
        match Client.get_children c oid with
        | Ok names -> Ok (List.map (Zpath.child oid) names)
        | Error e -> zerr e)
  in
  let sub_objects ~oid =
    (* step 1: getChildren; step 2: one getData per child (k+1 RPCs) *)
    run ~op:rd (fun () ->
        match Client.get_children c oid with
        | Error e -> zerr e
        | Ok names ->
            Ok
              (List.filter_map
                 (fun name ->
                   let child = Zpath.child oid name in
                   match Client.get_data c child with
                   | Ok (data, s) -> Some (obj_of ~oid:child ~data s)
                   | Error _ -> None (* vanished between the two steps *))
                 names))
  in
  let block ~oid =
    match Client.block c oid with Ok () -> Ok () | Error e -> zerr e
  in
  let await_change ~oid ~seen =
    (* Arm the children watch; the arming read returns the current
       membership atomically, so if it already differs from what the
       caller saw, the change has happened and we return at once (this
       closes the classic lost-wakeup race). *)
    let waiter = Client.watch_waiter c oid in
    match Client.get_children c ~watch:true oid with
    | Error e -> zerr e
    | Ok names ->
        let current = List.sort compare (List.map (Zpath.child oid) names) in
        if current <> List.sort compare seen then Ok ()
        else begin
          let (_ : string * Protocol.watch_kind) = Edc_simnet.Proc.await waiter in
          Ok ()
        end
  in
  let signal_change ~oid = ignore oid; Ok () (* watches fire automatically *) in
  let monitor ~oid =
    run ~op:wr (fun () ->
        match Client.monitor c oid with Ok _ -> Ok () | Error e -> zerr e)
  in
  let ext =
    if not extensible then None
    else
      Some
        {
          Coord_api.register =
            (fun program ->
              run ~op:wr (fun () ->
                  match Ezk_client.register c program with
                  | Ok _ -> Ok ()
                  | Error e -> zerr e));
          acknowledge =
            (fun name ->
              (* Acknowledging twice is the same acknowledgment, so the
                 duplicate create folds into success — which makes this
                 safe to resubmit. *)
              run ~op:wr_idem (fun () ->
                  match Ezk_client.acknowledge c name with
                  | Ok _ | Error Zerror.Node_exists -> Ok ()
                  | Error e -> zerr e));
          invoke_read =
            (fun oid ->
              (* An operation extension may mutate state (e.g. the counter's
                 increment), so a timed-out invocation is ambiguous. *)
              run ~op:wr (fun () -> Ezk_client.ext_read c oid));
          invoke_block =
            (fun oid ->
              match Ezk_client.block c oid with Ok d -> Ok d | Error e -> zerr e);
          keep_alive = (fun _ -> () (* session pings keep ephemerals alive *));
        }
  in
  {
    Coord_api.client_id = Client.session c;
    create;
    delete;
    read;
    update;
    cas;
    sub_objects;
    sub_object_ids;
    block;
    await_change;
    signal_change;
    monitor;
    ext;
  }

(** [of_client ~extensible c] builds the API for a connected client. *)
let of_client ~extensible c = build ~extensible ~runner:direct_runner c

(** [of_session ~extensible s] — same API, with every timeout-bounded call
    routed through the resilient session. *)
let of_session ~extensible s =
  build ~extensible ~runner:(session_runner s) (Session.client s)
