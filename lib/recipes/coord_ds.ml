(** Table 2, DepSpace column: the abstract API over the DepSpace (and EDS)
    client library, using the object-tuple convention of
    {!Edc_depspace.Objects}.

    [await_change]/[signal_change] use an epoch-token scheme in the spirit
    of DepSpace's blocking reads (§5.2.1: clients wait by issuing a read
    that blocks until the object is created): the signaller replaces an
    epoch tuple [<oid ^ "#epoch", n>] with [n + 1]; waiters read the
    current epoch and issue a blocking [rd] for the tuple carrying the
    *next* value. *)

open Edc_depspace
open Edc_eds

let epoch_name oid = oid ^ "#epoch"
let epoch_tuple ~oid ~n = Tuple.[ Str (epoch_name oid); Int n ]
let epoch_template oid = Tuple.[ Exact (Str (epoch_name oid)); Any ]

(* one token tuple per epoch; tokens are never removed, so a waiter that
   read epoch [n] can always complete its blocking read for token [n+1]
   even if further bumps happen concurrently *)
let token_name oid n = Printf.sprintf "%s#tok%d" oid n
let token_tuple ~oid ~n = Tuple.[ Str (token_name oid n) ]
let token_exact oid ~n = Tuple.[ Exact (Str (token_name oid n)) ]

let obj_of (v : Objects.view) =
  {
    Coord_api.oid = v.Objects.oid;
    data = v.Objects.data;
    version = v.Objects.version;
    ctime = v.Objects.ctime;
  }

(* How each call reaches the wire: directly ([of_client]) or through a
   resilient session ([of_session]).  The [op] kind drives the session's
   safe-resubmission policy; the direct runner ignores it.  Blocking reads
   (block / await_change / invoke_block) never go through the runner. *)
type runner = {
  run :
    'a.
    op:Ds_session.op_kind -> (unit -> ('a, string) result) ->
    ('a, string) result;
}

let direct_runner = { run = (fun ~op:_ f -> f ()) }

let session_runner s =
  { run = (fun ~op f -> Ds_session.call s ~op (fun _ -> f ())) }

let rd_op = Ds_session.Read
let wr_idem = Ds_session.Write { idempotent = true }
let wr = Ds_session.Write { idempotent = false }

let build ~extensible ~monitor_lease ~runner c =
  let { run } = runner in
  let create ~oid ~data =
    (* the paper's create(o) maps to out(o); keep create semantics by
       refusing to duplicate via cas.  Non-idempotent: a resubmission that
       already applied would misreport "exists". *)
    run ~op:wr (fun () ->
        match
          Ds_client.cas c (Objects.template oid)
            (Objects.tuple ~oid ~data ~version:0 ~ctime:0)
        with
        | Ok true -> Ok oid
        | Ok false -> Error "exists"
        | Error e -> Error e)
  in
  let delete ~oid =
    (* Idempotent in effect: taking twice converges on "gone". *)
    run ~op:wr_idem (fun () ->
        match Ds_client.inp c (Objects.template oid) with
        | Ok (Some _) -> Ok true
        | Ok None -> Ok false
        | Error e -> Error e)
  in
  let read ~oid =
    run ~op:rd_op (fun () ->
        match Ds_client.rdp c (Objects.template oid) with
        | Ok (Some t) -> Ok (Option.map obj_of (Objects.decode t))
        | Ok None -> Ok None
        | Error e -> Error e)
  in
  let update ~oid ~data =
    (* Blind overwrite: re-applying the same data is harmless. *)
    run ~op:wr_idem (fun () ->
        match
          Ds_client.replace c (Objects.template oid)
            (Objects.tuple ~oid ~data ~version:0 ~ctime:0)
        with
        | Ok true -> Ok ()
        | Ok false -> Error "no object"
        | Error e -> Error e)
  in
  let cas ~expected ~data =
    (* replace(o, cc, nc): only replace if the current content is cc.
       Non-idempotent: an applied-then-resubmitted cas would misreport a
       lost race. *)
    let oid = expected.Coord_api.oid in
    run ~op:wr (fun () ->
        Ds_client.replace c
          (Objects.cas_template oid ~data:expected.Coord_api.data)
          (Objects.tuple ~oid ~data
             ~version:(expected.Coord_api.version + 1)
             ~ctime:expected.Coord_api.ctime))
  in
  let sub_objects ~oid =
    (* rdAll(<o, SUB_ANY>): one RPC *)
    run ~op:rd_op (fun () ->
        match Ds_client.rd_all c (Objects.sub_template oid) with
        | Ok tuples ->
            Ok (List.filter_map Objects.decode tuples |> List.map obj_of)
        | Error e -> Error e)
  in
  let sub_object_ids ~oid =
    run ~op:rd_op (fun () ->
        match Ds_client.rd_all c (Objects.sub_template oid) with
        | Ok tuples ->
            Ok
              (List.filter_map
                 (fun t -> Option.map (fun v -> v.Objects.oid) (Objects.decode t))
                 tuples)
        | Error e -> Error e)
  in
  let block ~oid =
    match Ds_client.rd c (Objects.template oid) with
    | Ok _ -> Ok ()
    | Error e -> Error e
  in
  let read_epoch oid =
    match run ~op:rd_op (fun () -> Ds_client.rdp c (epoch_template oid)) with
    | Ok (Some Tuple.[ Str _; Int n ]) -> n
    | _ -> 0
  in
  let await_change ~oid ~seen =
    ignore seen;
    let n = read_epoch oid in
    match Ds_client.rd c (token_exact oid ~n:(n + 1)) with
    | Ok _ -> Ok ()
    | Error e -> Error e
  in
  let signal_change ~oid =
    (* atomically advance the epoch counter (retry on races), then create
       the matching token; token creation is idempotent via cas *)
    let rec bump tries =
      if tries > 64 then Error "epoch bump starved"
      else
        let n = read_epoch oid in
        if
          n = 0
          && run ~op:wr (fun () ->
                 Ds_client.cas c (epoch_template oid) (epoch_tuple ~oid ~n:1))
             = Ok true
        then Ok 1
        else
          match
            (* the bump is non-idempotent: a lost reply must not be
               resubmitted blindly, or a waiter's token could be skipped *)
            run ~op:wr (fun () ->
                Ds_client.replace c
                  Tuple.[ Exact (Str (epoch_name oid)); Exact (Int n) ]
                  (epoch_tuple ~oid ~n:(n + 1)))
          with
          | Ok true -> Ok (n + 1)
          | Ok false -> bump (tries + 1)
          | Error e -> Error e
    in
    match bump 0 with
    | Error e -> Error e
    | Ok n -> (
        (* token creation is idempotent: the cas refuses a duplicate *)
        match
          run ~op:wr_idem (fun () ->
              Ds_client.cas c (token_exact oid ~n) (token_tuple ~oid ~n))
        with
        | Ok _ -> Ok ()
        | Error e -> Error e)
  in
  let monitor ~oid =
    run ~op:wr (fun () ->
        Ds_client.monitor c
          (Objects.tuple ~oid ~data:"" ~version:0 ~ctime:0)
          ~lease:monitor_lease)
  in
  let ext =
    if not extensible then None
    else
      Some
        {
          Coord_api.register =
            (* a duplicate [out] of the registration tuple is not safe to
               resubmit blindly *)
            (fun program -> run ~op:wr (fun () -> Eds_client.register c program));
          acknowledge =
            (fun name -> run ~op:wr (fun () -> Eds_client.acknowledge c name));
          invoke_read =
            (* an operation extension may mutate state, so a timed-out
               invocation is ambiguous *)
            (fun oid -> run ~op:wr (fun () -> Eds_client.ext_read c oid));
          invoke_block = (fun oid -> Eds_client.block c oid);
          keep_alive = (fun oid -> Eds_client.keep_alive c ~oid ~lease:monitor_lease);
        }
  in
  {
    Coord_api.client_id = Ds_client.addr c;
    create;
    delete;
    read;
    update;
    cas;
    sub_objects;
    sub_object_ids;
    block;
    await_change;
    signal_change;
    monitor;
    ext;
  }

(** [of_client ~extensible ?monitor_lease c] builds the API. *)
let of_client ~extensible ?(monitor_lease = Edc_simnet.Sim_time.sec 8) c =
  build ~extensible ~monitor_lease ~runner:direct_runner c

(** [of_session ~extensible ?monitor_lease s] — same API, with every
    timeout-bounded call routed through the resilient session. *)
let of_session ~extensible ?(monitor_lease = Edc_simnet.Sim_time.sec 8) s =
  build ~extensible ~monitor_lease ~runner:(session_runner s)
    (Ds_session.client s)
