(** An EXTENSIBLE ZOOKEEPER deployment: a ZooKeeper cluster with an
    extension manager installed on every replica and the ["/em"] objects
    bootstrapped. *)

open Edc_simnet
open Edc_zookeeper

type t

val create :
  ?n_replicas:int ->
  ?net_config:Net.config ->
  ?server_config:Server.config ->
  ?zab_config:Edc_replication.Zab.config ->
  ?batch:Edc_replication.Batching.config ->
  Sim.t ->
  t

val cluster : t -> Cluster.t
val sim : t -> Sim.t
val net : t -> Server.wire Net.t
val ezk : t -> int -> Ezk.t
val servers : t -> Server.t array

val client : ?config:Client.config -> ?replica:int -> t -> unit -> Client.t

val connected_client :
  ?config:Client.config -> ?replica:int -> t -> unit -> Client.t

val crash_server : t -> int -> unit

(** Restart a replica and rebuild its extension manager from the
    replicated tree (§3.8). *)
val restart_server : t -> int -> unit

(** Elastic growth: boot a learner replica with its extension manager
    installed; the manager reconciles itself from the replicated tree as
    the snapshot bootstrap lands.  Returns the new replica id. *)
val add_server : t -> int

(** Attach a permanent non-voting observer replica with its extension
    manager installed.  Returns the new replica id. *)
val add_observer : t -> int

(** Joint-consensus removal of replica [id] via the current leader. *)
val remove_server : t -> id:int -> (unit, string) result

(** Bind nemesis actions to this deployment (leader = Zab leader). *)
val nemesis_target : t -> Nemesis.target

val run_for : t -> Sim_time.t -> unit
