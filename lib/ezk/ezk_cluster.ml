(** An EXTENSIBLE ZOOKEEPER deployment: a plain ZooKeeper cluster with an
    extension manager installed on every replica and the ["/em"] objects
    bootstrapped. *)

open Edc_simnet
open Edc_zookeeper

type t = { cluster : Cluster.t; mutable ezks : Ezk.t array }

let create ?n_replicas ?net_config ?server_config ?zab_config ?batch sim =
  let cluster =
    Cluster.create ?n_replicas ?net_config ?server_config ?zab_config ?batch
      sim
  in
  let ezks = Array.map Ezk.install (Cluster.servers cluster) in
  (* replica 0 is the initial leader *)
  Ezk.bootstrap (Cluster.servers cluster).(0);
  { cluster; ezks }

let cluster t = t.cluster
let sim t = Cluster.sim t.cluster
let net t = Cluster.net t.cluster
let ezk t i = t.ezks.(i)
let servers t = Cluster.servers t.cluster

let client ?config ?replica t () = Cluster.client ?config ?replica t.cluster ()

let connected_client ?config ?replica t () =
  Cluster.connected_client ?config ?replica t.cluster ()

let crash_server t i = Cluster.crash_server t.cluster i

(** Grow the ensemble: the learner gets its extension manager at boot, and
    the manager reconciles itself from the replicated tree as the snapshot
    bootstrap lands (the [on_snapshot_installed] hook). *)
let add_server t =
  let id = Cluster.add_server t.cluster in
  let fresh = Ezk.install (Cluster.servers t.cluster).(id) in
  t.ezks <- Array.append t.ezks [| fresh |];
  id

(** Attach a permanent non-voting observer with its extension manager
    installed (reconciled from the replicated tree as the bootstrap
    snapshot lands). *)
let add_observer t =
  let id = Cluster.add_observer t.cluster in
  let fresh = Ezk.install (Cluster.servers t.cluster).(id) in
  t.ezks <- Array.append t.ezks [| fresh |];
  id

let remove_server t ~id = Cluster.remove_server t.cluster ~id

(** Restart a replica and reload its extension manager from the replicated
    tree (§3.8). *)
let restart_server t i =
  Cluster.restart_server t.cluster i;
  (* model the process restart: the volatile manager state is rebuilt from
     data objects *)
  let fresh = Ezk.install (Cluster.servers t.cluster).(i) in
  Ezk.reload fresh;
  t.ezks.(i) <- fresh

let nemesis_target t =
  let net = Cluster.net t.cluster in
  (* re-read the server array in every closure: it grows via add_server *)
  {
    Nemesis.name = "ezk";
    nodes = List.init (Array.length (Cluster.servers t.cluster)) Fun.id;
    leader =
      (fun () ->
        let servers = Cluster.servers t.cluster in
        let rec find i =
          if i >= Array.length servers then None
          else if Server.is_leader servers.(i) then Some i
          else find (i + 1)
        in
        find 0);
    crash = crash_server t;
    restart = restart_server t;
    cut = Net.cut_link net;
    heal = Net.heal_link net;
    cut_one_way = (fun ~src ~dst -> Net.cut_link_one_way net ~src ~dst);
    heal_one_way = (fun ~src ~dst -> Net.heal_link_one_way net ~src ~dst);
    silence = Net.set_node_down net;
    unsilence = Net.set_node_up net;
    reconfig_in_flight =
      (fun () ->
        (* arm from learner adoption (bootstrap underway) to final commit;
           skip fenced replicas: a removed node may hold a joint view
           forever (nobody replicates to it anymore) *)
        Array.exists
          (fun s ->
            let z = Server.zab s in
            (not (Edc_replication.Zab.is_fenced z))
            && (Edc_replication.Zab.reconfig_in_flight z
               || Edc_replication.Zab.learners z <> []))
          (Cluster.servers t.cluster));
    set_skew =
      (fun node skew ->
        let servers = Cluster.servers t.cluster in
        if node < Array.length servers then
          Edc_replication.Zab.set_clock_skew (Server.zab servers.(node)) skew);
  }

let run_for t d = Cluster.run_for t.cluster d
