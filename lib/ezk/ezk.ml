(** EXTENSIBLE ZOOKEEPER (EZK, §5.1).

    Installs an extension manager next to a ZooKeeper server replica using
    the server's hook points, mirroring the paper's modifications:

    - the manager is invoked at the *preprocessor* stage, intercepting
      requests whose (kind, object id) matches an acknowledged extension's
      subscription; the extension runs in the sandbox against the leader's
      speculative view; its recorded state changes become one
      multi-transaction, with the produced value piggybacked so the
      client's replica can include it in the reply (§5.1.2);
    - a replica-local predicate redirects extension-matched *reads* to the
      leader, while regular clients keep the untouched read fast path
      (§6.2);
    - registration and deregistration travel through standard [create] /
      [delete] operations on ["/em/<name>"]; the manager's entire state
      lives in data objects (code, an [owner] child, an [ack] directory,
      and the ["/em/index"] object), so recovery just reloads the tree
      (§3.6, §3.8);
    - event extensions run at the leader when a committed transaction
      changes matching state; their changes are proposed as follow-up
      (quiet) transactions, and original watch notifications to clients
      holding a matching acked event extension are suppressed (§5.1.2). *)

open Edc_simnet
open Edc_zookeeper
open Edc_core
module P = Edc_zookeeper.Protocol

type t = { server : Server.t; manager : Manager.t }

let manager t = t.manager
let server t = t.server

(* ------------------------------------------------------------------ *)
(* Operation classification                                            *)
(* ------------------------------------------------------------------ *)

(** [(kind, oid, payload)] of a client operation, for subscription
    matching and handler parameters. *)
let op_info = function
  | P.Create { path; data; _ } -> Some (Subscription.K_create, path, data)
  | P.Delete { path; _ } -> Some (Subscription.K_delete, path, "")
  | P.Set_data { path; data; expected_version = None } ->
      Some (Subscription.K_update, path, data)
  | P.Set_data { path; data; expected_version = Some _ } ->
      Some (Subscription.K_cas, path, data)
  | P.Get_data { path; _ } -> Some (Subscription.K_read, path, "")
  | P.Get_children { path; _ } -> Some (Subscription.K_sub_objects, path, "")
  | P.Exists { path; _ } -> Some (Subscription.K_read, path, "")
  | P.Block { path } -> Some (Subscription.K_block, path, "")
  (* Multi is never intercepted by operation extensions: its atomicity
     contract (possibly cross-shard, §6j) would not survive rewriting. *)
  | P.Sync | P.Multi _ -> None

(* ------------------------------------------------------------------ *)
(* The state proxy (Figure 2)                                          *)
(* ------------------------------------------------------------------ *)

(** Builds a sandbox proxy over the leader's speculative view.  All
    mutations are recorded into [ops] (newest first) — the future
    multi-transaction — while reads see both committed state and the
    recorded mutations (read-your-writes within one extension run).
    [blocker] carries the identity of the intercepted request when the
    extension is allowed to park its client ([Svc_block]); event handlers
    pass [None]. *)
let make_proxy t ~session ~blocker ~ops ~has_block =
  let sv = Server.spec t.server in
  let ze = Zerror.to_string in
  let push op = ops := op :: !ops in
  {
    Sandbox.p_read =
      (fun oid ->
        match Spec_view.read sv oid with
        | Ok (data, stat) ->
            Ok (Value.obj ~id:oid ~data ~version:stat.Znode.version ~ctime:stat.Znode.czxid)
        | Error e -> Error (ze e));
    p_exists = (fun oid -> Spec_view.exists sv oid <> None);
    p_sub_objects =
      (fun oid ->
        match Spec_view.children_with_data sv oid with
        | Ok kids ->
            Ok
              (List.map
                 (fun (id, data, (s : Znode.stat)) ->
                   Value.obj ~id ~data ~version:s.Znode.version ~ctime:s.Znode.czxid)
                 kids)
        | Error e -> Error (ze e));
    p_create =
      (fun ~sequential ~oid ~data ->
        match
          Spec_view.create_node sv ~path:oid ~data ~ephemeral_owner:None ~sequential
        with
        | Ok (actual, op) ->
            push op;
            Ok actual
        | Error e -> Error (ze e));
    p_update =
      (fun ~oid ~data ->
        match Spec_view.set_node sv ~path:oid ~data ~expected_version:None with
        | Ok (op, version) ->
            push op;
            Ok version
        | Error e -> Error (ze e));
    p_cas =
      (fun ~oid ~expected ~data ->
        match Spec_view.read sv oid with
        | Error e -> Error (ze e)
        | Ok (current, _) ->
            if not (String.equal current expected) then Ok false
            else (
              match Spec_view.set_node sv ~path:oid ~data ~expected_version:None with
              | Ok (op, _) ->
                  push op;
                  Ok true
              | Error e -> Error (ze e)));
    p_delete =
      (fun oid ->
        match Spec_view.delete_node sv ~path:oid ~version:None with
        | Ok op ->
            push op;
            Ok true
        | Error Zerror.No_node -> Ok false
        | Error e -> Error (ze e));
    p_block =
      (fun oid ->
        match blocker with
        | Some (origin, xid) ->
            has_block := true;
            push (Txn.Tblock { session; origin; xid; path = oid });
            Ok ()
        | None -> Error "block is only available to operation extensions");
    p_monitor =
      (fun oid ->
        if session = 0 then Error "monitor needs an invoking client"
        else
          match
            Spec_view.create_node sv ~path:oid ~data:""
              ~ephemeral_owner:(Some session) ~sequential:false
          with
          | Ok (_, op) ->
              push op;
              Ok ()
          | Error Zerror.Node_exists -> Ok () (* already monitored *)
          | Error e -> Error (ze e));
    p_notify =
      (fun ~client ~oid ->
        push (Txn.Tnotify { session = client; path = oid; kind = P.Node_created });
        Ok ());
    p_clock = (fun () -> Sim_time.to_ns (Sim.now (Server.sim t.server)));
  }

(* ------------------------------------------------------------------ *)
(* Extension-manager operations on /em (registration lifecycle)        *)
(* ------------------------------------------------------------------ *)

let owner_object name = Manager.extension_object name ^ "/owner"
let ack_dir name = Manager.extension_object name ^ "/ack"

let index_txn t ~names =
  let sv = Server.spec t.server in
  match
    Spec_view.set_node sv ~path:Manager.em_index
      ~data:(String.concat "\n" (List.sort compare names))
      ~expected_version:None
  with
  | Ok (op, _) -> [ op ]
  | Error _ -> [] (* index missing: tolerated, the tree itself is scanned on reload *)

let register_txn t ~session ~name ~code =
  let sv = Server.spec t.server in
  Spec_view.begin_txn sv;
  let ( let* ) = Result.bind in
  let create path data =
    Result.map snd
      (Spec_view.create_node sv ~path ~data ~ephemeral_owner:None ~sequential:false)
  in
  let result =
    let* ext = create (Manager.extension_object name) code in
    let* owner = create (owner_object name) (string_of_int session) in
    let* ack = create (ack_dir name) "" in
    let names = name :: Manager.registered_names t.manager in
    Ok ([ ext; owner; ack ] @ index_txn t ~names)
  in
  match result with
  | Ok ops ->
      Spec_view.commit_txn sv;
      Server.Handled (ops, P.Created (Manager.extension_object name))
  | Error e ->
      Spec_view.rollback_txn sv;
      Server.Reject e

let deregister_txn t ~name =
  let sv = Server.spec t.server in
  Spec_view.begin_txn sv;
  let delete path =
    Result.map (fun op -> [ op ]) (Spec_view.delete_node sv ~path ~version:None)
  in
  let acks =
    match Spec_view.children sv (ack_dir name) with
    | Ok kids -> List.map (fun k -> ack_dir name ^ "/" ^ k) kids
    | Error _ -> []
  in
  let ( let* ) = Result.bind in
  let rec delete_all acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | p :: rest ->
        let* ops = delete p in
        delete_all (ops :: acc) rest
  in
  let result =
    let* ops =
      delete_all []
        (acks @ [ ack_dir name; owner_object name; Manager.extension_object name ])
    in
    let names = List.filter (( <> ) name) (Manager.registered_names t.manager) in
    Ok (ops @ index_txn t ~names)
  in
  match result with
  | Ok ops ->
      Spec_view.commit_txn sv;
      Server.Handled (ops, P.Deleted)
  | Error e ->
      Spec_view.rollback_txn sv;
      Server.Reject e

(** Requests touching the manager's namespace. *)
let em_intercept t ~session op =
  match op with
  | P.Create { path; data; _ } -> (
      match Manager.classify_path path with
      | Manager.Em_extension name -> (
          match Manager.verify_code t.manager data with
          | Error msg -> Some (Server.Reject (Zerror.Extension_error msg))
          | Ok program ->
              if program.Program.name <> name then
                Some (Server.Reject (Zerror.Extension_error "name mismatch"))
              else if Manager.find t.manager name <> None then
                Some (Server.Reject (Zerror.Extension_error "already registered"))
              else Some (register_txn t ~session ~name ~code:data))
      | Manager.Em_ack (name, client) ->
          if client <> session then
            Some (Server.Reject (Zerror.Extension_error "may only ack for oneself"))
          else if Manager.find t.manager name = None then
            Some (Server.Reject (Zerror.Extension_error "unknown extension"))
          else None (* ordinary create; bookkeeping happens on apply *)
      | Manager.Em_root | Manager.Em_index | Manager.Not_em -> None)
  | P.Delete { path; _ } -> (
      match Manager.classify_path path with
      | Manager.Em_extension name -> (
          match Manager.find t.manager name with
          | None -> Some (Server.Reject (Zerror.Extension_error "unknown extension"))
          | Some entry ->
              if entry.Manager.owner <> session then
                Some (Server.Reject (Zerror.Extension_error "only the owner may deregister"))
              else Some (deregister_txn t ~name))
      | Manager.Em_ack _ -> None (* un-ack: ordinary delete *)
      | Manager.Em_root | Manager.Em_index ->
          Some (Server.Reject (Zerror.Extension_error "reserved object"))
      | Manager.Not_em -> None)
  | P.Set_data { path; _ } -> (
      match Manager.classify_path path with
      | Manager.Not_em -> None
      | _ -> Some (Server.Reject (Zerror.Extension_error "extension objects are immutable")))
  | P.Get_data _ | P.Get_children _ | P.Exists _ | P.Block _ | P.Sync
  | P.Multi _ ->
      None

(* ------------------------------------------------------------------ *)
(* Operation extensions at the preprocessor                            *)
(* ------------------------------------------------------------------ *)

let run_operation_extension t ~origin ~session ~xid ~entry ~kind ~oid ~data =
  let sv = Server.spec t.server in
  let ops = ref [] in
  let has_block = ref false in
  let proxy =
    make_proxy t ~session ~blocker:(Some (origin, xid)) ~ops ~has_block
  in
  let params =
    [
      ("oid", Value.Str oid);
      ("data", Value.Str data);
      ("client", Value.Int session);
      ("kind", Value.Str (Subscription.op_kind_to_string kind));
    ]
  in
  Spec_view.begin_txn sv;
  match Manager.run_operation t.manager entry ~proxy ~params with
  | Ok value ->
      Spec_view.commit_txn sv;
      let ops = List.rev !ops in
      if !has_block then Server.Handled_deferred ops
      else Server.Handled (ops, P.Ext (Value.serialize value))
  | Error e ->
      Spec_view.rollback_txn sv;
      Server.Reject (Zerror.Extension_error (Sandbox.error_to_string e))

let intercept t server ~origin ~session ~xid op =
  ignore server;
  match em_intercept t ~session op with
  | Some action -> action
  | None -> (
      match op_info op with
      | None -> Server.Pass
      | Some (kind, oid, data) -> (
          match Manager.match_operation t.manager ~client:session ~kind ~oid with
          | Some entry ->
              run_operation_extension t ~origin ~session ~xid ~entry ~kind ~oid ~data
          | None -> Server.Pass))

(* ------------------------------------------------------------------ *)
(* Post-apply: manager bookkeeping + event extensions                  *)
(* ------------------------------------------------------------------ *)

let run_event_extensions t ~kind ~oid ~trigger_session =
  let entries = Manager.match_events t.manager ~kind ~oid in
  List.iter
    (fun (entry : Manager.entry) ->
      let sv = Server.spec t.server in
      let ops = ref [] in
      let has_block = ref false in
      let proxy = make_proxy t ~session:0 ~blocker:None ~ops ~has_block in
      let params =
        [
          ("oid", Value.Str oid);
          ("kind", Value.Str (Subscription.event_kind_to_string kind));
          ("client", Value.Int trigger_session);
        ]
      in
      Spec_view.begin_txn sv;
      match Manager.run_event t.manager entry ~proxy ~params with
      | Ok _ ->
          Spec_view.commit_txn sv;
          let ops = List.rev !ops in
          if ops <> [] then Server.propose_internal t.server ~quiet:true ops
      | Error e ->
          Spec_view.rollback_txn sv;
          Logs.warn (fun m ->
              m "event extension %s failed: %s" entry.Manager.program.Program.name
                (Sandbox.error_to_string e)))
    entries

let on_applied t server (txn : Txn.t) =
  (* Registry bookkeeping: runs identically on every replica, which is how
     all replicas' extension managers stay consistent. *)
  List.iter
    (fun op ->
      match op with
      | Txn.Tcreate { path; data; _ } -> (
          match Manager.classify_path path with
          | Manager.Em_extension name ->
              (match
                 Manager.apply_registration t.manager ~name ~owner:txn.session
                   ~code:data
               with
              | Ok _ -> ()
              | Error msg ->
                  Logs.warn (fun m -> m "replica refused extension %s: %s" name msg))
          | Manager.Em_ack (name, client) -> Manager.apply_ack t.manager ~name ~client
          | Manager.Em_root | Manager.Em_index | Manager.Not_em -> ())
      | Txn.Tdelete { path } -> (
          match Manager.classify_path path with
          | Manager.Em_extension name -> Manager.apply_deregistration t.manager ~name
          | Manager.Em_ack (name, client) -> Manager.apply_unack t.manager ~name ~client
          | Manager.Em_root | Manager.Em_index | Manager.Not_em -> ())
      | Txn.Tset _ | Txn.Tsession_open _ | Txn.Tsession_close _
      | Txn.Tsession_move _ | Txn.Tblock _ | Txn.Tnotify _ | Txn.Terror
      | Txn.Tprep _ | Txn.Tdecide _ | Txn.Tresolve _ ->
          ())
    txn.ops;
  (* Event extensions execute at the leader (passive replication: one
     execution, replicated effects), in commit order, skipping follow-ups
     of event extensions themselves. *)
  if Server.is_leader server && not txn.quiet then
    List.iter
      (fun op ->
        let ev =
          match op with
          | Txn.Tcreate { path; _ } -> Some (Subscription.E_created, path)
          | Txn.Tdelete { path } -> Some (Subscription.E_deleted, path)
          | Txn.Tset { path; _ } -> Some (Subscription.E_changed, path)
          | Txn.Tsession_open _ | Txn.Tsession_close _ | Txn.Tsession_move _
          | Txn.Tblock _ | Txn.Tnotify _ | Txn.Terror | Txn.Tprep _
          | Txn.Tdecide _ | Txn.Tresolve _ ->
              None
        in
        match ev with
        | Some (kind, oid) when Manager.classify_path oid = Manager.Not_em ->
            run_event_extensions t ~kind ~oid ~trigger_session:txn.session
        | Some _ | None -> ())
      txn.ops

(* ------------------------------------------------------------------ *)
(* Remaining hooks                                                     *)
(* ------------------------------------------------------------------ *)

let read_needs_leader t _server ~session op =
  (* no registrations at all is the overwhelmingly common state on the
     regular read path (§6.2's overhead experiment): skip matching *)
  if Manager.extension_count t.manager = 0 then false
  else
    match op_info op with
    | Some (kind, oid, _) ->
        Manager.match_operation t.manager ~client:session ~kind ~oid <> None
    | None -> false

let watch_event_kind = function
  | P.Node_created -> Subscription.E_created
  | P.Node_deleted -> Subscription.E_deleted
  | P.Node_changed -> Subscription.E_changed
  | P.Children_changed -> Subscription.E_changed

let suppress_watch t _server ~session ~path kind =
  Manager.extension_count t.manager <> 0
  && Manager.client_has_event_match t.manager ~client:session
       ~kind:(watch_event_kind kind) ~oid:path

(* ------------------------------------------------------------------ *)
(* Installation and recovery                                           *)
(* ------------------------------------------------------------------ *)

(** [install server] attaches an extension manager to one replica. *)
let rec install server =
  let manager = Manager.create ~mode:Verify.Passive () in
  let t = { server; manager } in
  Server.set_hook_intercept server (fun srv ~origin ~session ~xid op ->
      intercept t srv ~origin ~session ~xid op);
  Server.set_hook_read_needs_leader server (fun srv ~session op ->
      read_needs_leader t srv ~session op);
  Server.set_hook_on_applied server (fun srv txn -> on_applied t srv txn);
  Server.set_hook_suppress_watch server (fun srv ~session ~path kind ->
      suppress_watch t srv ~session ~path kind);
  Server.set_hook_on_snapshot_installed server (fun _srv ->
      (* the registry is derived state: reconcile it against the freshly
         installed tree (§3.8).  Differential, not clear-and-rebuild:
         extensions whose code and owner survived the install keep their
         staged compilation artifacts, so a chunked state transfer does
         not force a recompile storm. *)
      reload t);
  t

(** [reload t] reconciles the manager with the committed tree (§3.8):
    reads the index object, then each extension's code, owner and acks
    from their data objects.  Registrations already present with identical
    code and owner keep their compiled handlers; everything else is
    (re)compiled, and registrations absent from the tree are dropped.
    Called after a replica restart or snapshot install. *)
and reload t =
  let tree = Server.tree t.server in
  let names =
    match Data_tree.get_data tree Manager.em_index with
    | Ok (data, _) when data <> "" -> String.split_on_char '\n' data
    | Ok _ -> []
    | Error _ -> (
        (* no index: scan the /em children directly *)
        match Data_tree.get_children tree Manager.em_root with
        | Ok kids -> List.filter (fun k -> k <> "index") kids
        | Error _ -> [])
  in
  List.iter
    (fun stale ->
      if not (List.mem stale names) then
        Manager.apply_deregistration t.manager ~name:stale)
    (Manager.registered_names t.manager);
  List.iter
    (fun name ->
      match Data_tree.get_data tree (Manager.extension_object name) with
      | Error _ ->
          (* indexed but gone from the tree: drop any stale registration *)
          Manager.apply_deregistration t.manager ~name
      | Ok (code, _) ->
          let owner =
            match Data_tree.get_data tree (owner_object name) with
            | Ok (d, _) -> Option.value ~default:0 (int_of_string_opt d)
            | Error _ -> 0
          in
          (match Manager.reload_registration t.manager ~name ~owner ~code with
          | Ok _ -> ()
          | Error msg ->
              Logs.warn (fun m -> m "reload refused extension %s: %s" name msg));
          (match Data_tree.get_children tree (ack_dir name) with
          | Ok kids ->
              List.iter
                (fun k ->
                  match int_of_string_opt k with
                  | Some client -> Manager.apply_ack t.manager ~name ~client
                  | None -> ())
                kids
          | Error _ -> ()))
    names

(** Bootstrap the manager's objects (["/em"], ["/em/index"]) — run once at
    the initial leader. *)
let bootstrap server =
  let sv = Server.spec server in
  let mint path =
    match Spec_view.exists sv path with
    | Some _ -> []
    | None -> (
        match
          Spec_view.create_node sv ~path ~data:"" ~ephemeral_owner:None
            ~sequential:false
        with
        | Ok (_, op) -> [ op ]
        | Error _ -> [])
  in
  let ops = mint Manager.em_root @ mint Manager.em_index in
  if ops <> [] then Server.propose_internal server ops
