(** DepSpace server replica (the paper's Figure 4 stack): PBFT at the
    bottom, then the EDS extension layer (via hooks), policy enforcement,
    access control, and the tuple space.  Every replica executes every
    ordered request deterministically and replies directly to the client.

    Blocking operations park inside the replicated space; an unblock is
    DepSpace's notion of an event (§5.2.2).  Read-only requests marked
    [fast] are served from local state on a separate core, with expired
    leases filtered out. *)

open Edc_simnet
open Edc_replication
module P = Ds_protocol

type hook_action =
  | Pass
  | Handled of P.result
  | No_reply  (** the extension parked the client (server-side block) *)
  | Rejected of string

type config = { exec_cost : Sim_time.t }

val default_config : config

type t

val create :
  ?config:config ->
  ?pbft_config:Pbft.config ->
  sim:Sim.t ->
  net:P.wire Net.t ->
  id:int ->
  replica_ids:int list ->
  f:int ->
  unit ->
  t

val start : t -> unit
val crash : t -> unit

(** Revive a crashed replica: durable state is kept, PBFT recovery
    re-delivers the ordered suffix the replica missed. *)
val restart : t -> unit

(** Make this replica corrupt its replies (masked by client voting). *)
val set_byzantine : t -> unit

val sim : t -> Sim.t
val space : t -> Space.t
val access : t -> Access.t
val policy : t -> Policy.t
val id : t -> int
val executed_ops : t -> int
val pbft : t -> P.request Pbft.t

(** The unblock cascade after an insert (also used by the EDS extension
    layer when committing deferred inserts). *)
val process_unblocked : t -> ts:Sim_time.t -> Tuple.t -> unit

(** Run one operation through policy, access control, and the space;
    [None] = the call parked. *)
val execute :
  t -> client:int -> rseq:int -> ts:Sim_time.t -> P.op -> P.result option

(** Extension hook points (installed by EDS). *)

val set_hook_intercept :
  t -> (t -> client:int -> rseq:int -> ts:Sim_time.t -> P.op -> hook_action) -> unit

val set_hook_fast_path_allowed : t -> (t -> client:int -> P.op -> bool) -> unit

val set_hook_on_unblock :
  t -> (t -> client:int -> Tuple.template -> Tuple.t -> [ `Proceed | `Reblock ]) -> unit

val set_hook_on_deleted : t -> (t -> ts:Sim_time.t -> Tuple.t -> unit) -> unit

val set_hook_on_inserted :
  t -> (t -> ts:Sim_time.t -> owner:int -> Tuple.t -> unit) -> unit
