(** Deployment assembly: a simulated DepSpace ensemble plus clients.

    [3f + 1] replicas (four for the paper's [f = 1] configuration); every
    client talks to all replicas. *)

open Edc_simnet

type t = {
  sim : Sim.t;
  net : Ds_protocol.wire Net.t;
  servers : Ds_server.t array;
  f : int;
  mutable next_client_addr : int;
}

let client_addr_base = 1000

let create ?(f = 1) ?net_config ?server_config ?pbft_config ?batch sim =
  let n = (3 * f) + 1 in
  let net = Net.create ?config:net_config sim in
  let pbft_config =
    (* [?batch] overrides just the batching knob of the pbft config in
       effect (see Cluster.create). *)
    match batch with
    | None -> pbft_config
    | Some b ->
        let base =
          Option.value pbft_config ~default:Edc_replication.Pbft.default_config
        in
        Some { base with Edc_replication.Pbft.batch = b }
  in
  let replica_ids = List.init n Fun.id in
  let servers =
    Array.init n (fun id ->
        Ds_server.create ?config:server_config ?pbft_config ~sim ~net ~id
          ~replica_ids ~f ())
  in
  Array.iter Ds_server.start servers;
  { sim; net; servers; f; next_client_addr = client_addr_base }

let sim t = t.sim
let net t = t.net
let servers t = t.servers
let f t = t.f

let client ?config t () =
  let addr = t.next_client_addr in
  t.next_client_addr <- t.next_client_addr + 1;
  Ds_client.create ?config ~sim:t.sim ~net:t.net ~addr
    ~replicas:(List.init (Array.length t.servers) Fun.id)
    ~f:t.f ()

let crash_server t i =
  Ds_server.crash t.servers.(i);
  Net.set_node_down t.net i

let restart_server t i =
  Net.set_node_up t.net i;
  Ds_server.restart t.servers.(i)

let run_for t d = Sim.run ~until:(Sim_time.add (Sim.now t.sim) d) t.sim
