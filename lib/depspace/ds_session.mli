(** Resilient session over {!Ds_client}: deadline, decorrelated-jitter
    backoff, and a safe-resubmission policy.

    The DepSpace client already multicasts every request to all replicas
    and votes on replies, so there is no replica to fail over to — retry
    with backoff rides out view changes and restarts instead.  The
    resubmission contract matches {!Session}: reads and idempotent writes
    retry until the deadline; a non-idempotent write that times out
    surfaces as ["maybe applied"] and is never resubmitted blindly; after
    writes exhaust their budget the session turns on its {!degraded}
    (read-only) signal until a write succeeds again. *)

type op_kind = Read | Write of { idempotent : bool }

type stats = {
  mutable calls : int;
  mutable retries : int;
  mutable maybe_applied : int;
  mutable gave_up : int;
}

type t

val wrap : ?policy:Edc_core.Retry.policy -> Ds_client.t -> t
val client : t -> Ds_client.t
val stats : t -> stats
val degraded : t -> bool

(** [call t ~op f] runs [f client] under the retry policy.  Do not wrap
    blocking reads ([rd]/[in_] without a timeout): they park until
    matched. *)
val call :
  t -> op:op_kind -> (Ds_client.t -> ('a, string) result) ->
  ('a, string) result
