(** Deployment assembly: a simulated DepSpace ensemble plus clients —
    [3f + 1] replicas (four for the paper's [f = 1]); every client talks
    to all replicas. *)

open Edc_simnet

type t

val create :
  ?f:int ->
  ?net_config:Net.config ->
  ?server_config:Ds_server.config ->
  ?pbft_config:Edc_replication.Pbft.config ->
  ?batch:Edc_replication.Batching.config ->
  Sim.t ->
  t

val sim : t -> Sim.t
val net : t -> Ds_protocol.wire Net.t
val servers : t -> Ds_server.t array
val f : t -> int

val client : ?config:Ds_client.config -> t -> unit -> Ds_client.t

(** Crash a replica (process + network). *)
val crash_server : t -> int -> unit

(** Revive a crashed replica (network + PBFT view/state recovery). *)
val restart_server : t -> int -> unit

val run_for : t -> Sim_time.t -> unit
