open Edc_simnet
module Retry = Edc_core.Retry

type op_kind = Read | Write of { idempotent : bool }

type stats = {
  mutable calls : int;
  mutable retries : int;
  mutable maybe_applied : int;
  mutable gave_up : int;
}

type t = {
  sim : Sim.t;
  rng : Rng.t;
  client : Ds_client.t;
  policy : Retry.policy;
  mutable degraded : bool;
  stats : stats;
}

let wrap ?(policy = Retry.default_policy) client =
  let sim = Ds_client.sim client in
  {
    sim;
    rng = Rng.split (Sim.rng sim);
    client;
    policy;
    degraded = false;
    stats = { calls = 0; retries = 0; maybe_applied = 0; gave_up = 0 };
  }

let client t = t.client
let stats t = t.stats
let degraded t = t.degraded

(* A timeout is the only transient condition the vote-based client
   reports: either fewer than [f + 1] replicas answered in time (view
   change, partition, restarts) or the request never got ordered.  Every
   other error is a logical reply agreed on by a quorum. *)
let classify ~op e =
  if e = "timeout" then
    match op with
    | Read | Write { idempotent = true } -> Retry.Transient e
    | Write { idempotent = false } -> Retry.Ambiguous e
  else Retry.Permanent e

let call t ~op f =
  t.stats.calls <- t.stats.calls + 1;
  let attempt ~attempt:_ =
    match f t.client with
    | Ok v ->
        (match op with
        | Write _ -> t.degraded <- false
        | Read -> ());
        Ok v
    | Error e -> Error (classify ~op e)
  in
  match
    Retry.run ~sim:t.sim ~rng:t.rng ~policy:t.policy
      ~on_retry:(fun ~attempt:_ ~delay:_ ->
        t.stats.retries <- t.stats.retries + 1)
      attempt
  with
  | Retry.Done { value; _ } -> Ok value
  | Retry.Maybe_applied _ ->
      t.stats.maybe_applied <- t.stats.maybe_applied + 1;
      Error "maybe applied"
  | Retry.Gave_up { error; _ } ->
      t.stats.gave_up <- t.stats.gave_up + 1;
      (match op with
      | Write _ -> t.degraded <- true
      | Read -> ());
      Error error
  | Retry.Rejected { error; _ } -> Error error
