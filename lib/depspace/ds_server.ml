(** DepSpace server replica.

    Mirrors the paper's Figure 4: a stack of layers — BFT-SMaRt (our PBFT
    substrate) at the bottom, then the EDS extension layer, then policy
    enforcement, access control, and the tuple space.  Being actively
    replicated, *every* replica executes *every* ordered request
    deterministically and replies to the client directly; the client
    library accepts a result once [f + 1] matching replies arrive.

    Blocking operations ([rd]/[in] with no match) are parked inside the
    replicated space; an unblock is DepSpace's notion of an event, and the
    [on_unblock] hook lets EDS event extensions run at that point and
    possibly re-block the call (§5.2.2). *)

open Edc_simnet
open Edc_replication
module P = Ds_protocol

type hook_action =
  | Pass
  | Handled of P.result
  | No_reply  (** the extension parked the client (server-side block) *)
  | Rejected of string

type config = { exec_cost : Sim_time.t }

(* calibrated: BFT execution is costlier per request than the
   primary-backup path (every replica executes, plus MAC-equivalent
   processing), capping EDS slightly below EZK as in the paper *)
let default_config = { exec_cost = Sim_time.us 50 }

type t = {
  sim : Sim.t;
  net : P.wire Net.t;
  id : int;
  replica_ids : int list;
  f : int;
  config : config;
  mutable pbft : P.request Pbft.t option;
  space : Space.t;
  access : Access.t;
  policy : Policy.t;
  mutable byzantine : bool;  (** if set, this replica corrupts its replies *)
  cpu : Cpu.t;  (** ordered-execution lane *)
  read_cpu : Cpu.t;
      (** separate core for the unordered read fast path (the testbed
          machines are multi-core; BFT-SMaRt serves read-only requests
          from its own threads) *)
  (* extension hooks (installed by EDS) *)
  mutable hook_intercept : t -> client:int -> rseq:int -> ts:Sim_time.t -> P.op -> hook_action;
  mutable hook_fast_path_allowed : t -> client:int -> P.op -> bool;
      (** EDS: reads matching an acknowledged extension must be ordered *)
  mutable hook_on_unblock :
    t -> client:int -> Tuple.template -> Tuple.t -> [ `Proceed | `Reblock ];
  mutable hook_on_deleted : t -> ts:Sim_time.t -> Tuple.t -> unit;
  mutable hook_on_inserted : t -> ts:Sim_time.t -> owner:int -> Tuple.t -> unit;
  (* statistics *)
  mutable executed : int;
}

let sim t = t.sim
let space t = t.space
let access t = t.access
let policy t = t.policy
let id t = t.id
let executed_ops t = t.executed
let pbft t = match t.pbft with Some p -> p | None -> invalid_arg "not wired"

let reply t ~client ~rseq result =
  let result = if t.byzantine then P.Err "byzantine" else result in
  let msg = P.Ds_reply { rseq; result } in
  (* replies leave through a serial execution stage: per-request CPU is
     what caps a replica's throughput *)
  Cpu.exec t.cpu ~cost:t.config.exec_cost (fun () ->
      Net.send t.net ~src:t.id ~dst:client ~size:(P.wire_size msg) msg)

(* ------------------------------------------------------------------ *)
(* Layered execution                                                   *)
(* ------------------------------------------------------------------ *)

let policy_view ~client op =
  let kind = P.op_kind op in
  let tuple, template =
    match op with
    | P.Out { tuple; _ } -> (Some tuple, None)
    | P.Cas { template; tuple } | P.Replace { template; tuple } ->
        (Some tuple, Some template)
    | P.Rdp tp | P.Inp tp | P.Rd tp | P.In_ tp | P.Rd_all tp -> (None, Some tp)
    | P.Renew { template; _ } -> (None, Some template)
    | P.Noop -> (None, None)
  in
  { Policy.v_client = client; v_kind = kind; v_tuple = tuple; v_template = template }

let name_of op =
  match op with
  | P.Out { tuple; _ } -> Access.tuple_name tuple
  | P.Cas { template; _ } | P.Replace { template; _ } -> Access.template_name template
  | P.Rdp tp | P.Inp tp | P.Rd tp | P.In_ tp | P.Rd_all tp ->
      Access.template_name tp
  | P.Renew { template; _ } -> Access.template_name template
  | P.Noop -> None

(* The unblock cascade: an insert may wake parked calls; the event hook may
   re-block them. *)
let rec process_unblocked t ~ts tuple =
  let woken, _ = Space.unblockable t.space tuple in
  List.iter
    (fun (p : Space.parked) ->
      match t.hook_on_unblock t ~client:p.p_client p.p_template tuple with
      | `Reblock ->
          ignore
            (Space.park t.space ~client:p.p_client ~rseq:p.p_rseq
               ~template:p.p_template ~take:p.p_take
              : int)
      | `Proceed ->
          if p.p_take then begin
            (* the blocked [in] consumes the tuple *)
            match Space.take t.space (Tuple.exact tuple) with
            | Some taken ->
                t.hook_on_deleted t ~ts taken;
                reply t ~client:p.p_client ~rseq:p.p_rseq
                  (P.Tuple_opt (Some taken))
            | None ->
                (* consumed in the meantime (by an earlier take in this
                   cascade); park again *)
                ignore
                  (Space.park t.space ~client:p.p_client ~rseq:p.p_rseq
                     ~template:p.p_template ~take:p.p_take
                    : int)
          end
          else reply t ~client:p.p_client ~rseq:p.p_rseq (P.Tuple_opt (Some tuple)))
    woken

and insert_tuple t ~ts ~client ~lease tuple =
  let tuple =
    Objects.stamp_ctime tuple ~ctime:(Space.next_insert_seq t.space)
  in
  let expiry = Option.map (fun d -> Sim_time.add ts d) lease in
  ignore (Space.insert t.space ~owner:client ~expiry tuple : int);
  t.hook_on_inserted t ~ts ~owner:client tuple;
  process_unblocked t ~ts tuple

(** [execute t ~client ~rseq ~ts op] runs [op] through policy, access
    control, and the space.  Returns [None] when the call parked (no reply
    yet).  This same function backs the extension proxy, so extension
    operations pass the upper layers exactly as the paper requires. *)
let execute t ~client ~rseq ~ts op =
  match Policy.check t.policy t.space (policy_view ~client op) with
  | Error why -> Some (P.Denied why)
  | Ok () ->
      if not (Access.check t.access ~client ~kind:(P.op_kind op) ~name:(name_of op))
      then Some (P.Denied "access denied")
      else (
        match op with
        | P.Out { tuple; lease } ->
            insert_tuple t ~ts ~client ~lease tuple;
            Some P.Unit_r
        | P.Rdp template -> Some (P.Tuple_opt (Space.find_tuple t.space template))
        | P.Inp template -> (
            match Space.take t.space template with
            | Some tuple ->
                t.hook_on_deleted t ~ts tuple;
                Some (P.Tuple_opt (Some tuple))
            | None -> Some (P.Tuple_opt None))
        | P.Rd template -> (
            match Space.find_tuple t.space template with
            | Some tuple -> Some (P.Tuple_opt (Some tuple))
            | None ->
                ignore (Space.park t.space ~client ~rseq ~template ~take:false : int);
                None)
        | P.In_ template -> (
            match Space.take t.space template with
            | Some tuple ->
                t.hook_on_deleted t ~ts tuple;
                Some (P.Tuple_opt (Some tuple))
            | None ->
                ignore (Space.park t.space ~client ~rseq ~template ~take:true : int);
                None)
        | P.Cas { template; tuple } ->
            if Space.find t.space template = None then begin
              insert_tuple t ~ts ~client ~lease:None tuple;
              Some (P.Bool_r true)
            end
            else Some (P.Bool_r false)
        | P.Replace { template; tuple } -> (
            (* a replace is a content change, not an object removal: no
               deletion event fires (mirrors ZooKeeper's Node_changed) *)
            match Space.take t.space template with
            | Some _old ->
                insert_tuple t ~ts ~client ~lease:None tuple;
                Some (P.Bool_r true)
            | None -> Some (P.Bool_r false))
        | P.Rd_all template -> Some (P.Tuples (Space.read_all t.space template))
        | P.Renew { template; lease } ->
            let n =
              Space.renew t.space ~owner:client ~template
                ~expiry:(Sim_time.add ts lease)
            in
            Some (P.Int_r n)
        | P.Noop -> Some P.Unit_r)

(* ------------------------------------------------------------------ *)
(* Ordered-request execution (PBFT deliver callback)                   *)
(* ------------------------------------------------------------------ *)

let purge_expired t ~ts =
  let dead = Space.expire t.space ~now:ts in
  List.iter (fun tuple -> t.hook_on_deleted t ~ts tuple) dead

let deliver t (_rid : Pbft.request_id) (req : P.request) ~ts =
  t.executed <- t.executed + 1;
  purge_expired t ~ts;
  match t.hook_intercept t ~client:req.client ~rseq:req.rseq ~ts req.op with
  | Handled result -> reply t ~client:req.client ~rseq:req.rseq result
  | No_reply -> ()
  | Rejected why -> reply t ~client:req.client ~rseq:req.rseq (P.Denied why)
  | Pass -> (
      match execute t ~client:req.client ~rseq:req.rseq ~ts req.op with
      | Some result -> reply t ~client:req.client ~rseq:req.rseq result
      | None -> () (* parked; reply comes from the unblock cascade *))

(* ------------------------------------------------------------------ *)
(* Wiring                                                              *)
(* ------------------------------------------------------------------ *)

let handle_wire t ~src msg =
  match msg with
  | P.Ds_request { rseq; op; fast } ->
      if fast && P.is_read_only op && t.hook_fast_path_allowed t ~client:src op
      then begin
        (* read-only fast path: answer from local state without ordering
           (and without mutating it: expired leases are filtered, not
           purged); the client masks divergence by requiring 2f+1 matching
           replies *)
        t.executed <- t.executed + 1;
        let now = Sim.now t.sim in
        let result =
          match Policy.check t.policy t.space (policy_view ~client:src op) with
          | Error why -> P.Denied why
          | Ok () ->
              if
                not
                  (Access.check t.access ~client:src ~kind:(P.op_kind op)
                     ~name:(name_of op))
              then P.Denied "access denied"
              else (
                match op with
                | P.Rdp template -> P.Tuple_opt (Space.find_live t.space ~now template)
                | P.Rd_all template -> P.Tuples (Space.read_all_live t.space ~now template)
                | _ -> P.Err "not a fast-path operation")
        in
        Cpu.exec t.read_cpu ~cost:t.config.exec_cost (fun () ->
            let msg = P.Ds_reply { rseq; result } in
            Net.send t.net ~src:t.id ~dst:src ~size:(P.wire_size msg) msg)
      end
      else
        Pbft.submit (pbft t)
          { Pbft.client = src; rseq }
          { P.client = src; rseq; op }
  | P.Ds_pbft m -> Pbft.handle (pbft t) ~src m
  | P.Ds_reply _ -> () (* not addressed to servers *)

let create ?(config = default_config) ?pbft_config ~sim ~net ~id ~replica_ids
    ~f () =
  let t =
    {
      sim;
      net;
      id;
      replica_ids;
      f;
      config;
      pbft = None;
      space = Space.create ();
      access = Access.create ();
      policy = Policy.create ();
      byzantine = false;
      cpu = Cpu.create sim;
      read_cpu = Cpu.create sim;
      hook_intercept = (fun _ ~client:_ ~rseq:_ ~ts:_ _ -> Pass);
      hook_fast_path_allowed = (fun _ ~client:_ _ -> true);
      hook_on_unblock = (fun _ ~client:_ _ _ -> `Proceed);
      hook_on_deleted = (fun _ ~ts:_ _ -> ());
      hook_on_inserted = (fun _ ~ts:_ ~owner:_ _ -> ());
      executed = 0;
    }
  in
  let send ~dst msg =
    Net.send net ~src:id ~dst ~size:(P.wire_size (P.Ds_pbft msg)) (P.Ds_pbft msg)
  in
  let p =
    Pbft.create ?config:pbft_config ~sim ~id ~peers:replica_ids ~f ~send
      ~on_deliver:(fun rid req ~ts -> deliver t rid req ~ts)
      ()
  in
  t.pbft <- Some p;
  Net.register net id (fun ~src ~size:_ msg -> handle_wire t ~src msg);
  t

let start t = Pbft.start (pbft t)

let crash t = Pbft.crash (pbft t)

(* The replica's durable state (space, access, policy, hook state) survives
   the crash; PBFT recovery re-delivers the ordered suffix it missed, and
   [deliver] applies it through the same execution path as live traffic. *)
let restart t = Pbft.restart (pbft t)

let set_byzantine t = t.byzantine <- true

(* Hook installation (used by EDS) *)
let set_hook_intercept t f = t.hook_intercept <- f
let set_hook_fast_path_allowed t f = t.hook_fast_path_allowed <- f
let set_hook_on_unblock t f = t.hook_on_unblock <- f
let set_hook_on_deleted t f = t.hook_on_deleted <- f
let set_hook_on_inserted t f = t.hook_on_inserted <- f
