(** Wire codec for extension programs.

    Registration ships the *serialized* program as the data of an ordinary
    [create] call (§3.6).  Every replica re-parses and re-verifies the
    program before instantiating it, so the decoder treats all input as
    untrusted: every malformed shape is a clean [Error]. *)

open Ast

let ( let* ) = Result.bind

(* Canonical decimal integers only.  [int_of_string] also accepts 0x/0o/0b
   radix prefixes, '_' separators, a leading '+', and leading zeros — any
   of which would let two different registration payloads alias to one
   program (e.g. ["0x10"] and ["16"]). *)
let canonical_int_of_string s =
  let n = String.length s in
  let all_digits from =
    let ok = ref (from < n) in
    for j = from to n - 1 do
      match s.[j] with '0' .. '9' -> () | _ -> ok := false
    done;
    !ok
  in
  let canonical =
    if n = 0 then false
    else
      let i = if s.[0] = '-' then 1 else 0 in
      all_digits i
      && (not (n - i > 1 && s.[i] = '0')) (* no leading zeros *)
      && s <> "-0"
  in
  if canonical then int_of_string_opt s else None

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "mod"
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
  | And -> "and" | Or -> "or" | Concat -> "cat"

let binop_of_name = function
  | "add" -> Some Add | "sub" -> Some Sub | "mul" -> Some Mul
  | "div" -> Some Div | "mod" -> Some Mod
  | "eq" -> Some Eq | "ne" -> Some Ne | "lt" -> Some Lt | "le" -> Some Le
  | "gt" -> Some Gt | "ge" -> Some Ge
  | "and" -> Some And | "or" -> Some Or | "cat" -> Some Concat
  | _ -> None

let svc_name = function
  | Svc_read -> "read"
  | Svc_exists -> "exists"
  | Svc_sub_objects -> "subobjects"
  | Svc_create -> "create"
  | Svc_create_sequential -> "createseq"
  | Svc_update -> "update"
  | Svc_cas -> "cas"
  | Svc_delete -> "delete"
  | Svc_block -> "block"
  | Svc_monitor -> "monitor"
  | Svc_notify -> "notify"

let svc_of_name = function
  | "read" -> Some Svc_read
  | "exists" -> Some Svc_exists
  | "subobjects" -> Some Svc_sub_objects
  | "create" -> Some Svc_create
  | "createseq" -> Some Svc_create_sequential
  | "update" -> Some Svc_update
  | "cas" -> Some Svc_cas
  | "delete" -> Some Svc_delete
  | "block" -> Some Svc_block
  | "monitor" -> Some Svc_monitor
  | "notify" -> Some Svc_notify
  | _ -> None

let rec expr_to_sexp e =
  let open Sexp in
  match e with
  | Unit_lit -> Atom "unit"
  | Bool_lit b -> List [ Atom "b"; Atom (string_of_bool b) ]
  | Int_lit i -> List [ Atom "i"; Atom (string_of_int i) ]
  | Str_lit s -> List [ Atom "s"; Atom s ]
  | Var v -> List [ Atom "var"; Atom v ]
  | Param p -> List [ Atom "param"; Atom p ]
  | Field (e, name) -> List [ Atom "fld"; expr_to_sexp e; Atom name ]
  | Not e -> List [ Atom "not"; expr_to_sexp e ]
  | Neg e -> List [ Atom "neg"; expr_to_sexp e ]
  | Binop (op, a, b) ->
      List [ Atom "bin"; Atom (binop_name op); expr_to_sexp a; expr_to_sexp b ]
  | Call (name, args) ->
      List (Atom "call" :: Atom name :: List.map expr_to_sexp args)
  | Svc (op, args) ->
      List (Atom "svc" :: Atom (svc_name op) :: List.map expr_to_sexp args)

let rec stmt_to_sexp s =
  let open Sexp in
  match s with
  | Let (v, e) -> List [ Atom "let"; Atom v; expr_to_sexp e ]
  | Assign (v, e) -> List [ Atom "set"; Atom v; expr_to_sexp e ]
  | If (c, a, b) ->
      List
        [ Atom "if"; expr_to_sexp c;
          List (List.map stmt_to_sexp a); List (List.map stmt_to_sexp b) ]
  | For_each (v, e, body) ->
      List (Atom "for" :: Atom v :: expr_to_sexp e :: List.map stmt_to_sexp body)
  | Return e -> List [ Atom "ret"; expr_to_sexp e ]
  | Do e -> List [ Atom "do"; expr_to_sexp e ]
  | Abort msg -> List [ Atom "abort"; Atom msg ]

let pattern_to_sexp p =
  let open Sexp in
  match p with
  | Subscription.Exact s -> List [ Atom "exact"; Atom s ]
  | Subscription.Under s -> List [ Atom "under"; Atom s ]
  | Subscription.Starts_with s -> List [ Atom "pfx"; Atom s ]
  | Subscription.Any_oid -> Atom "any"

let op_sub_to_sexp (s : Subscription.operation_sub) =
  let open Sexp in
  List
    [ List (Atom "kinds" :: List.map (fun k -> Atom (Subscription.op_kind_to_string k)) s.op_kinds);
      pattern_to_sexp s.op_oid ]

let ev_sub_to_sexp (s : Subscription.event_sub) =
  let open Sexp in
  List
    [ List (Atom "kinds" :: List.map (fun k -> Atom (Subscription.event_kind_to_string k)) s.ev_kinds);
      pattern_to_sexp s.ev_oid ]

let handler_to_sexp = function
  | None -> Sexp.Atom "none"
  | Some body -> Sexp.List (List.map stmt_to_sexp body)

let to_sexp (p : Program.t) =
  let open Sexp in
  List
    [ Atom "ext"; Atom p.name;
      List (Atom "opsubs" :: List.map op_sub_to_sexp p.op_subs);
      List (Atom "evsubs" :: List.map ev_sub_to_sexp p.event_subs);
      List [ Atom "onop"; handler_to_sexp p.on_operation ];
      List [ Atom "onev"; handler_to_sexp p.on_event ] ]

let serialize p = Sexp.to_string (to_sexp p)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let rec expr_of_sexp sx =
  let open Sexp in
  match sx with
  | Atom "unit" -> Ok Unit_lit
  | List [ Atom "b"; Atom b ] -> (
      match bool_of_string_opt b with Some b -> Ok (Bool_lit b) | None -> Error "bad bool")
  | List [ Atom "i"; Atom i ] -> (
      match canonical_int_of_string i with
      | Some i -> Ok (Int_lit i)
      | None -> Error "bad int")
  | List [ Atom "s"; Atom s ] -> Ok (Str_lit s)
  | List [ Atom "var"; Atom v ] -> Ok (Var v)
  | List [ Atom "param"; Atom p ] -> Ok (Param p)
  | List [ Atom "fld"; e; Atom name ] ->
      let* e = expr_of_sexp e in
      Ok (Field (e, name))
  | List [ Atom "not"; e ] ->
      let* e = expr_of_sexp e in
      Ok (Not e)
  | List [ Atom "neg"; e ] ->
      let* e = expr_of_sexp e in
      Ok (Neg e)
  | List [ Atom "bin"; Atom op; a; b ] -> (
      match binop_of_name op with
      | None -> Error ("unknown binop " ^ op)
      | Some op ->
          let* a = expr_of_sexp a in
          let* b = expr_of_sexp b in
          Ok (Binop (op, a, b)))
  | List (Atom "call" :: Atom name :: args) ->
      let* args = exprs_of_sexps args in
      Ok (Call (name, args))
  | List (Atom "svc" :: Atom name :: args) -> (
      match svc_of_name name with
      | None -> Error ("unknown service op " ^ name)
      | Some op ->
          let* args = exprs_of_sexps args in
          Ok (Svc (op, args)))
  | _ -> Error "bad expression"

and exprs_of_sexps sxs =
  let rec conv acc = function
    | [] -> Ok (List.rev acc)
    | sx :: rest ->
        let* e = expr_of_sexp sx in
        conv (e :: acc) rest
  in
  conv [] sxs

let rec stmt_of_sexp sx =
  let open Sexp in
  match sx with
  | List [ Atom "let"; Atom v; e ] ->
      let* e = expr_of_sexp e in
      Ok (Let (v, e))
  | List [ Atom "set"; Atom v; e ] ->
      let* e = expr_of_sexp e in
      Ok (Assign (v, e))
  | List [ Atom "if"; c; List a; List b ] ->
      let* c = expr_of_sexp c in
      let* a = stmts_of_sexps a in
      let* b = stmts_of_sexps b in
      Ok (If (c, a, b))
  | List (Atom "for" :: Atom v :: e :: body) ->
      let* e = expr_of_sexp e in
      let* body = stmts_of_sexps body in
      Ok (For_each (v, e, body))
  | List [ Atom "ret"; e ] ->
      let* e = expr_of_sexp e in
      Ok (Return e)
  | List [ Atom "do"; e ] ->
      let* e = expr_of_sexp e in
      Ok (Do e)
  | List [ Atom "abort"; Atom msg ] -> Ok (Abort msg)
  | _ -> Error "bad statement"

and stmts_of_sexps sxs =
  let rec conv acc = function
    | [] -> Ok (List.rev acc)
    | sx :: rest ->
        let* s = stmt_of_sexp sx in
        conv (s :: acc) rest
  in
  conv [] sxs

let pattern_of_sexp = function
  | Sexp.Atom "any" -> Ok Subscription.Any_oid
  | Sexp.List [ Sexp.Atom "exact"; Sexp.Atom s ] -> Ok (Subscription.Exact s)
  | Sexp.List [ Sexp.Atom "under"; Sexp.Atom s ] -> Ok (Subscription.Under s)
  | Sexp.List [ Sexp.Atom "pfx"; Sexp.Atom s ] -> Ok (Subscription.Starts_with s)
  | _ -> Error "bad oid pattern"

let op_sub_of_sexp = function
  | Sexp.List [ Sexp.List (Sexp.Atom "kinds" :: kinds); pat ] ->
      let* kinds =
        List.fold_left
          (fun acc k ->
            let* acc = acc in
            match k with
            | Sexp.Atom name -> (
                match Subscription.op_kind_of_string name with
                | Some k -> Ok (k :: acc)
                | None -> Error ("unknown op kind " ^ name))
            | _ -> Error "bad kind")
          (Ok []) kinds
      in
      let* pat = pattern_of_sexp pat in
      Ok { Subscription.op_kinds = List.rev kinds; op_oid = pat }
  | _ -> Error "bad operation subscription"

let ev_sub_of_sexp = function
  | Sexp.List [ Sexp.List (Sexp.Atom "kinds" :: kinds); pat ] ->
      let* kinds =
        List.fold_left
          (fun acc k ->
            let* acc = acc in
            match k with
            | Sexp.Atom name -> (
                match Subscription.event_kind_of_string name with
                | Some k -> Ok (k :: acc)
                | None -> Error ("unknown event kind " ^ name))
            | _ -> Error "bad kind")
          (Ok []) kinds
      in
      let* pat = pattern_of_sexp pat in
      Ok { Subscription.ev_kinds = List.rev kinds; ev_oid = pat }
  | _ -> Error "bad event subscription"

let handler_of_sexp = function
  | Sexp.Atom "none" -> Ok None
  | Sexp.List body ->
      let* body = stmts_of_sexps body in
      Ok (Some body)
  | _ -> Error "bad handler"

let of_sexp sx =
  match sx with
  | Sexp.List
      [ Sexp.Atom "ext"; Sexp.Atom name;
        Sexp.List (Sexp.Atom "opsubs" :: opsubs);
        Sexp.List (Sexp.Atom "evsubs" :: evsubs);
        Sexp.List [ Sexp.Atom "onop"; onop ];
        Sexp.List [ Sexp.Atom "onev"; onev ] ] ->
      let* op_subs =
        List.fold_left
          (fun acc s ->
            let* acc = acc in
            let* s = op_sub_of_sexp s in
            Ok (s :: acc))
          (Ok []) opsubs
      in
      let* event_subs =
        List.fold_left
          (fun acc s ->
            let* acc = acc in
            let* s = ev_sub_of_sexp s in
            Ok (s :: acc))
          (Ok []) evsubs
      in
      let* on_operation = handler_of_sexp onop in
      let* on_event = handler_of_sexp onev in
      Ok
        {
          Program.name;
          op_subs = List.rev op_subs;
          event_subs = List.rev event_subs;
          on_operation;
          on_event;
        }
  | _ -> Error "bad extension"

let deserialize s =
  let* sx = Sexp.of_string s in
  of_sexp sx
