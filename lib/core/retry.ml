open Edc_simnet

type policy = {
  base : Sim_time.t;
  cap : Sim_time.t;
  deadline : Sim_time.t option;
  max_attempts : int;
}

let default_policy =
  {
    base = Sim_time.ms 50;
    cap = Sim_time.sec 2;
    deadline = Some (Sim_time.sec 30);
    max_attempts = 64;
  }

type 'e clazz = Transient of 'e | Ambiguous of 'e | Permanent of 'e

type ('a, 'e) outcome =
  | Done of { value : 'a; attempts : int }
  | Maybe_applied of { error : 'e; attempts : int }
  | Gave_up of { error : 'e; attempts : int }
  | Rejected of { error : 'e; attempts : int }

(* Decorrelated jitter (Brooker, "Exponential Backoff And Jitter"):
   d0 = base; d(n+1) = min cap (uniform base (3 * dn)).  Each delay
   depends only on the previous one, so competing clients decorrelate
   after a single round instead of retrying in lockstep. *)
let next_backoff rng ~policy ~prev =
  match prev with
  | None -> Sim_time.min policy.base policy.cap
  | Some prev ->
      let lo = Sim_time.to_ns policy.base in
      let hi = 3 * Sim_time.to_ns prev in
      let d = if hi <= lo then lo else lo + Rng.int rng (hi - lo) in
      Sim_time.min (Sim_time.ns d) policy.cap

let run ~sim ~rng ?(policy = default_policy) ?(on_retry = fun ~attempt:_ ~delay:_ -> ()) f =
  let start = Sim.now sim in
  let rec go ~attempt ~prev =
    match f ~attempt with
    | Ok value -> Done { value; attempts = attempt }
    | Error (Permanent error) -> Rejected { error; attempts = attempt }
    | Error (Ambiguous error) -> Maybe_applied { error; attempts = attempt }
    | Error (Transient error) ->
        if attempt >= policy.max_attempts then Gave_up { error; attempts = attempt }
        else
          let delay = next_backoff rng ~policy ~prev in
          let past_deadline =
            match policy.deadline with
            | None -> false
            | Some d ->
                Sim_time.(Sim_time.add start d < Sim_time.add (Sim.now sim) delay)
          in
          if past_deadline then Gave_up { error; attempts = attempt }
          else begin
            on_retry ~attempt ~delay;
            Proc.sleep sim delay;
            go ~attempt:(attempt + 1) ~prev:(Some delay)
          end
  in
  go ~attempt:1 ~prev:None
