(** Registration-time staging of extension handlers.

    [compile] lowers a verified handler AST into closures with array-slot
    variable frames, positional parameter slots, compile-time builtin
    resolution, and constant folding; [run] then matches the {!Sandbox}
    interpreter exactly — same result, same (steps, service-calls) usage on
    success, same abort verdict at every limit boundary — so replicas may
    mix engines without diverging.  Compile once per registration (the
    manager caches the result in its registry, including after snapshot
    reload) and reuse across triggers. *)

type t

val compile : Program.handler -> t

(** Drop-in replacement for {!Sandbox.run} on a pre-compiled handler. *)
val run :
  ?limits:Sandbox.limits ->
  proxy:Sandbox.proxy ->
  params:(string * Value.t) list ->
  t ->
  (Value.t * int * int, Sandbox.error) result
