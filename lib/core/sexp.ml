(** Canonical s-expressions: the wire format for extension code.

    Extensions travel from client to server as data (inside an ordinary
    [create] operation, §3.6), are persisted in coordination-service
    objects, and are re-parsed and re-verified on every replica.  The
    format is deliberately tiny: atoms and lists, with quoted atoms for
    arbitrary strings. *)

type t = Atom of string | List of t list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let atom_needs_quoting s =
  String.length s = 0
  || String.exists
       (fun c ->
         match c with
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | '\\' -> true
         (* bytes outside printable ASCII ride inside quotes: a bare atom
            with control or high bytes would not survive a print/parse
            round-trip byte-for-byte *)
         | c -> c < ' ' || c > '~')
       s

let quote_atom s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec to_buffer buf = function
  | Atom s -> Buffer.add_string buf (if atom_needs_quoting s then quote_atom s else s)
  | List items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ' ';
          to_buffer buf item)
        items;
      Buffer.add_char buf ')'

let to_string sexp =
  let buf = Buffer.create 256 in
  to_buffer buf sexp;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type parser_state = { input : string; mutable pos : int }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let parse_quoted st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> raise (Parse_error "unterminated string")
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        (* Exactly the escapes {!quote_atom} emits.  Accepting unknown
           escapes (historically [\x] → [x]) made distinct byte strings
           decode to equal programs — a non-canonical wire format. *)
        match peek st with
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; loop ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; loop ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; loop ()
        | Some '"' -> advance st; Buffer.add_char buf '"'; loop ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; loop ()
        | Some c -> raise (Parse_error (Printf.sprintf "unknown escape \\%c" c))
        | None -> raise (Parse_error "dangling escape"))
    | Some (('\n' | '\r' | '\t') as c) ->
        (* these have mandated escape forms; a raw control byte here would
           be a second spelling of the same atom *)
        ignore c;
        raise (Parse_error "unescaped control character in string")
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_bare st =
  let start = st.pos in
  let rec loop () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"') | None -> ()
    | Some _ ->
        advance st;
        loop ()
  in
  loop ();
  String.sub st.input start (st.pos - start)

let rec parse_one st =
  skip_ws st;
  match peek st with
  | None -> raise (Parse_error "unexpected end of input")
  | Some '(' ->
      advance st;
      let items = ref [] in
      let rec loop () =
        skip_ws st;
        match peek st with
        | Some ')' -> advance st
        | None -> raise (Parse_error "unterminated list")
        | Some _ ->
            items := parse_one st :: !items;
            loop ()
      in
      loop ();
      List (List.rev !items)
  | Some ')' -> raise (Parse_error "unexpected )")
  | Some '"' -> Atom (parse_quoted st)
  | Some _ -> Atom (parse_bare st)

(** [of_string s] parses one s-expression; [Error] on malformed input
    (malformed extensions must be rejected at registration, not crash the
    server). *)
let of_string s =
  let st = { input = s; pos = 0 } in
  match parse_one st with
  | sexp ->
      skip_ws st;
      if st.pos <> String.length s then Error "trailing garbage"
      else Ok sexp
  | exception Parse_error msg -> Error msg

(** Structural size: number of atoms and list nodes (used by the verifier's
    size bound). *)
let rec node_count = function
  | Atom _ -> 1
  | List items -> 1 + List.fold_left (fun acc i -> acc + node_count i) 0 items

let rec depth = function
  | Atom _ -> 1
  | List items -> 1 + List.fold_left (fun acc i -> Stdlib.max acc (depth i)) 0 items
