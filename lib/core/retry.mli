(** Retry policy with deadlines and decorrelated-jitter backoff.

    One place for the client-side resubmission contract (the paper treats
    retry/failover as part of the client API, not test scaffolding):

    - every attempt classifies its error as {i transient} (safe to retry),
      {i ambiguous} (the request may have been applied — never resubmit
      non-idempotent operations blindly), or {i permanent} (a logical
      error; retrying cannot help);
    - delays follow decorrelated jitter
      [d0 = base; d(n+1) = min cap (uniform base (3 * dn))], which spreads
      competing clients apart without synchronized retry storms;
    - a deadline bounds the total time spent, counting the sleep that
      would precede the next attempt. *)

open Edc_simnet

type policy = {
  base : Sim_time.t;  (** first backoff delay, and the jitter floor *)
  cap : Sim_time.t;  (** upper bound for any single delay *)
  deadline : Sim_time.t option;
      (** give up once [now + next_delay] would exceed [start + deadline] *)
  max_attempts : int;  (** hard bound on attempts (>= 1) *)
}

val default_policy : policy

(** Classification of an attempt's failure. *)
type 'e clazz =
  | Transient of 'e  (** not applied; safe to retry *)
  | Ambiguous of 'e  (** possibly applied (e.g. timeout on a write) *)
  | Permanent of 'e  (** logical error; retrying cannot help *)

type ('a, 'e) outcome =
  | Done of { value : 'a; attempts : int }
  | Maybe_applied of { error : 'e; attempts : int }
      (** an ambiguous failure: the operation may or may not have taken
          effect, and resubmitting it could double-apply *)
  | Gave_up of { error : 'e; attempts : int }
      (** transient failures persisted past the deadline / attempt budget *)
  | Rejected of { error : 'e; attempts : int }  (** permanent error *)

(** [next_backoff rng ~policy ~prev] — the delay following a sleep of
    [prev] ([None] for the first retry).  Exposed for property tests. *)
val next_backoff : Rng.t -> policy:policy -> prev:Sim_time.t option -> Sim_time.t

(** [run ~sim ~rng ?policy ?on_retry f] calls [f ~attempt] (1-based) until
    it succeeds, fails permanently or ambiguously, or the policy is
    exhausted.  Sleeps between attempts, so it must run inside a fiber.
    [on_retry] observes each backoff decision. *)
val run :
  sim:Sim.t ->
  rng:Rng.t ->
  ?policy:policy ->
  ?on_retry:(attempt:int -> delay:Sim_time.t -> unit) ->
  (attempt:int -> ('a, 'e clazz) result) ->
  ('a, 'e) outcome
