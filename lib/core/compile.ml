(** Registration-time staging of extension handlers (the perf half of the
    paper's "verify once, trigger cheaply" claim, §4.1–4.2).

    [compile] lowers a verified handler AST into a tree of OCaml closures:

    - variable references become array-slot loads in a preallocated frame
      (no per-access [Hashtbl] hashing);
    - request parameters become positional slots bound once per run (no
      per-access [List.assoc]);
    - builtins are resolved and arity-checked once, at compile time — the
      hot path keeps only the (semantics-preserving) runtime raise;
    - closed constant subexpressions are folded, carrying the *exact* step
      count the interpreter would have charged.

    The non-negotiable invariant is budget parity with {!Sandbox}: replicas
    must reach identical results, identical (steps, service-call) usage on
    success, and identical abort verdicts at limit boundaries, or the
    replicated state machines diverge.  Every closure therefore charges the
    same budgets at the same points as the interpreter, and conversions go
    through the shared {!Sandbox} helpers so error text matches byte for
    byte.  The differential QCheck suite in [test/test_compile.ml] enforces
    this against random verified programs. *)

(** Per-invocation mutable state: the compiled analogue of [Sandbox.env],
    with array frames instead of hash tables. *)
type rt = {
  proxy : Sandbox.proxy;
  limits : Sandbox.limits;
  vars : Value.t option array;  (** [None] = unbound *)
  params : Value.t option array;  (** prebound positionally, [None] = absent *)
  mutable steps : int;
  mutable service_calls : int;
  mutable creates : int;
}

type t = {
  n_vars : int;
  param_names : string array;  (** slot [i] binds [param_names.(i)] *)
  body : rt -> unit;
}

exception Returned of Value.t

let charge_step rt =
  rt.steps <- rt.steps + 1;
  if rt.steps > rt.limits.Sandbox.max_steps then
    raise (Sandbox.Abort_exec Sandbox.Fuel_exhausted)

(* Bulk form for folded constants: charging [n] at once raises
   [Fuel_exhausted] iff charging [n] times sequentially would — the counter
   only grows, and on [Error] counters are not reported, so the verdict is
   what must (and does) agree. *)
let charge_steps rt n =
  rt.steps <- rt.steps + n;
  if rt.steps > rt.limits.Sandbox.max_steps then
    raise (Sandbox.Abort_exec Sandbox.Fuel_exhausted)

let charge_service rt =
  rt.service_calls <- rt.service_calls + 1;
  if rt.service_calls > rt.limits.Sandbox.max_service_calls then
    raise (Sandbox.Abort_exec Sandbox.Service_call_limit)

let charge_create rt =
  rt.creates <- rt.creates + 1;
  if rt.creates > rt.limits.Sandbox.max_creates then
    raise (Sandbox.Abort_exec Sandbox.Create_limit)

let charge_value rt v =
  let n = Value.size v in
  if n > rt.limits.Sandbox.max_value_bytes then
    raise (Sandbox.Abort_exec (Sandbox.Value_too_large n))

(* --- compile-time slot assignment --- *)

type ctx = {
  var_slots : (string, int) Hashtbl.t;
  mutable n_vars : int;
  param_slots : (string, int) Hashtbl.t;
  mutable rev_params : string list;  (* newest first *)
}

let new_ctx () =
  {
    var_slots = Hashtbl.create 8;
    n_vars = 0;
    param_slots = Hashtbl.create 4;
    rev_params = [];
  }

let var_slot ctx name =
  match Hashtbl.find_opt ctx.var_slots name with
  | Some i -> i
  | None ->
      let i = ctx.n_vars in
      Hashtbl.add ctx.var_slots name i;
      ctx.n_vars <- i + 1;
      i

let param_slot ctx name =
  match Hashtbl.find_opt ctx.param_slots name with
  | Some i -> i
  | None ->
      let i = List.length ctx.rev_params in
      Hashtbl.add ctx.param_slots name i;
      ctx.rev_params <- name :: ctx.rev_params;
      i

(* --- constant folding ---

   Folds closed expressions over literals, recording the exact step count
   the interpreter would charge and — for expressions that fault — the
   error it would raise after exactly that many steps.  Excluded on
   purpose: [Concat] (its result is charged against the *runtime* value
   budget) and anything touching state, params, builtins, or services. *)

let rec fold_expr (e : Ast.expr) : (int * (Value.t, Sandbox.error) result) option =
  match e with
  | Ast.Unit_lit -> Some (1, Ok Value.Unit)
  | Ast.Bool_lit b -> Some (1, Ok (Value.Bool b))
  | Ast.Int_lit i -> Some (1, Ok (Value.Int i))
  | Ast.Str_lit s -> Some (1, Ok (Value.Str s))
  | Ast.Not e -> (
      match fold_expr e with
      | Some (n, Ok v) -> Some (1 + n, Ok (Value.Bool (not (Value.truthy v))))
      | Some (n, Error err) -> Some (1 + n, Error err)
      | None -> None)
  | Ast.Neg e -> (
      match fold_expr e with
      | Some (n, Ok v) ->
          Some
            ( 1 + n,
              try Ok (Value.Int (-Sandbox.as_int v))
              with Sandbox.Abort_exec err -> Error err )
      | Some (n, Error err) -> Some (1 + n, Error err)
      | None -> None)
  | Ast.Binop (Ast.And, a, b) -> (
      match fold_expr a with
      | None -> None
      | Some (na, Error err) -> Some (1 + na, Error err)
      | Some (na, Ok va) when not (Value.truthy va) ->
          Some (1 + na, Ok (Value.Bool false))
      | Some (na, Ok _) -> (
          match fold_expr b with
          | None -> None
          | Some (nb, Error err) -> Some (1 + na + nb, Error err)
          | Some (nb, Ok vb) ->
              Some (1 + na + nb, Ok (Value.Bool (Value.truthy vb)))))
  | Ast.Binop (Ast.Or, a, b) -> (
      match fold_expr a with
      | None -> None
      | Some (na, Error err) -> Some (1 + na, Error err)
      | Some (na, Ok va) when Value.truthy va ->
          Some (1 + na, Ok (Value.Bool true))
      | Some (na, Ok _) -> (
          match fold_expr b with
          | None -> None
          | Some (nb, Error err) -> Some (1 + na + nb, Error err)
          | Some (nb, Ok vb) ->
              Some (1 + na + nb, Ok (Value.Bool (Value.truthy vb)))))
  | Ast.Binop (Ast.Concat, _, _) -> None
  | Ast.Binop (op, a, b) -> (
      match fold_expr a with
      | None -> None
      | Some (na, Error err) -> Some (1 + na, Error err)
      | Some (na, Ok va) -> (
          match fold_expr b with
          | None -> None
          | Some (nb, Error err) -> Some (1 + na + nb, Error err)
          | Some (nb, Ok vb) ->
              Some
                ( 1 + na + nb,
                  try Ok (Sandbox.apply_strict_binop op va vb)
                  with Sandbox.Abort_exec err -> Error err )))
  | Ast.Var _ | Ast.Param _ | Ast.Field _ | Ast.Call _ | Ast.Svc _ -> None

(* --- expression compilation --- *)

let rec compile_expr ctx (e : Ast.expr) : rt -> Value.t =
  match fold_expr e with
  | Some (n, Ok v) ->
      fun rt ->
        charge_steps rt n;
        v
  | Some (n, Error err) ->
      fun rt ->
        charge_steps rt n;
        raise (Sandbox.Abort_exec err)
  | None -> (
      match e with
      | Ast.Unit_lit | Ast.Bool_lit _ | Ast.Int_lit _ | Ast.Str_lit _ ->
          assert false (* always folded *)
      | Ast.Var name ->
          let i = var_slot ctx name in
          fun rt -> (
            charge_step rt;
            match rt.vars.(i) with
            | Some v -> v
            | None -> raise (Sandbox.Abort_exec (Sandbox.Undefined_variable name)))
      | Ast.Param p ->
          let i = param_slot ctx p in
          let missing = "param " ^ p in
          fun rt -> (
            charge_step rt;
            match rt.params.(i) with
            | Some v -> v
            | None ->
                raise (Sandbox.Abort_exec (Sandbox.Undefined_variable missing)))
      | Ast.Field (e, name) ->
          let f = compile_expr ctx e in
          fun rt -> (
            charge_step rt;
            let v = f rt in
            match Value.field v name with
            | Some value -> value
            | None -> Sandbox.type_error "no field %S in %a" name Value.pp v)
      | Ast.Not e ->
          let f = compile_expr ctx e in
          fun rt ->
            charge_step rt;
            Value.Bool (not (Value.truthy (f rt)))
      | Ast.Neg e ->
          let f = compile_expr ctx e in
          fun rt ->
            charge_step rt;
            Value.Int (-Sandbox.as_int (f rt))
      | Ast.Binop (Ast.And, a, b) ->
          let fa = compile_expr ctx a in
          let fb = compile_expr ctx b in
          fun rt ->
            charge_step rt;
            if Value.truthy (fa rt) then Value.Bool (Value.truthy (fb rt))
            else Value.Bool false
      | Ast.Binop (Ast.Or, a, b) ->
          let fa = compile_expr ctx a in
          let fb = compile_expr ctx b in
          fun rt ->
            charge_step rt;
            if Value.truthy (fa rt) then Value.Bool true
            else Value.Bool (Value.truthy (fb rt))
      | Ast.Binop (Ast.Concat, a, b) ->
          let fa = compile_expr ctx a in
          let fb = compile_expr ctx b in
          fun rt ->
            charge_step rt;
            let va = fa rt in
            let vb = fb rt in
            let v = Sandbox.apply_strict_binop Ast.Concat va vb in
            charge_value rt v;
            v
      | Ast.Binop (op, a, b) ->
          let fa = compile_expr ctx a in
          let fb = compile_expr ctx b in
          fun rt ->
            charge_step rt;
            let va = fa rt in
            let vb = fb rt in
            Sandbox.apply_strict_binop op va vb
      | Ast.Call (name, args) -> compile_call ctx name args
      | Ast.Svc (op, args) -> compile_svc ctx op args)

and compile_call ctx name args =
  let fargs = Array.of_list (List.map (compile_expr ctx) args) in
  let nargs = Array.length fargs in
  (* mirrors the interpreter: evaluate args left-to-right, then charge fuel
     per list element so builtins cannot smuggle unbounded scans *)
  let eval_args rt =
    let vals = Array.make nargs Value.Unit in
    for i = 0 to nargs - 1 do
      vals.(i) <- fargs.(i) rt
    done;
    for i = 0 to nargs - 1 do
      match vals.(i) with
      | Value.List items -> charge_steps rt (List.length items)
      | Value.Unit | Value.Bool _ | Value.Int _ | Value.Str _ | Value.Record _
        ->
          ()
    done;
    vals
  in
  (* builtin resolution and arity checks happen here, once; the hot path
     keeps only the raise the interpreter would perform after arg eval *)
  match Builtins.find name with
  | None ->
      fun rt ->
        charge_step rt;
        ignore (eval_args rt : Value.t array);
        raise (Sandbox.Abort_exec (Sandbox.Unknown_builtin name))
  | Some b when nargs <> b.Builtins.arity ->
      let msg = Printf.sprintf "%s expects %d arguments" name b.Builtins.arity in
      fun rt ->
        charge_step rt;
        ignore (eval_args rt : Value.t array);
        raise (Sandbox.Abort_exec (Sandbox.Type_error msg))
  | Some _ when name = "clock" ->
      fun rt ->
        charge_step rt;
        ignore (eval_args rt : Value.t array);
        Value.Int (rt.proxy.Sandbox.p_clock ())
  | Some b -> (
      let fn = b.Builtins.fn in
      fun rt ->
        charge_step rt;
        let vals = eval_args rt in
        match fn (Array.to_list vals) with
        | Ok v ->
            charge_value rt v;
            v
        | Error msg -> raise (Sandbox.Abort_exec (Sandbox.Type_error msg)))

and compile_svc ctx op args =
  let fargs = List.map (compile_expr ctx) args in
  let open Sandbox in
  match (op, fargs) with
  | Ast.Svc_read, [ f0 ] ->
      fun rt ->
        charge_step rt;
        charge_service rt;
        let oid = as_str (f0 rt) in
        let v = svc_result (rt.proxy.p_read oid) in
        charge_value rt v;
        v
  | Ast.Svc_exists, [ f0 ] ->
      fun rt ->
        charge_step rt;
        charge_service rt;
        Value.Bool (rt.proxy.p_exists (as_str (f0 rt)))
  | Ast.Svc_sub_objects, [ f0 ] ->
      fun rt ->
        charge_step rt;
        charge_service rt;
        let oid = as_str (f0 rt) in
        let v = Value.List (svc_result (rt.proxy.p_sub_objects oid)) in
        charge_value rt v;
        v
  | Ast.Svc_create, [ f0; f1 ] ->
      fun rt ->
        charge_step rt;
        charge_service rt;
        charge_create rt;
        let oid = as_str (f0 rt) in
        let data = as_str (f1 rt) in
        Value.Str (svc_result (rt.proxy.p_create ~sequential:false ~oid ~data))
  | Ast.Svc_create_sequential, [ f0; f1 ] ->
      fun rt ->
        charge_step rt;
        charge_service rt;
        charge_create rt;
        let oid = as_str (f0 rt) in
        let data = as_str (f1 rt) in
        Value.Str (svc_result (rt.proxy.p_create ~sequential:true ~oid ~data))
  | Ast.Svc_update, [ f0; f1 ] ->
      fun rt ->
        charge_step rt;
        charge_service rt;
        let oid = as_str (f0 rt) in
        let data = as_str (f1 rt) in
        Value.Int (svc_result (rt.proxy.p_update ~oid ~data))
  | Ast.Svc_cas, [ f0; f1; f2 ] ->
      fun rt ->
        charge_step rt;
        charge_service rt;
        let oid = as_str (f0 rt) in
        let expected = as_str (f1 rt) in
        let data = as_str (f2 rt) in
        Value.Bool (svc_result (rt.proxy.p_cas ~oid ~expected ~data))
  | Ast.Svc_delete, [ f0 ] ->
      fun rt ->
        charge_step rt;
        charge_service rt;
        Value.Bool (svc_result (rt.proxy.p_delete (as_str (f0 rt))))
  | Ast.Svc_block, [ f0 ] ->
      fun rt ->
        charge_step rt;
        charge_service rt;
        svc_result (rt.proxy.p_block (as_str (f0 rt)));
        Value.Unit
  | Ast.Svc_monitor, [ f0 ] ->
      fun rt ->
        charge_step rt;
        charge_service rt;
        charge_create rt;
        svc_result (rt.proxy.p_monitor (as_str (f0 rt)));
        Value.Unit
  | Ast.Svc_notify, [ f0; f1 ] ->
      fun rt ->
        charge_step rt;
        charge_service rt;
        let client = as_int (f0 rt) in
        let oid = as_str (f1 rt) in
        svc_result (rt.proxy.p_notify ~client ~oid);
        Value.Unit
  | _ ->
      (* wrong arity: the interpreter charges the service call, then faults
         without evaluating any argument *)
      fun rt ->
        charge_step rt;
        charge_service rt;
        Sandbox.type_error "wrong arity for service call"

(* --- statement compilation --- *)

let rec compile_stmt ctx (s : Ast.stmt) : rt -> unit =
  match s with
  | Ast.Let (v, e) | Ast.Assign (v, e) ->
      let i = var_slot ctx v in
      let f = compile_expr ctx e in
      fun rt ->
        charge_step rt;
        let value = f rt in
        charge_value rt value;
        rt.vars.(i) <- Some value
  | Ast.If (c, a, b) ->
      let fc = compile_expr ctx c in
      let fa = compile_block ctx a in
      let fb = compile_block ctx b in
      fun rt ->
        charge_step rt;
        if Value.truthy (fc rt) then fa rt else fb rt
  | Ast.For_each (v, e, body) ->
      let i = var_slot ctx v in
      let f = compile_expr ctx e in
      let fbody = compile_block ctx body in
      fun rt ->
        charge_step rt;
        let items = Sandbox.as_list (f rt) in
        let saved = rt.vars.(i) in
        List.iter
          (fun item ->
            rt.vars.(i) <- Some item;
            fbody rt)
          items;
        rt.vars.(i) <- saved
  | Ast.Return e ->
      let f = compile_expr ctx e in
      fun rt ->
        charge_step rt;
        raise (Returned (f rt))
  | Ast.Do e ->
      let f = compile_expr ctx e in
      fun rt ->
        charge_step rt;
        ignore (f rt : Value.t)
  | Ast.Abort msg ->
      fun rt ->
        charge_step rt;
        raise (Sandbox.Abort_exec (Sandbox.Aborted msg))

and compile_block ctx body : rt -> unit =
  let fs = Array.of_list (List.map (compile_stmt ctx) body) in
  fun rt ->
    for i = 0 to Array.length fs - 1 do
      fs.(i) rt
    done

let compile (handler : Program.handler) : t =
  let ctx = new_ctx () in
  let body = compile_block ctx handler in
  {
    n_vars = ctx.n_vars;
    param_names = Array.of_list (List.rev ctx.rev_params);
    body;
  }

let run ?(limits = Sandbox.default_limits) ~proxy ~params (c : t) =
  let rt =
    {
      proxy;
      limits;
      vars = Array.make c.n_vars None;
      params = Array.map (fun name -> List.assoc_opt name params) c.param_names;
      steps = 0;
      service_calls = 0;
      creates = 0;
    }
  in
  match c.body rt with
  | () -> Ok (Value.Unit, rt.steps, rt.service_calls)
  | exception Returned v -> Ok (v, rt.steps, rt.service_calls)
  | exception Sandbox.Abort_exec e -> Error e
