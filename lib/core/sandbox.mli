(** The extension sandbox (§4.1.2).

    Executes a verified handler under hard resource budgets; all state
    access goes through the host-provided {!proxy}, which mirrors the
    client-visible API (Table 2).  Hosts implement the proxy so that all
    changes apply atomically on success and vanish entirely on abort —
    a crashing or over-budget extension never corrupts the service. *)

type limits = {
  max_steps : int;  (** interpreter steps (CPU bound) *)
  max_service_calls : int;  (** proxied coordination-service calls *)
  max_creates : int;  (** object creations per invocation *)
  max_value_bytes : int;  (** size bound on any single value (memory) *)
}

val default_limits : limits

type error =
  | Fuel_exhausted
  | Service_call_limit
  | Create_limit
  | Value_too_large of int
  | Type_error of string
  | Undefined_variable of string
  | Unknown_builtin of string
  | Service_error of string
  | Aborted of string

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

(** Host-provided state proxy.  [oid]s are abstract object identifiers
    (paths for EZK, tuple names for EDS). *)
type proxy = {
  p_read : string -> (Value.t, string) result;
  p_exists : string -> bool;
  p_sub_objects : string -> (Value.t list, string) result;
  p_create : sequential:bool -> oid:string -> data:string -> (string, string) result;
  p_update : oid:string -> data:string -> (int, string) result;
  p_cas : oid:string -> expected:string -> data:string -> (bool, string) result;
  p_delete : string -> (bool, string) result;
  p_block : string -> (unit, string) result;
  p_monitor : string -> (unit, string) result;
  p_notify : client:int -> oid:string -> (unit, string) result;
  p_clock : unit -> int;
}

(** Raised internally on budget exhaustion or runtime faults; exposed so
    the staged compiler ({!Compile}) can charge the same budgets and
    surface the same verdicts as the interpreter. *)
exception Abort_exec of error

(** Shared evaluation helpers.  The staged compiler must agree with the
    interpreter on conversions, error text, and ordering down to the
    byte, or replicas running different engines would diverge. *)

val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val as_int : Value.t -> int
val as_str : Value.t -> string
val as_list : Value.t -> Value.t list
val svc_result : ('a, string) result -> 'a
val compare_values : Value.t -> Value.t -> int

(** [apply_strict_binop op va vb] applies a non-short-circuit operator with
    explicit left-to-right conversion order.  The caller charges the value
    budget for [Concat] results.  [And]/[Or] are the caller's job. *)
val apply_strict_binop : Ast.binop -> Value.t -> Value.t -> Value.t

(** [run ?limits ~proxy ~params handler] executes a handler; [params] bind
    the request attributes ([oid], [data], [client], [kind]).  On success
    returns the handler's value plus (steps, service calls) consumed; on
    [Error] the host must discard all recorded state changes. *)
val run :
  ?limits:limits ->
  proxy:proxy ->
  params:(string * Value.t) list ->
  Program.handler ->
  (Value.t * int * int, error) result
