(** The extension sandbox (§4.1.2).

    Executes a verified handler under hard resource budgets — interpreter
    steps (CPU), service calls, object creations, and value sizes
    (memory).  All state access goes through the host-provided {!proxy},
    which mirrors the client-visible API (Table 2); the host implements the
    proxy so that *all* changes are either applied atomically on success or
    discarded entirely on abort (EZK: the recorded multi-transaction is
    simply not proposed; EDS: the undo log rolls back).  A crash inside the
    extension therefore never corrupts the service. *)

type limits = {
  max_steps : int;
  max_service_calls : int;
  max_creates : int;
  max_value_bytes : int;
}

let default_limits =
  { max_steps = 4096; max_service_calls = 64; max_creates = 32; max_value_bytes = 256 * 1024 }

type error =
  | Fuel_exhausted
  | Service_call_limit
  | Create_limit
  | Value_too_large of int
  | Type_error of string
  | Undefined_variable of string
  | Unknown_builtin of string
  | Service_error of string
  | Aborted of string

let error_to_string = function
  | Fuel_exhausted -> "step budget exhausted"
  | Service_call_limit -> "service-call budget exhausted"
  | Create_limit -> "object-creation budget exhausted"
  | Value_too_large n -> Printf.sprintf "value of %d bytes exceeds budget" n
  | Type_error msg -> "type error: " ^ msg
  | Undefined_variable v -> "undefined variable " ^ v
  | Unknown_builtin b -> "unknown builtin " ^ b
  | Service_error msg -> "service error: " ^ msg
  | Aborted msg -> "aborted: " ^ msg

let pp_error ppf e = Fmt.string ppf (error_to_string e)

(** Host-provided state proxy.  [oid]s are abstract object identifiers
    (paths for EZK, tuple names for EDS). *)
type proxy = {
  p_read : string -> (Value.t, string) result;  (** object record; error if missing *)
  p_exists : string -> bool;
  p_sub_objects : string -> (Value.t list, string) result;
  p_create : sequential:bool -> oid:string -> data:string -> (string, string) result;
  p_update : oid:string -> data:string -> (int, string) result;
  p_cas : oid:string -> expected:string -> data:string -> (bool, string) result;
  p_delete : string -> (bool, string) result;
  p_block : string -> (unit, string) result;
  p_monitor : string -> (unit, string) result;
  p_notify : client:int -> oid:string -> (unit, string) result;
  p_clock : unit -> int;  (** host clock; only reachable when white-listed *)
}

exception Abort_exec of error

type env = {
  proxy : proxy;
  limits : limits;
  vars : (string, Value.t) Hashtbl.t;
  params : (string * Value.t) list;
  mutable steps : int;
  mutable service_calls : int;
  mutable creates : int;
}

let charge_step env =
  env.steps <- env.steps + 1;
  if env.steps > env.limits.max_steps then raise (Abort_exec Fuel_exhausted)

let charge_service env =
  env.service_calls <- env.service_calls + 1;
  if env.service_calls > env.limits.max_service_calls then
    raise (Abort_exec Service_call_limit)

let charge_create env =
  env.creates <- env.creates + 1;
  if env.creates > env.limits.max_creates then raise (Abort_exec Create_limit)

let charge_value env v =
  let n = Value.size v in
  if n > env.limits.max_value_bytes then raise (Abort_exec (Value_too_large n))

let type_error fmt = Format.kasprintf (fun s -> raise (Abort_exec (Type_error s))) fmt

let as_int = function
  | Value.Int i -> i
  | v -> type_error "expected int, got %a" Value.pp v

let as_str = function
  | Value.Str s -> s
  | v -> type_error "expected string, got %a" Value.pp v

let as_list = function
  | Value.List l -> l
  | v -> type_error "expected list, got %a" Value.pp v

let svc_result = function
  | Ok v -> v
  | Error msg -> raise (Abort_exec (Service_error msg))

let compare_values va vb =
  match (va, vb) with
  | Value.Int a, Value.Int b -> Int.compare a b
  | Value.Str a, Value.Str b -> String.compare a b
  | _ -> type_error "cannot order %a and %a" Value.pp va Value.pp vb

(* Strict (non-short-circuit) binary operators, shared with the staged
   compiler ({!Compile}) so both engines agree on operand conversion order
   and error text.  Conversions are explicitly left-to-right.  The caller
   charges the value budget for [Concat] results. *)
let apply_strict_binop op va vb =
  let open Ast in
  match op with
  | Add ->
      let a = as_int va in
      let b = as_int vb in
      Value.Int (a + b)
  | Sub ->
      let a = as_int va in
      let b = as_int vb in
      Value.Int (a - b)
  | Mul ->
      let a = as_int va in
      let b = as_int vb in
      Value.Int (a * b)
  | Div ->
      let d = as_int vb in
      if d = 0 then type_error "division by zero" else Value.Int (as_int va / d)
  | Mod ->
      let d = as_int vb in
      if d = 0 then type_error "modulo by zero" else Value.Int (as_int va mod d)
  | Eq -> Value.Bool (Value.equal va vb)
  | Ne -> Value.Bool (not (Value.equal va vb))
  | Lt -> Value.Bool (compare_values va vb < 0)
  | Le -> Value.Bool (compare_values va vb <= 0)
  | Gt -> Value.Bool (compare_values va vb > 0)
  | Ge -> Value.Bool (compare_values va vb >= 0)
  | Concat ->
      let a = as_str va in
      let b = as_str vb in
      Value.Str (a ^ b)
  | And | Or -> assert false

let rec eval env (e : Ast.expr) : Value.t =
  charge_step env;
  match e with
  | Ast.Unit_lit -> Value.Unit
  | Ast.Bool_lit b -> Value.Bool b
  | Ast.Int_lit i -> Value.Int i
  | Ast.Str_lit s -> Value.Str s
  | Ast.Var v -> (
      match Hashtbl.find_opt env.vars v with
      | Some value -> value
      | None -> raise (Abort_exec (Undefined_variable v)))
  | Ast.Param p -> (
      match List.assoc_opt p env.params with
      | Some value -> value
      | None -> raise (Abort_exec (Undefined_variable ("param " ^ p))))
  | Ast.Field (e, name) -> (
      let v = eval env e in
      match Value.field v name with
      | Some value -> value
      | None -> type_error "no field %S in %a" name Value.pp v)
  | Ast.Not e -> Value.Bool (not (Value.truthy (eval env e)))
  | Ast.Neg e -> Value.Int (-as_int (eval env e))
  | Ast.Binop (op, a, b) -> eval_binop env op a b
  | Ast.Call (name, args) -> (
      let args = List.map (eval env) args in
      (* builtins over collections do work proportional to their input:
         charge fuel accordingly so a "single call" cannot smuggle an
         unbounded scan past the step budget *)
      List.iter
        (function
          | Value.List items -> List.iter (fun _ -> charge_step env) items
          | Value.Unit | Value.Bool _ | Value.Int _ | Value.Str _
          | Value.Record _ ->
              ())
        args;
      match Builtins.find name with
      | None -> raise (Abort_exec (Unknown_builtin name))
      | Some b ->
          if List.length args <> b.Builtins.arity then
            type_error "%s expects %d arguments" name b.Builtins.arity
          else if name = "clock" then Value.Int (env.proxy.p_clock ())
          else (
            match b.Builtins.fn args with
            | Ok v ->
                charge_value env v;
                v
            | Error msg -> raise (Abort_exec (Type_error msg))))
  | Ast.Svc (op, args) -> eval_svc env op args

and eval_binop env op a b =
  let open Ast in
  match op with
  (* short-circuit boolean connectives *)
  | And -> if Value.truthy (eval env a) then Value.Bool (Value.truthy (eval env b)) else Value.Bool false
  | Or -> if Value.truthy (eval env a) then Value.Bool true else Value.Bool (Value.truthy (eval env b))
  | _ ->
      let va = eval env a in
      let vb = eval env b in
      let v = apply_strict_binop op va vb in
      (match op with Concat -> charge_value env v | _ -> ());
      v

and eval_svc env op args =
  charge_service env;
  let arg n = List.nth args n in
  match (op, List.length args) with
  | Ast.Svc_read, 1 ->
      let oid = as_str (eval env (arg 0)) in
      let v = svc_result (env.proxy.p_read oid) in
      charge_value env v;
      v
  | Ast.Svc_exists, 1 ->
      Value.Bool (env.proxy.p_exists (as_str (eval env (arg 0))))
  | Ast.Svc_sub_objects, 1 ->
      let oid = as_str (eval env (arg 0)) in
      let v = Value.List (svc_result (env.proxy.p_sub_objects oid)) in
      charge_value env v;
      v
  | Ast.Svc_create, 2 ->
      charge_create env;
      let oid = as_str (eval env (arg 0)) in
      let data = as_str (eval env (arg 1)) in
      Value.Str (svc_result (env.proxy.p_create ~sequential:false ~oid ~data))
  | Ast.Svc_create_sequential, 2 ->
      charge_create env;
      let oid = as_str (eval env (arg 0)) in
      let data = as_str (eval env (arg 1)) in
      Value.Str (svc_result (env.proxy.p_create ~sequential:true ~oid ~data))
  | Ast.Svc_update, 2 ->
      let oid = as_str (eval env (arg 0)) in
      let data = as_str (eval env (arg 1)) in
      Value.Int (svc_result (env.proxy.p_update ~oid ~data))
  | Ast.Svc_cas, 3 ->
      let oid = as_str (eval env (arg 0)) in
      let expected = as_str (eval env (arg 1)) in
      let data = as_str (eval env (arg 2)) in
      Value.Bool (svc_result (env.proxy.p_cas ~oid ~expected ~data))
  | Ast.Svc_delete, 1 ->
      Value.Bool (svc_result (env.proxy.p_delete (as_str (eval env (arg 0)))))
  | Ast.Svc_block, 1 ->
      svc_result (env.proxy.p_block (as_str (eval env (arg 0))));
      Value.Unit
  | Ast.Svc_monitor, 1 ->
      charge_create env;
      svc_result (env.proxy.p_monitor (as_str (eval env (arg 0))));
      Value.Unit
  | Ast.Svc_notify, 2 ->
      let client = as_int (eval env (arg 0)) in
      let oid = as_str (eval env (arg 1)) in
      svc_result (env.proxy.p_notify ~client ~oid);
      Value.Unit
  | _ -> type_error "wrong arity for service call"

exception Returned of Value.t

let rec exec_stmt env (s : Ast.stmt) =
  charge_step env;
  match s with
  | Ast.Let (v, e) | Ast.Assign (v, e) ->
      let value = eval env e in
      charge_value env value;
      Hashtbl.replace env.vars v value
  | Ast.If (c, a, b) ->
      if Value.truthy (eval env c) then exec_block env a else exec_block env b
  | Ast.For_each (v, e, body) ->
      let items = as_list (eval env e) in
      let saved = Hashtbl.find_opt env.vars v in
      List.iter
        (fun item ->
          Hashtbl.replace env.vars v item;
          exec_block env body)
        items;
      (match saved with
      | Some old -> Hashtbl.replace env.vars v old
      | None -> Hashtbl.remove env.vars v)
  | Ast.Return e -> raise (Returned (eval env e))
  | Ast.Do e -> ignore (eval env e : Value.t)
  | Ast.Abort msg -> raise (Abort_exec (Aborted msg))

and exec_block env body = List.iter (exec_stmt env) body

(** [run ?limits ~proxy ~params handler] executes a handler.  On success
    returns its value ([Unit] when it never [Return]s) plus the resource
    usage; on failure the host must discard all recorded state changes. *)
let run ?(limits = default_limits) ~proxy ~params (handler : Program.handler) =
  let env =
    {
      proxy;
      limits;
      vars = Hashtbl.create 16;
      params;
      steps = 0;
      service_calls = 0;
      creates = 0;
    }
  in
  match exec_block env handler with
  | () -> Ok (Value.Unit, env.steps, env.service_calls)
  | exception Returned v -> Ok (v, env.steps, env.service_calls)
  | exception Abort_exec e -> Error e
