(** The extension manager (§3.5–§3.8).

    One instance per replica of an extensible coordination service.  Owns
    the registry of extensions and acknowledgment sets, matches operations
    and events against subscriptions, and defines the ["/em"] data-object
    conventions through which registration travels (§3.6).  The manager is
    stateless across faults: everything needed to rebuild it lives in
    ordinary replicated data objects (§3.8). *)

module Int_set : Set.S with type elt = int

type entry = {
  program : Program.t;
  owner : int;  (** client that registered the extension *)
  code : string;  (** registration bytes; lets reloads skip recompilation *)
  mutable acked : Int_set.t;  (** clients that may trigger it (incl. owner) *)
  reg_seq : int;  (** registration order; later registrations win (§3.3) *)
  compiled_op : Compile.t option;  (** staged at registration time *)
  compiled_ev : Compile.t option;
}

type t

(** The extension manager's own object and naming conventions. *)

val em_root : string
val em_index : string
val extension_object : string -> string
val ack_object : string -> client:int -> string

type em_path =
  | Not_em
  | Em_root
  | Em_index
  | Em_extension of string
  | Em_ack of string * int

(** [classify_path path] tells the service glue what a path under ["/em"]
    means. *)
val classify_path : string -> em_path

(** [create ~mode ()] — [verification_enabled:false] implements §4.2's
    escape hatch: structural limits are waived, but nondeterministic
    builtins remain rejected under active replication (consistency is not
    a policy knob). *)
val create :
  ?verify_limits:Verify.limits ->
  ?sandbox_limits:Sandbox.limits ->
  ?verification_enabled:bool ->
  mode:Verify.mode ->
  unit ->
  t

val sandbox_limits : t -> Sandbox.limits
val mode : t -> Verify.mode
val extension_count : t -> int
val find : t -> string -> entry option

(** [verify_code t code] — admission check run before the registration is
    even proposed, so bad extensions cost nothing in the replicated log. *)
val verify_code : t -> string -> (Program.t, string) result

(** [apply_registration t ~name ~owner ~code] — called when the committed
    state gains the extension's data object; runs identically on every
    replica (and again on recovery reload) and re-verifies the code. *)
val apply_registration :
  t -> name:string -> owner:int -> code:string -> (Program.t, string) result

(** [reload_registration t ~name ~owner ~code] — registration replay on a
    snapshot-driven reload.  When the extension is already present with
    identical code and owner, the staged compilation artifacts are reused
    (no re-verify, no re-compile) and only the acknowledgment set is reset
    to the owner; otherwise falls back to {!apply_registration}. *)
val reload_registration :
  t -> name:string -> owner:int -> code:string -> (Program.t, string) result

(** Reloads that reused an already-compiled extension (no recompilation). *)
val compile_reuses : t -> int

val apply_deregistration : t -> name:string -> unit

(** Drop all registrations (before a snapshot-driven reload, §3.8). *)
val clear : t -> unit

(** One-time acknowledgment: lets [client] trigger the extension (§3.6). *)
val apply_ack : t -> name:string -> client:int -> unit

val apply_unack : t -> name:string -> client:int -> unit

(** [match_operation t ~client ~kind ~oid] — the extension to run for a
    client request: among extensions the client acknowledged whose
    subscriptions match, the most recently registered wins (§3.3). *)
val match_operation :
  t -> client:int -> kind:Subscription.op_kind -> oid:string -> entry option

(** [match_events t ~kind ~oid] — all subscribed event extensions, in
    registration order (§3.3). *)
val match_events :
  t -> kind:Subscription.event_kind -> oid:string -> entry list

(** Should this client's original notification be suppressed (§5.1.2)? *)
val client_has_event_match :
  t -> client:int -> kind:Subscription.event_kind -> oid:string -> bool

(** Reference implementations: the pre-index linear scans over the whole
    registry, kept for differential tests and bench ablations.  Must agree
    with the indexed matchers on every input. *)

val match_operation_scan :
  t -> client:int -> kind:Subscription.op_kind -> oid:string -> entry option

val match_events_scan :
  t -> kind:Subscription.event_kind -> oid:string -> entry list

val client_has_event_match_scan :
  t -> client:int -> kind:Subscription.event_kind -> oid:string -> bool

val run_operation :
  t ->
  entry ->
  proxy:Sandbox.proxy ->
  params:(string * Value.t) list ->
  (Value.t, Sandbox.error) result

val run_event :
  t ->
  entry ->
  proxy:Sandbox.proxy ->
  params:(string * Value.t) list ->
  (Value.t, Sandbox.error) result

val registered_names : t -> string list

(** Content of the ["/em/index"] object: the registered names, one per
    line, so a recovering replica can find and reload everything (§3.8). *)
val index_data : t -> string
