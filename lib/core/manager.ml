(** The extension manager (§3.5–§3.8).

    One instance lives next to each replica of an extensible coordination
    service.  It owns the registry of extensions and their acknowledgment
    sets, matches incoming operations/events against subscriptions, and
    defines the data-object conventions used for registration:

    - ["/em"] — the manager's own object; creating ["/em/<name>"] with the
      serialized program as data registers extension [name]; deleting it
      deregisters (§3.6).
    - ["/em/<name>/ack/<client>"] — created by a client to acknowledge an
      extension registered by someone else; only acknowledged (or owned)
      extensions apply to a client's operations.
    - ["/em/index"] — the index object listing all registered extensions,
      maintained so a recovering replica can find and reload them (§3.8).

    The manager itself is *stateless across faults*: everything needed to
    rebuild it lives in ordinary service data objects, protected by the
    service's own fault-tolerance machinery.  The service glue (EZK/EDS)
    calls {!apply_registration} / {!apply_deregistration} when it observes
    those objects being created/deleted in the committed state — which
    happens identically on every replica and again on recovery replay. *)

type entry = {
  program : Program.t;
  owner : int;
  mutable acked : int list;  (** clients that may trigger it (incl. owner) *)
  reg_seq : int;  (** registration order; later registrations win (§3.3) *)
}

type t = {
  mode : Verify.mode;
  verify_limits : Verify.limits;
  sandbox_limits : Sandbox.limits;
  verification_enabled : bool;
      (** §4.2 opens the possibility of disabling verification for
          deployments whose constraints prove too restrictive; parsing and
          the determinism check still run (consistency is not optional) *)
  extensions : (string, entry) Hashtbl.t;
  mutable next_reg_seq : int;
}

let em_root = "/em"
let em_index = "/em/index"

let extension_object name = em_root ^ "/" ^ name

let ack_object name ~client = extension_object name ^ "/ack/" ^ string_of_int client

(** [classify_path path] tells the service glue what a path under ["/em"]
    means. *)
type em_path = Not_em | Em_root | Em_index | Em_extension of string | Em_ack of string * int

let classify_path path =
  if not (String.length path >= 3 && String.sub path 0 3 = em_root) then Not_em
  else if String.equal path em_root then Em_root
  else if String.equal path em_index then Em_index
  else
    match String.split_on_char '/' path with
    | [ ""; "em"; name ] when name <> "" -> Em_extension name
    | [ ""; "em"; name; "ack"; client ] when name <> "" -> (
        (* client ids are non-negative; "/em/x/ack/-1" is not an ack *)
        match int_of_string_opt client with
        | Some c when c >= 0 -> Em_ack (name, c)
        | Some _ | None -> Not_em)
    | _ -> Not_em

let create ?(verify_limits = Verify.default_limits)
    ?(sandbox_limits = Sandbox.default_limits) ?(verification_enabled = true)
    ~mode () =
  {
    mode;
    verify_limits;
    sandbox_limits;
    verification_enabled;
    extensions = Hashtbl.create 16;
    next_reg_seq = 0;
  }

let sandbox_limits t = t.sandbox_limits
let mode t = t.mode
let extension_count t = Hashtbl.length t.extensions
let find t name = Hashtbl.find_opt t.extensions name

(** [verify_code t code] — registration-time admission check; used by the
    glue *before* the create is even proposed, so a bad extension is
    rejected without consuming a slot in the replicated log. *)
let verify_code t code =
  match Verify.verify ~limits:t.verify_limits ~mode:t.mode code with
  | Ok program -> Ok program
  | Error (`Parse e) -> Error ("parse error: " ^ e)
  | Error (`Violations vs) ->
      if t.verification_enabled then
        Error (String.concat "; " (List.map Verify.violation_to_string vs))
      else (
        (* verification disabled (§4.2): still refuse nondeterminism under
           active replication — that is a consistency requirement, not a
           resource policy *)
        match
          List.filter
            (function Verify.Nondeterministic_builtin _ -> true | _ -> false)
            vs
        with
        | [] -> (
            match Codec.deserialize code with
            | Ok program -> Ok program
            | Error e -> Error ("parse error: " ^ e))
        | hard ->
            Error (String.concat "; " (List.map Verify.violation_to_string hard)))

(** [apply_registration t ~name ~owner ~code] — called when the committed
    state gains ["/em/<name>"].  Runs on every replica (and again on
    recovery reload); re-verifies because replicas never trust bytes. *)
let apply_registration t ~name ~owner ~code =
  match verify_code t code with
  | Error _ as e -> e
  | Ok program ->
      if program.Program.name <> name then Error "name mismatch"
      else begin
        let reg_seq = t.next_reg_seq in
        t.next_reg_seq <- reg_seq + 1;
        Hashtbl.replace t.extensions name
          { program; owner; acked = [ owner ]; reg_seq };
        Ok program
      end

let apply_deregistration t ~name = Hashtbl.remove t.extensions name

(** [clear t] drops all registrations (a replica about to reload from a
    snapshot, §3.8). *)
let clear t = Hashtbl.reset t.extensions

(** [apply_ack t ~name ~client] — the client has acknowledged use of the
    extension (one-time, §3.6). *)
let apply_ack t ~name ~client =
  match Hashtbl.find_opt t.extensions name with
  | Some e -> if not (List.mem client e.acked) then e.acked <- client :: e.acked
  | None -> ()

let apply_unack t ~name ~client =
  match Hashtbl.find_opt t.extensions name with
  | Some e -> e.acked <- List.filter (fun c -> c <> client) e.acked
  | None -> ()

let client_acked e ~client = List.mem client e.acked

(** [match_operation t ~client ~kind ~oid] finds the extension to run for a
    client request: among extensions the client acknowledged whose
    operation subscriptions match, the most recently registered wins
    (execution model of §3.3). *)
let match_operation t ~client ~kind ~oid =
  Hashtbl.fold
    (fun _ e best ->
      if
        client_acked e ~client
        && e.program.Program.on_operation <> None
        && List.exists
             (fun sub -> Subscription.op_matches sub ~kind ~oid)
             e.program.Program.op_subs
      then
        match best with
        | Some b when b.reg_seq > e.reg_seq -> best
        | _ -> Some e
      else best)
    t.extensions None

(** [match_events t ~kind ~oid] returns all event extensions subscribed to
    this state change, in registration order (§3.3: "one after another, in
    the order of their registration"). *)
let match_events t ~kind ~oid =
  Hashtbl.fold
    (fun _ e acc ->
      if
        e.program.Program.on_event <> None
        && List.exists
             (fun sub -> Subscription.ev_matches sub ~kind ~oid)
             e.program.Program.event_subs
      then e :: acc
      else acc)
    t.extensions []
  |> List.sort (fun a b -> Int.compare a.reg_seq b.reg_seq)

(** [client_has_event_match t ~client ~kind ~oid] — used to decide whether
    a client's original notification should be suppressed (§5.1.2). *)
let client_has_event_match t ~client ~kind ~oid =
  Hashtbl.fold
    (fun _ e acc ->
      acc
      || (client_acked e ~client
         && e.program.Program.on_event <> None
         && List.exists
              (fun sub -> Subscription.ev_matches sub ~kind ~oid)
              e.program.Program.event_subs))
    t.extensions false

(** [run_operation t entry ~proxy ~params] executes the operation handler
    in the sandbox. *)
let run_operation t entry ~proxy ~params =
  match entry.program.Program.on_operation with
  | None -> Error (Sandbox.Aborted "no operation handler")
  | Some handler ->
      Result.map (fun (v, _, _) -> v)
        (Sandbox.run ~limits:t.sandbox_limits ~proxy ~params handler)

let run_event t entry ~proxy ~params =
  match entry.program.Program.on_event with
  | None -> Error (Sandbox.Aborted "no event handler")
  | Some handler ->
      Result.map (fun (v, _, _) -> v)
        (Sandbox.run ~limits:t.sandbox_limits ~proxy ~params handler)

let registered_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.extensions [] |> List.sort compare

(** Serialized index-object content: one extension name per line. *)
let index_data t = String.concat "\n" (registered_names t)
