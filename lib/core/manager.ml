(** The extension manager (§3.5–§3.8).

    One instance lives next to each replica of an extensible coordination
    service.  It owns the registry of extensions and their acknowledgment
    sets, matches incoming operations/events against subscriptions, and
    defines the data-object conventions used for registration:

    - ["/em"] — the manager's own object; creating ["/em/<name>"] with the
      serialized program as data registers extension [name]; deleting it
      deregisters (§3.6).
    - ["/em/<name>/ack/<client>"] — created by a client to acknowledge an
      extension registered by someone else; only acknowledged (or owned)
      extensions apply to a client's operations.
    - ["/em/index"] — the index object listing all registered extensions,
      maintained so a recovering replica can find and reload them (§3.8).

    The manager itself is *stateless across faults*: everything needed to
    rebuild it lives in ordinary service data objects, protected by the
    service's own fault-tolerance machinery.  The service glue (EZK/EDS)
    calls {!apply_registration} / {!apply_deregistration} when it observes
    those objects being created/deleted in the committed state — which
    happens identically on every replica and again on recovery replay. *)

module Int_set = Set.Make (Int)

type entry = {
  program : Program.t;
  owner : int;
  code : string;  (** registration bytes; lets reloads skip recompilation *)
  mutable acked : Int_set.t;  (** clients that may trigger it (incl. owner) *)
  reg_seq : int;  (** registration order; later registrations win (§3.3) *)
  compiled_op : Compile.t option;
      (** operation handler staged at registration time (once per replica
          per registration, including snapshot reload) *)
  compiled_ev : Compile.t option;
}

(* The dispatch index: one bucket per (op_kind | event_kind), holding only
   entries that both subscribe to that kind *and* have the corresponding
   handler.  Within a bucket, [Exact] patterns hash on the full oid,
   [Under]/[Starts_with] patterns hash on their prefix (probed once per
   distinct stored prefix length), and [Any_oid] entries are scanned.
   Matching a request costs O(#distinct prefix lengths + hits) instead of
   O(#registered extensions).  Acknowledgment is checked at query time, so
   ack churn never rebuilds the index. *)
type bucket = {
  b_exact : (string, entry list) Hashtbl.t;
  b_prefix : (string, (Subscription.oid_pattern * entry) list) Hashtbl.t;
  mutable b_prefix_lengths : int list;  (** distinct, ascending *)
  mutable b_any : entry list;
}

type index = { op_buckets : bucket array; ev_buckets : bucket array }

type t = {
  mode : Verify.mode;
  verify_limits : Verify.limits;
  sandbox_limits : Sandbox.limits;
  verification_enabled : bool;
      (** §4.2 opens the possibility of disabling verification for
          deployments whose constraints prove too restrictive; parsing and
          the determinism check still run (consistency is not optional) *)
  extensions : (string, entry) Hashtbl.t;
  mutable next_reg_seq : int;
  mutable index : index;
  mutable compile_reuses : int;
      (** reloads that kept an entry's staged compiled handlers because the
          registration bytes were unchanged (snapshot-install reloads) *)
}

let em_root = "/em"
let em_index = "/em/index"

let extension_object name = em_root ^ "/" ^ name

let ack_object name ~client = extension_object name ^ "/ack/" ^ string_of_int client

(** [classify_path path] tells the service glue what a path under ["/em"]
    means. *)
type em_path = Not_em | Em_root | Em_index | Em_extension of string | Em_ack of string * int

let classify_path path =
  if not (String.length path >= 3 && String.sub path 0 3 = em_root) then Not_em
  else if String.equal path em_root then Em_root
  else if String.equal path em_index then Em_index
  else
    match String.split_on_char '/' path with
    | [ ""; "em"; name ] when name <> "" -> Em_extension name
    | [ ""; "em"; name; "ack"; client ] when name <> "" -> (
        (* client ids are non-negative; "/em/x/ack/-1" is not an ack *)
        match int_of_string_opt client with
        | Some c when c >= 0 -> Em_ack (name, c)
        | Some _ | None -> Not_em)
    | _ -> Not_em

let new_bucket () =
  {
    b_exact = Hashtbl.create 8;
    b_prefix = Hashtbl.create 8;
    b_prefix_lengths = [];
    b_any = [];
  }

let new_index () =
  {
    op_buckets = Array.init Subscription.n_op_kinds (fun _ -> new_bucket ());
    ev_buckets = Array.init Subscription.n_event_kinds (fun _ -> new_bucket ());
  }

let bucket_add b pattern e =
  match pattern with
  | Subscription.Exact oid ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt b.b_exact oid) in
      Hashtbl.replace b.b_exact oid (e :: cur)
  | Subscription.Under p | Subscription.Starts_with p ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt b.b_prefix p) in
      Hashtbl.replace b.b_prefix p ((pattern, e) :: cur);
      let l = String.length p in
      if not (List.mem l b.b_prefix_lengths) then
        b.b_prefix_lengths <- List.sort Int.compare (l :: b.b_prefix_lengths)
  | Subscription.Any_oid -> b.b_any <- e :: b.b_any

let rebuild_index t =
  let idx = new_index () in
  Hashtbl.iter
    (fun _ e ->
      if e.compiled_op <> None then
        List.iter
          (fun sub ->
            List.iter
              (fun kind ->
                bucket_add
                  idx.op_buckets.(Subscription.op_kind_index kind)
                  sub.Subscription.op_oid e)
              sub.Subscription.op_kinds)
          e.program.Program.op_subs;
      if e.compiled_ev <> None then
        List.iter
          (fun sub ->
            List.iter
              (fun kind ->
                bucket_add
                  idx.ev_buckets.(Subscription.event_kind_index kind)
                  sub.Subscription.ev_oid e)
              sub.Subscription.ev_kinds)
          e.program.Program.event_subs)
    t.extensions;
  t.index <- idx

(* All entries whose subscription (of the bucket's kind) matches [oid],
   possibly with duplicates when several subscriptions of one extension
   match; callers dedupe on [reg_seq], which is unique per entry. *)
let bucket_candidates b oid =
  let acc =
    match Hashtbl.find_opt b.b_exact oid with Some es -> es | None -> []
  in
  let olen = String.length oid in
  let acc =
    List.fold_left
      (fun acc l ->
        if l > olen then acc
        else
          match Hashtbl.find_opt b.b_prefix (String.sub oid 0 l) with
          | None -> acc
          | Some pats ->
              List.fold_left
                (fun acc (pat, e) ->
                  if Subscription.oid_matches pat oid then e :: acc else acc)
                acc pats)
      acc b.b_prefix_lengths
  in
  List.rev_append b.b_any acc

let create ?(verify_limits = Verify.default_limits)
    ?(sandbox_limits = Sandbox.default_limits) ?(verification_enabled = true)
    ~mode () =
  {
    mode;
    verify_limits;
    sandbox_limits;
    verification_enabled;
    extensions = Hashtbl.create 16;
    next_reg_seq = 0;
    index = new_index ();
    compile_reuses = 0;
  }

let sandbox_limits t = t.sandbox_limits
let mode t = t.mode
let extension_count t = Hashtbl.length t.extensions
let find t name = Hashtbl.find_opt t.extensions name

(** [verify_code t code] — registration-time admission check; used by the
    glue *before* the create is even proposed, so a bad extension is
    rejected without consuming a slot in the replicated log. *)
let verify_code t code =
  match Verify.verify ~limits:t.verify_limits ~mode:t.mode code with
  | Ok program -> Ok program
  | Error (`Parse e) -> Error ("parse error: " ^ e)
  | Error (`Violations vs) ->
      if t.verification_enabled then
        Error (String.concat "; " (List.map Verify.violation_to_string vs))
      else (
        (* verification disabled (§4.2): still refuse nondeterminism under
           active replication — that is a consistency requirement, not a
           resource policy *)
        match
          List.filter
            (function Verify.Nondeterministic_builtin _ -> true | _ -> false)
            vs
        with
        | [] -> (
            match Codec.deserialize code with
            | Ok program -> Ok program
            | Error e -> Error ("parse error: " ^ e))
        | hard ->
            Error (String.concat "; " (List.map Verify.violation_to_string hard)))

(** [apply_registration t ~name ~owner ~code] — called when the committed
    state gains ["/em/<name>"].  Runs on every replica (and again on
    recovery reload); re-verifies because replicas never trust bytes. *)
let apply_registration t ~name ~owner ~code =
  match verify_code t code with
  | Error _ as e -> e
  | Ok program ->
      if program.Program.name <> name then Error "name mismatch"
      else begin
        let reg_seq = t.next_reg_seq in
        t.next_reg_seq <- reg_seq + 1;
        (* stage the handlers now, while we are off the request path;
           every later trigger reuses the compiled form *)
        let compiled_op = Option.map Compile.compile program.Program.on_operation in
        let compiled_ev = Option.map Compile.compile program.Program.on_event in
        Hashtbl.replace t.extensions name
          {
            program;
            owner;
            code;
            acked = Int_set.singleton owner;
            reg_seq;
            compiled_op;
            compiled_ev;
          };
        rebuild_index t;
        Ok program
      end

(** [reload_registration t ~name ~owner ~code] — {!apply_registration} for
    recovery reloads (restart, snapshot install): when the registration
    bytes are identical to what is already staged, the existing entry —
    its verified program and compiled handlers — is reused instead of
    re-verified and recompiled.  Only the ack set is reset (to the owner):
    the freshly installed tree is the authority on acknowledgments, and
    the caller re-applies them from it.  Chunked snapshot installs on a
    busy replica would otherwise recompile every extension on every
    catch-up even though the registry rarely changes. *)
let reload_registration t ~name ~owner ~code =
  match Hashtbl.find_opt t.extensions name with
  | Some e when String.equal e.code code && e.owner = owner ->
      e.acked <- Int_set.singleton owner;
      t.compile_reuses <- t.compile_reuses + 1;
      Ok e.program
  | _ -> apply_registration t ~name ~owner ~code

let compile_reuses t = t.compile_reuses

let apply_deregistration t ~name =
  if Hashtbl.mem t.extensions name then begin
    Hashtbl.remove t.extensions name;
    rebuild_index t
  end

(** [clear t] drops all registrations (a replica about to reload from a
    snapshot, §3.8). *)
let clear t =
  Hashtbl.reset t.extensions;
  t.index <- new_index ()

(** [apply_ack t ~name ~client] — the client has acknowledged use of the
    extension (one-time, §3.6).  Ack churn only touches the entry's set;
    the dispatch index is untouched. *)
let apply_ack t ~name ~client =
  match Hashtbl.find_opt t.extensions name with
  | Some e -> e.acked <- Int_set.add client e.acked
  | None -> ()

let apply_unack t ~name ~client =
  match Hashtbl.find_opt t.extensions name with
  | Some e -> e.acked <- Int_set.remove client e.acked
  | None -> ()

let client_acked e ~client = Int_set.mem client e.acked

(** [match_operation t ~client ~kind ~oid] finds the extension to run for a
    client request: among extensions the client acknowledged whose
    operation subscriptions match, the most recently registered wins
    (execution model of §3.3). *)
let match_operation t ~client ~kind ~oid =
  let b = t.index.op_buckets.(Subscription.op_kind_index kind) in
  List.fold_left
    (fun best e ->
      if client_acked e ~client then
        match best with
        | Some b when b.reg_seq > e.reg_seq -> best
        | _ -> Some e
      else best)
    None (bucket_candidates b oid)

(** [match_events t ~kind ~oid] returns all event extensions subscribed to
    this state change, in registration order (§3.3: "one after another, in
    the order of their registration"). *)
let match_events t ~kind ~oid =
  let b = t.index.ev_buckets.(Subscription.event_kind_index kind) in
  bucket_candidates b oid
  |> List.sort_uniq (fun a b -> Int.compare a.reg_seq b.reg_seq)

(** [client_has_event_match t ~client ~kind ~oid] — used to decide whether
    a client's original notification should be suppressed (§5.1.2). *)
let client_has_event_match t ~client ~kind ~oid =
  let b = t.index.ev_buckets.(Subscription.event_kind_index kind) in
  List.exists (fun e -> client_acked e ~client) (bucket_candidates b oid)

(* Reference implementations: the pre-index linear scans, kept for
   differential tests and the indexed-vs-scan bench ablation. *)

let match_operation_scan t ~client ~kind ~oid =
  Hashtbl.fold
    (fun _ e best ->
      if
        client_acked e ~client
        && e.program.Program.on_operation <> None
        && List.exists
             (fun sub -> Subscription.op_matches sub ~kind ~oid)
             e.program.Program.op_subs
      then
        match best with
        | Some b when b.reg_seq > e.reg_seq -> best
        | _ -> Some e
      else best)
    t.extensions None

let match_events_scan t ~kind ~oid =
  Hashtbl.fold
    (fun _ e acc ->
      if
        e.program.Program.on_event <> None
        && List.exists
             (fun sub -> Subscription.ev_matches sub ~kind ~oid)
             e.program.Program.event_subs
      then e :: acc
      else acc)
    t.extensions []
  |> List.sort (fun a b -> Int.compare a.reg_seq b.reg_seq)

let client_has_event_match_scan t ~client ~kind ~oid =
  Hashtbl.fold
    (fun _ e acc ->
      acc
      || (client_acked e ~client
         && e.program.Program.on_event <> None
         && List.exists
              (fun sub -> Subscription.ev_matches sub ~kind ~oid)
              e.program.Program.event_subs))
    t.extensions false

(** [run_operation t entry ~proxy ~params] executes the staged operation
    handler (compiled at registration time). *)
let run_operation t entry ~proxy ~params =
  match entry.compiled_op with
  | None -> Error (Sandbox.Aborted "no operation handler")
  | Some c ->
      Result.map (fun (v, _, _) -> v)
        (Compile.run ~limits:t.sandbox_limits ~proxy ~params c)

let run_event t entry ~proxy ~params =
  match entry.compiled_ev with
  | None -> Error (Sandbox.Aborted "no event handler")
  | Some c ->
      Result.map (fun (v, _, _) -> v)
        (Compile.run ~limits:t.sandbox_limits ~proxy ~params c)

let registered_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.extensions [] |> List.sort compare

(** Serialized index-object content: one extension name per line. *)
let index_data t = String.concat "\n" (registered_names t)
