(** Operation and event subscriptions (§3.4).

    A subscription names the operations or events an extension wants to
    intercept: a set of kinds plus a pattern over object ids.  The
    extension manager matches incoming requests/events against the
    subscriptions of extensions the requesting client has acknowledged. *)

type oid_pattern =
  | Exact of string
  | Under of string  (** strict descendants (path-aware) *)
  | Starts_with of string  (** plain string prefix *)
  | Any_oid

(** Client-visible operation classes of the abstract API (Table 2). *)
type op_kind =
  | K_read
  | K_create
  | K_update
  | K_cas
  | K_delete
  | K_sub_objects
  | K_block

type event_kind = E_created | E_deleted | E_changed | E_unblocked

type operation_sub = { op_kinds : op_kind list; op_oid : oid_pattern }
type event_sub = { ev_kinds : event_kind list; ev_oid : oid_pattern }

(* Dense kind numbering for the manager's dispatch index. *)

let n_op_kinds = 7

let op_kind_index = function
  | K_read -> 0
  | K_create -> 1
  | K_update -> 2
  | K_cas -> 3
  | K_delete -> 4
  | K_sub_objects -> 5
  | K_block -> 6

let all_op_kinds =
  [ K_read; K_create; K_update; K_cas; K_delete; K_sub_objects; K_block ]

let n_event_kinds = 4

let event_kind_index = function
  | E_created -> 0
  | E_deleted -> 1
  | E_changed -> 2
  | E_unblocked -> 3

let all_event_kinds = [ E_created; E_deleted; E_changed; E_unblocked ]

let oid_matches pattern oid =
  match pattern with
  | Any_oid -> true
  | Exact p -> String.equal p oid
  | Starts_with p ->
      String.length oid >= String.length p && String.sub oid 0 (String.length p) = p
  | Under prefix ->
      let plen = String.length prefix in
      String.length oid > plen
      && String.sub oid 0 plen = prefix
      && (plen = 0 || prefix.[plen - 1] = '/' || oid.[plen] = '/')

let op_matches sub ~kind ~oid =
  List.mem kind sub.op_kinds && oid_matches sub.op_oid oid

let ev_matches sub ~kind ~oid =
  List.mem kind sub.ev_kinds && oid_matches sub.ev_oid oid

let op_kind_to_string = function
  | K_read -> "read"
  | K_create -> "create"
  | K_update -> "update"
  | K_cas -> "cas"
  | K_delete -> "delete"
  | K_sub_objects -> "subobjects"
  | K_block -> "block"

let op_kind_of_string = function
  | "read" -> Some K_read
  | "create" -> Some K_create
  | "update" -> Some K_update
  | "cas" -> Some K_cas
  | "delete" -> Some K_delete
  | "subobjects" -> Some K_sub_objects
  | "block" -> Some K_block
  | _ -> None

let event_kind_to_string = function
  | E_created -> "created"
  | E_deleted -> "deleted"
  | E_changed -> "changed"
  | E_unblocked -> "unblocked"

let event_kind_of_string = function
  | "created" -> Some E_created
  | "deleted" -> Some E_deleted
  | "changed" -> Some E_changed
  | "unblocked" -> Some E_unblocked
  | _ -> None

let pp_pattern ppf = function
  | Exact s -> Fmt.pf ppf "=%s" s
  | Under s -> Fmt.pf ppf "%s/*" s
  | Starts_with s -> Fmt.pf ppf "%s*" s
  | Any_oid -> Fmt.string ppf "*"
