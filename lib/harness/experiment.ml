(** The paper's evaluation experiments (§6): one function per figure, each
    returning the data series the figure plots.  Every experiment runs a
    fresh deterministic simulation per (system, client-count) point. *)

open Edc_simnet
open Edc_recipes
module Api = Coord_api
module Ck_history = Edc_checker.History
module Ck_model = Edc_checker.Model
module Ck_wgl = Edc_checker.Wgl
module Instrument = Edc_checker.Instrument

let default_client_counts = [ 1; 10; 20; 30; 40; 50 ]
let paired_client_counts = [ 2; 10; 20; 30; 40; 50 ]

type point = {
  kind : Systems.kind;
  clients : int;
  throughput : float;  (** ops per second *)
  latency_ms : float;
  p99_ms : float;
  kb_per_op : float;  (** client-transmitted data per completed op *)
  attempts : float;
  errors : int;
}

let point_of_results kind clients (r : Workload.results) =
  {
    kind;
    clients;
    throughput = r.Workload.throughput;
    latency_ms = r.Workload.mean_latency_ms;
    p99_ms = r.Workload.p99_latency_ms;
    kb_per_op = r.Workload.kb_per_op;
    attempts = r.Workload.attempts_per_op;
    errors = r.Workload.errors;
  }

let ack_if_ext (api : Api.t) name =
  match api.Api.ext with
  | Some ext -> (
      match ext.Api.acknowledge name with
      | Ok () -> ()
      | Error e -> failwith ("acknowledge: " ^ e))
  | None -> ()

let fail_on_error what = function Ok _ -> () | Error e -> failwith (what ^ ": " ^ e)

(* ------------------------------------------------------------------ *)
(* Figure 6: shared counter                                            *)
(* ------------------------------------------------------------------ *)

let counter_point ?(seed = 42) ?net_config ?batch ~warmup ~measure kind
    n_clients =
  let sim = Sim.create ~seed () in
  let sys = Systems.make ?net_config ?batch kind sim in
  let extensible = Systems.is_extensible kind in
  let r =
    Workload.run sys
      {
        Workload.n_clients;
        warmup;
        measure;
        ops_per_iteration = 1;
        setup =
          (fun api ->
            fail_on_error "counter setup" (Counter.setup api);
            if extensible then fail_on_error "register" (Counter.register api));
        prepare =
          (fun api -> if extensible then ack_if_ext api Counter.extension_name);
        op =
          (fun api ->
            let r =
              if extensible then Counter.increment_ext api
              else Counter.increment_traditional api
            in
            Result.map (fun (r : Counter.result) -> r.Counter.attempts) r);
      }
  in
  point_of_results kind n_clients r

(* ------------------------------------------------------------------ *)
(* Figure 8: distributed queue (add + remove per iteration)            *)
(* ------------------------------------------------------------------ *)

let queue_point ?(seed = 42) ?net_config ?batch ~warmup ~measure kind
    n_clients =
  let sim = Sim.create ~seed () in
  let sys = Systems.make ?net_config ?batch kind sim in
  let extensible = Systems.is_extensible kind in
  let iteration_counter = ref 0 in
  let r =
    Workload.run sys
      {
        Workload.n_clients;
        warmup;
        measure;
        ops_per_iteration = 2;
        setup =
          (fun api ->
            fail_on_error "queue setup" (Queue.setup api);
            if extensible then fail_on_error "register" (Queue.register api));
        prepare =
          (fun api -> if extensible then ack_if_ext api Queue.extension_name);
        op =
          (fun api ->
            incr iteration_counter;
            let eid = Queue.make_eid api !iteration_counter in
            (* empty payload: the cost measured is pure coordination
               overhead (§6.1.2) *)
            match Queue.add api ~eid ~data:"" with
            | Error e -> Error e
            | Ok () -> (
                let r =
                  if extensible then Queue.remove_ext api
                  else Queue.remove_traditional api
                in
                match r with
                | Ok rem -> Ok (1 + rem.Queue.attempts)
                | Error e -> Error e));
      }
  in
  point_of_results kind n_clients r

(* ------------------------------------------------------------------ *)
(* Figure 10: distributed barrier (round-based)                        *)
(* ------------------------------------------------------------------ *)

let barrier_point ?(seed = 42) ?net_config ?(rounds = 30) ?(warmup_rounds = 5)
    kind n_clients =
  let sim = Sim.create ~seed () in
  let sys = Systems.make ?net_config kind sim in
  let extensible = Systems.is_extensible kind in
  let latencies = Stats.Series.create () in
  let enters = ref 0 in
  let bytes_start = ref 0 and bytes_end = ref 0 in
  let apis = ref [] in
  let addrs = ref [] in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try
        let admin, _ = sys.Systems.new_api () in
        if extensible then fail_on_error "register" (Barrier.register admin);
        for _ = 1 to n_clients do
          let api, addr = sys.Systems.new_api () in
          if extensible then ack_if_ext api Barrier.extension_name;
          apis := api :: !apis;
          addrs := addr :: !addrs
        done;
        let snapshot () =
          List.fold_left (fun acc a -> acc + sys.Systems.bytes_sent_by a) 0 !addrs
        in
        for round = 1 to rounds do
          if round = warmup_rounds + 1 then bytes_start := snapshot ();
          let base = Printf.sprintf "/bar%06d" round in
          fail_on_error "barrier setup" (Barrier.setup admin ~base ~threshold:n_clients);
          let fibers =
            List.map
              (fun api ->
                Proc.async sim (fun () ->
                    let t0 = Sim.now sim in
                    (if extensible then
                       fail_on_error "enter" (Barrier.enter_ext api ~base)
                     else
                       fail_on_error "enter"
                         (Barrier.enter_traditional api ~base ~threshold:n_clients));
                    if round > warmup_rounds then begin
                      incr enters;
                      Stats.Series.add latencies
                        (Sim_time.to_float_ms (Sim_time.sub (Sim.now sim) t0))
                    end))
              !apis
          in
          Proc.join fibers
        done;
        bytes_end := snapshot ()
      with e -> failure := Some e);
  Sim.run ~until:(Sim_time.sec 3600) sim;
  (match !failure with Some e -> raise e | None -> ());
  {
    kind;
    clients = n_clients;
    throughput = 0.0;
    latency_ms = Stats.Series.mean latencies;
    p99_ms = Stats.Series.p99 latencies;
    kb_per_op =
      (if !enters = 0 then 0.0
       else float_of_int (!bytes_end - !bytes_start) /. 1024.0 /. float_of_int !enters);
    attempts = 1.0;
    errors = 0;
  }

(* ------------------------------------------------------------------ *)
(* Figure 12: leader election (become + immediately abdicate)          *)
(* ------------------------------------------------------------------ *)

let election_point ?(seed = 42) ?net_config ~warmup ~measure kind n_clients =
  let sim = Sim.create ~seed () in
  let sys = Systems.make ?net_config kind sim in
  let extensible = Systems.is_extensible kind in
  let roots = Election.election_roots in
  let window_start = Sim_time.add (Sim.now sim) warmup in
  let window_end = Sim_time.add window_start measure in
  let changes = ref 0 in
  let signaling = Stats.Series.create () in
  let last_abdication = ref None in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try
        let admin, _ = sys.Systems.new_api () in
        fail_on_error "election setup" (Election.setup admin roots);
        if extensible then fail_on_error "register" (Election.register admin roots);
        for _ = 1 to n_clients do
          Proc.spawn sim (fun () ->
              let api, _ = sys.Systems.new_api () in
              let handle = Election.new_handle () in
              if extensible then ack_if_ext api roots.Election.name;
              let rec loop () =
                if Sim_time.(Sim.now sim < window_end) then begin
                  (if extensible then
                     fail_on_error "become" (Election.become_leader_ext api roots)
                   else
                     fail_on_error "become"
                       (Election.become_leader_traditional api roots handle));
                  let now = Sim.now sim in
                  if Sim_time.(window_start <= now) && Sim_time.(now <= window_end)
                  then begin
                    incr changes;
                    match !last_abdication with
                    | Some t ->
                        Stats.Series.add signaling
                          (Sim_time.to_float_ms (Sim_time.sub now t));
                        last_abdication := None
                    | None -> ()
                  end;
                  (* the newly appointed leader immediately abdicates *)
                  last_abdication := Some (Sim.now sim);
                  (if extensible then
                     fail_on_error "abdicate" (Election.abdicate_ext api roots)
                   else
                     fail_on_error "abdicate"
                       (Election.abdicate_traditional api roots handle));
                  loop ()
                end
              in
              loop ())
        done
      with e -> failure := Some e);
  Sim.run ~until:(Sim_time.add window_end (Sim_time.sec 30)) sim;
  (match !failure with Some e -> raise e | None -> ());
  {
    kind;
    clients = n_clients;
    throughput = float_of_int !changes /. Sim_time.to_float_s measure;
    latency_ms = Stats.Series.mean signaling;
    p99_ms = Stats.Series.p99 signaling;
    kb_per_op = 0.0;
    attempts = 1.0;
    errors = 0;
  }

(* ------------------------------------------------------------------ *)
(* Figure 13: impact of the queue extension on regular clients         *)
(* ------------------------------------------------------------------ *)

type fig13_point = {
  f13_kind : Systems.kind;
  f13_queue_clients : int;
  f13_queue_throughput : float;  (** kOps/s equivalent: ops/s *)
  f13_read_ms : float;
  f13_write_ms : float;
}

let fig13_point ?(seed = 42) ?net_config ~warmup ~measure kind n_queue_clients =
  assert (Systems.is_extensible kind);
  let sim = Sim.create ~seed () in
  let sys = Systems.make ?net_config kind sim in
  let window_start = Sim_time.add (Sim.now sim) warmup in
  let window_end = Sim_time.add window_start measure in
  let queue_ops = ref 0 in
  let read_lat = Stats.Series.create () and write_lat = Stats.Series.create () in
  let payload = String.make 256 'x' in
  let failure = ref None in
  let in_window t0 t1 =
    Sim_time.(window_start <= t0) && Sim_time.(t1 <= window_end)
  in
  Proc.spawn sim (fun () ->
      try
        let admin, _ = sys.Systems.new_api () in
        fail_on_error "queue setup" (Queue.setup admin);
        fail_on_error "register" (Queue.register admin);
        (match admin.Api.create ~oid:"/regular" ~data:"" with
        | Ok _ | Error ("exists" | "node exists") -> ()
        | Error e -> failwith ("regular parent: " ^ e));
        (* queue stress clients *)
        for _ = 1 to n_queue_clients do
          Proc.spawn sim (fun () ->
              let api, _ = sys.Systems.new_api () in
              ack_if_ext api Queue.extension_name;
              let i = ref 0 in
              let rec loop () =
                if Sim_time.(Sim.now sim < window_end) then begin
                  incr i;
                  let t0 = Sim.now sim in
                  (match Queue.add api ~eid:(Queue.make_eid api !i) ~data:"" with
                  | Ok () -> (
                      match Queue.remove_ext api with
                      | Ok _ ->
                          if in_window t0 (Sim.now sim) then queue_ops := !queue_ops + 2
                      | Error _ -> ())
                  | Error _ -> ());
                  loop ()
                end
              in
              loop ())
        done;
        (* 30 regular clients: 15 readers, 15 writers on private 256-byte
           objects (§6.2) *)
        for k = 1 to 30 do
          Proc.spawn sim (fun () ->
              let api, _ = sys.Systems.new_api () in
              let oid = Printf.sprintf "/regular/obj%02d" k in
              (match api.Api.create ~oid ~data:payload with
              | Ok _ | Error ("exists" | "node exists") -> ()
              | Error e -> failwith ("regular setup: " ^ e));
              let writer = k > 15 in
              let rec loop () =
                if Sim_time.(Sim.now sim < window_end) then begin
                  let t0 = Sim.now sim in
                  (if writer then
                     match api.Api.update ~oid ~data:payload with
                     | Ok () ->
                         if in_window t0 (Sim.now sim) then
                           Stats.Series.add write_lat
                             (Sim_time.to_float_ms (Sim_time.sub (Sim.now sim) t0))
                     | Error _ -> ()
                   else
                     match api.Api.read ~oid with
                     | Ok _ ->
                         if in_window t0 (Sim.now sim) then
                           Stats.Series.add read_lat
                             (Sim_time.to_float_ms (Sim_time.sub (Sim.now sim) t0))
                     | Error _ -> ());
                  loop ()
                end
              in
              loop ())
        done
      with e -> failure := Some e);
  Sim.run ~until:(Sim_time.add window_end (Sim_time.sec 10)) sim;
  (match !failure with Some e -> raise e | None -> ());
  {
    f13_kind = kind;
    f13_queue_clients = n_queue_clients;
    f13_queue_throughput = float_of_int !queue_ops /. Sim_time.to_float_s measure;
    f13_read_ms = Stats.Series.mean read_lat;
    f13_write_ms = Stats.Series.mean write_lat;
  }

(* ------------------------------------------------------------------ *)
(* §6.2: extensibility overhead on regular operations                  *)
(* ------------------------------------------------------------------ *)

type overhead_point = {
  oh_kind : Systems.kind;
  oh_read_ms : float;
  oh_write_ms : float;
}

(** Regular read/write latency with no extension triggered; on the
    extensible systems an unrelated extension is registered so the
    manager's matching path is live. *)
let overhead_point ?(seed = 42) ?net_config ~warmup ~measure kind =
  let sim = Sim.create ~seed () in
  let sys = Systems.make ?net_config kind sim in
  let extensible = Systems.is_extensible kind in
  let window_start = Sim_time.add (Sim.now sim) warmup in
  let window_end = Sim_time.add window_start measure in
  let read_lat = Stats.Series.create () and write_lat = Stats.Series.create () in
  let payload = String.make 256 'x' in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try
        let admin, _ = sys.Systems.new_api () in
        if extensible then begin
          fail_on_error "counter setup" (Counter.setup admin);
          fail_on_error "register" (Counter.register admin)
        end;
        (match admin.Api.create ~oid:"/regular" ~data:"" with
        | Ok _ | Error ("exists" | "node exists") -> ()
        | Error e -> failwith ("regular parent: " ^ e));
        for k = 1 to 20 do
          Proc.spawn sim (fun () ->
              let api, _ = sys.Systems.new_api () in
              let oid = Printf.sprintf "/regular/obj%02d" k in
              (match api.Api.create ~oid ~data:payload with
              | Ok _ | Error ("exists" | "node exists") -> ()
              | Error e -> failwith ("setup: " ^ e));
              let writer = k > 10 in
              let rec loop () =
                if Sim_time.(Sim.now sim < window_end) then begin
                  let t0 = Sim.now sim in
                  let record series =
                    let t1 = Sim.now sim in
                    if Sim_time.(window_start <= t0) && Sim_time.(t1 <= window_end)
                    then
                      Stats.Series.add series
                        (Sim_time.to_float_ms (Sim_time.sub t1 t0))
                  in
                  (if writer then
                     match api.Api.update ~oid ~data:payload with
                     | Ok () -> record write_lat
                     | Error _ -> ()
                   else
                     match api.Api.read ~oid with
                     | Ok _ -> record read_lat
                     | Error _ -> ());
                  loop ()
                end
              in
              loop ())
        done
      with e -> failure := Some e);
  Sim.run ~until:(Sim_time.add window_end (Sim_time.sec 10)) sim;
  (match !failure with Some e -> raise e | None -> ());
  {
    oh_kind = kind;
    oh_read_ms = Stats.Series.mean read_lat;
    oh_write_ms = Stats.Series.mean write_lat;
  }

(* ------------------------------------------------------------------ *)
(* Linearizability of the blocking recipes (election-as-lock, barrier) *)
(* ------------------------------------------------------------------ *)

type lin_point = {
  lp_kind : Systems.kind;
  lp_seed : int;
  lp_events : int;  (** history events captured *)
  lp_lock : Edc_checker.Wgl.verdict;
      (** mutual exclusion: leadership checked against the mutex model *)
  lp_barrier : (unit, string) result;
      (** gate property: nobody passes before the threshold-th entry *)
}

(** Healthy-cluster check of the recipes whose semantic unit is a whole
    blocking call rather than a single API operation: leadership
    acquire/release against the mutex model, barrier rounds against the
    real-time gate property.  Histories are captured with
    {!Edc_checker.Instrument.record} at recipe granularity. *)
let lin_recipes_point ?(seed = 42) ?(contenders = 3) ?(rounds = 6)
    ?(barrier_clients = 4) ?(barrier_rounds = 5) ?lin_max_steps kind =
  let sim = Sim.create ~seed () in
  let sys = Systems.make kind sim in
  let extensible = Systems.is_extensible kind in
  let history = Ck_history.create ~sim () in
  let roots = Election.election_roots in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try
        let admin, _ = sys.Systems.new_api () in
        fail_on_error "election setup" (Election.setup admin roots);
        if extensible then begin
          fail_on_error "election reg" (Election.register admin roots);
          fail_on_error "barrier reg" (Barrier.register admin)
        end;
        (* leadership contenders: leadership = the lock *)
        for _ = 1 to contenders do
          Proc.spawn sim (fun () ->
              let api, _ = sys.Systems.new_api () in
              let handle = Election.new_handle () in
              if extensible then ack_if_ext api roots.Election.name;
              let client = api.Api.client_id in
              for _ = 1 to rounds do
                fail_on_error "become"
                  (Instrument.record history ~client ~op:Ck_history.Acquire
                     ~response:(fun () -> Ck_history.R_unit)
                     (fun () ->
                       if extensible then Election.become_leader_ext api roots
                       else
                         Election.become_leader_traditional api roots handle));
                Proc.sleep sim (Sim_time.ms 5);
                fail_on_error "abdicate"
                  (Instrument.record history ~client ~op:Ck_history.Release
                     ~response:(fun () -> Ck_history.R_unit)
                     (fun () ->
                       if extensible then Election.abdicate_ext api roots
                       else Election.abdicate_traditional api roots handle))
              done)
        done;
        (* barrier rounds (base must start with "/bar", the extension's
           subscription prefix) *)
        let apis =
          List.init barrier_clients (fun _ ->
              let api, _ = sys.Systems.new_api () in
              if extensible then ack_if_ext api Barrier.extension_name;
              api)
        in
        for round = 1 to barrier_rounds do
          let base = Printf.sprintf "/barlin%04d" round in
          fail_on_error "barrier setup"
            (Barrier.setup admin ~base ~threshold:barrier_clients);
          let fibers =
            List.map
              (fun (api : Api.t) ->
                Proc.async sim (fun () ->
                    fail_on_error "enter"
                      (Instrument.record history ~client:api.Api.client_id
                         ~op:(Ck_history.Enter base)
                         ~response:(fun () -> Ck_history.R_unit)
                         (fun () ->
                           if extensible then Barrier.enter_ext api ~base
                           else
                             Barrier.enter_traditional api ~base
                               ~threshold:barrier_clients))))
              apis
          in
          Proc.join fibers
        done
      with e -> failure := Some e);
  Sim.run ~until:(Sim_time.sec 600) sim;
  (match !failure with Some e -> raise e | None -> ());
  let parts = Ck_history.split (Ck_history.entries history) in
  let part obj = Option.value ~default:[] (List.assoc_opt obj parts) in
  {
    lp_kind = kind;
    lp_seed = seed;
    lp_events = Ck_history.n_events history;
    lp_lock =
      Ck_wgl.check ?max_steps:lin_max_steps Ck_model.mutex (part "lock");
    lp_barrier =
      Ck_model.check_gate ~threshold:barrier_clients (part "barrier");
  }

(* ------------------------------------------------------------------ *)
(* Chaos: availability under the nemesis fault schedule               *)
(* ------------------------------------------------------------------ *)

(** Membership-change outcome counters for one run, distilled from the
    cluster-wide {!Edc_replication.Zab.reconfig_stats} aggregation. *)
type reconfig_summary = {
  rs_joins_attempted : int;
  rs_joins_completed : int;
  rs_leaves_attempted : int;
  rs_leaves_completed : int;
  rs_joint_commits : int;
  rs_finals_committed : int;
  rs_aborted : int;  (** joint entries truncated uncommitted *)
  rs_fenced : int;  (** replica-fencing events *)
  rs_catchup_ms : float list;  (** per-promoted-learner bootstrap times *)
}

let reconfig_summary_of_stats (r : Edc_replication.Zab.reconfig_stats) =
  {
    rs_joins_attempted = r.Edc_replication.Zab.joins_requested;
    rs_joins_completed = r.Edc_replication.Zab.joins_completed;
    rs_leaves_attempted = r.Edc_replication.Zab.leaves_requested;
    rs_leaves_completed = r.Edc_replication.Zab.leaves_completed;
    rs_joint_commits = r.Edc_replication.Zab.joint_commits;
    rs_finals_committed = r.Edc_replication.Zab.finals_committed;
    rs_aborted = r.Edc_replication.Zab.aborted;
    rs_fenced = r.Edc_replication.Zab.fences;
    rs_catchup_ms = r.Edc_replication.Zab.catchup_ms;
  }

type chaos_point = {
  ch_kind : Systems.kind;
  ch_seed : int;
  ch_ops_ok : int;
  ch_ops_maybe : int;  (** concluded [Maybe_applied] (ambiguous writes) *)
  ch_ops_failed : int;
  ch_success_rate : float;
  ch_errors : (string * int) list;  (** taxonomy of non-ok outcomes *)
  ch_counter_confirmed : int;
  ch_counter_maybe : int;
  ch_counter_final : int;
  ch_adds_confirmed : int;
  ch_adds_maybe : int;
  ch_consumed : int;
  ch_remaining : int;
  ch_removes_maybe : int;
  ch_crashes : int;
  ch_leader_kills : int;
  ch_partitions : int;
  ch_partitions_healed : int;
  ch_storms : int;
  ch_faults : int;
  ch_dropped : int;  (** messages discarded by the simulated network *)
  ch_recovery_ms : Stats.Series.t;
      (** per-disruption time to the next successful client operation *)
  ch_unrecovered : int;
  ch_anomalies : int;
  ch_invariant_failures : string list;  (** empty = all invariants intact *)
  ch_trace : string;
  ch_lin : (string * Ck_wgl.verdict) list;
      (** per-object linearizability verdicts over the captured history
          (empty when the run was started with [~check:false]) *)
  ch_history_events : int;
  ch_snap : Systems.snapshot_stats;
      (** snapshot/state-transfer activity during the run (zeros for the
          BFT deployments) *)
  ch_wire : Systems.wire_stats;
      (** serializer work during the run: frames encoded vs per-destination
          sends (zeros for the BFT deployments) *)
  ch_reconfig : reconfig_summary;
      (** membership-change activity (all-zero when the schedule contains
          no reconfiguration and none was driven externally) *)
  ch_reconfig_kills : int;  (** reconfiguration-targeted leader strikes *)
}

(** Counter incrementers plus queue producers/consumers on resilient
    sessions while the nemesis runs the fault [schedule]; afterwards the
    final state is read back and checked against what clients were told.

    The safety invariants tolerate exactly the ambiguity the session layer
    surfaces: every [Maybe_applied] write may or may not have executed, so
    [confirmed <= final <= confirmed + maybe] for the counter, and a
    confirmed queue element may only be missing if some remove concluded
    ambiguously. *)
let chaos_point ?(seed = 42) ?net_config ?zab_config ?server_config
    ?(schedule = Nemesis.standard_schedule) ?(horizon = Sim_time.sec 22)
    ?(check = true) ?lin_max_steps kind =
  let sim = Sim.create ~seed () in
  let sys = Systems.make ?net_config ?zab_config ?server_config kind sim in
  let history = Ck_history.create ~sim () in
  let maybe_wrap api = if check then Instrument.wrap history api else api in
  let extensible = Systems.is_extensible kind in
  let ops_end = Sim_time.add horizon (Sim_time.sec 3) in
  (* every resilient op concludes within the session deadline of its
     start, so final-state verification waits that long after [ops_end] *)
  let deadline =
    Option.value Edc_core.Retry.default_policy.Edc_core.Retry.deadline
      ~default:(Sim_time.sec 30)
  in
  let verify_at = Sim_time.add ops_end (Sim_time.add deadline (Sim_time.sec 1)) in
  let ok = ref 0 and maybe = ref 0 and failed = ref 0 in
  let taxonomy : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let tax e =
    Hashtbl.replace taxonomy e
      (1 + Option.value ~default:0 (Hashtbl.find_opt taxonomy e))
  in
  let success_times = ref [] in
  let succeed () =
    incr ok;
    success_times := Sim.now sim :: !success_times
  in
  let classify e ~on_maybe =
    if e = "maybe applied" then begin
      on_maybe ();
      incr maybe
    end
    else incr failed;
    tax e
  in
  let confirmed_incr = ref 0 and maybe_incr = ref 0 in
  let confirmed_adds : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let maybe_adds : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let consumed = ref [] in
  let maybe_removes = ref 0 in
  let nemesis = ref None in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try
        let admin, _ = sys.Systems.new_api () in
        fail_on_error "counter setup" (Counter.setup admin);
        fail_on_error "queue setup" (Queue.setup admin);
        if extensible then begin
          fail_on_error "register counter" (Counter.register admin);
          fail_on_error "register queue" (Queue.register admin)
        end;
        nemesis :=
          Some
            (Nemesis.start ~sim ~target:(sys.Systems.nemesis_target ())
               ~horizon schedule);
        (* three counter incrementers *)
        for _ = 1 to 3 do
          Proc.spawn sim (fun () ->
              let api = maybe_wrap (fst (sys.Systems.new_resilient_api ())) in
              if extensible then ack_if_ext api Counter.extension_name;
              let rec loop () =
                if Sim_time.(Sim.now sim < ops_end) then begin
                  (match
                     if extensible then Counter.increment_ext api
                     else Counter.increment_traditional api
                   with
                  | Ok _ ->
                      incr confirmed_incr;
                      succeed ()
                  | Error e ->
                      classify e ~on_maybe:(fun () -> incr maybe_incr));
                  Proc.sleep sim (Sim_time.ms 20);
                  loop ()
                end
              in
              loop ())
        done;
        (* two producers: element data = eid, so consumed elements are
           identifiable for the conservation check *)
        for _ = 1 to 2 do
          Proc.spawn sim (fun () ->
              let api = maybe_wrap (fst (sys.Systems.new_resilient_api ())) in
              if extensible then ack_if_ext api Queue.extension_name;
              let i = ref 0 in
              let rec loop () =
                if Sim_time.(Sim.now sim < ops_end) then begin
                  incr i;
                  let eid = Queue.make_eid api !i in
                  (match Queue.add api ~eid ~data:eid with
                  | Ok () ->
                      Hashtbl.replace confirmed_adds eid ();
                      succeed ()
                  | Error e ->
                      classify e ~on_maybe:(fun () ->
                          Hashtbl.replace maybe_adds eid ()));
                  Proc.sleep sim (Sim_time.ms 40);
                  loop ()
                end
              in
              loop ())
        done;
        (* two consumers *)
        for _ = 1 to 2 do
          Proc.spawn sim (fun () ->
              let api = maybe_wrap (fst (sys.Systems.new_resilient_api ())) in
              if extensible then ack_if_ext api Queue.extension_name;
              let rec loop () =
                if Sim_time.(Sim.now sim < ops_end) then begin
                  (match
                     if extensible then Queue.remove_ext api
                     else Queue.remove_traditional api
                   with
                  | Ok { Queue.data = Some d; _ } ->
                      consumed := d :: !consumed;
                      succeed ()
                  | Ok { Queue.data = None; _ } ->
                      (* an empty poll is still a served request *)
                      succeed ();
                      Proc.sleep sim (Sim_time.ms 60)
                  | Error e ->
                      classify e ~on_maybe:(fun () -> incr maybe_removes));
                  Proc.sleep sim (Sim_time.ms 30);
                  loop ()
                end
              in
              loop ())
        done
      with e -> failure := Some e);
  Sim.run ~until:verify_at sim;
  (match !failure with Some e -> raise e | None -> ());
  (* read back the final state through a fresh client *)
  let final_counter = ref 0 in
  let remaining = ref [] in
  Proc.spawn sim (fun () ->
      try
        (* the final reads go through the instrumented wrapper too: they
           pin the final state in the recorded history, so a lost or
           double-applied write has to show up as a non-linearizable read *)
        let api = maybe_wrap (fst (sys.Systems.new_resilient_api ())) in
        (match api.Api.read ~oid:Counter.counter_oid with
        | Ok (Some o) -> final_counter := int_of_string o.Api.data
        | Ok None -> failwith "counter object vanished"
        | Error e -> failwith ("final counter read: " ^ e));
        match api.Api.sub_objects ~oid:Queue.root with
        | Ok objs ->
            remaining := List.map (fun (o : Api.obj) -> o.Api.data) objs
        | Error e -> failwith ("final queue read: " ^ e)
      with e -> failure := Some e);
  Sim.run ~until:(Sim_time.add verify_at (Sim_time.sec 10)) sim;
  (match !failure with Some e -> raise e | None -> ());
  let nem = Option.get !nemesis in
  (* invariants *)
  let invariant_failures = ref [] in
  let invariant name cond =
    if not cond then invariant_failures := name :: !invariant_failures
  in
  let anomalies = sys.Systems.anomalies () in
  invariant "replication anomalies = 0" (anomalies = 0);
  invariant "counter >= confirmed increments" (!final_counter >= !confirmed_incr);
  invariant "counter <= confirmed + ambiguous increments"
    (!final_counter <= !confirmed_incr + !maybe_incr);
  let sorted_consumed = List.sort compare !consumed in
  let rec has_dup = function
    | a :: (b :: _ as rest) -> a = b || has_dup rest
    | _ -> false
  in
  invariant "no queue element consumed twice" (not (has_dup sorted_consumed));
  invariant "consumed elements were added"
    (List.for_all
       (fun d -> Hashtbl.mem confirmed_adds d || Hashtbl.mem maybe_adds d)
       !consumed);
  let consumed_set : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun d -> Hashtbl.replace consumed_set d ()) !consumed;
  let remaining_set : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun d -> Hashtbl.replace remaining_set d ()) !remaining;
  let missing =
    Hashtbl.fold
      (fun eid () acc ->
        if Hashtbl.mem consumed_set eid || Hashtbl.mem remaining_set eid then
          acc
        else acc + 1)
      confirmed_adds 0
  in
  invariant "lost queue elements covered by ambiguous removes"
    (missing <= !maybe_removes);
  (* per-disruption recovery: time to the next successful client op *)
  let successes = List.rev !success_times in
  let recovery = Stats.Series.create () in
  let unrecovered = ref 0 in
  List.iter
    (fun { Nemesis.at; fault } ->
      match fault with
      | Nemesis.Crash _ | Nemesis.Partition _ | Nemesis.Storm_start _ -> (
          match List.find_opt (fun ts -> Sim_time.(at <= ts)) successes with
          | Some ts ->
              Stats.Series.add recovery
                (Sim_time.to_float_ms (Sim_time.sub ts at))
          | None -> incr unrecovered)
      | _ -> ())
    (Nemesis.trace nem);
  let total = !ok + !maybe + !failed in
  let errors =
    Hashtbl.fold (fun e n acc -> (e, n) :: acc) taxonomy []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  (* linearizability pass: compositional, one WGL search per object *)
  let lin =
    if not check then []
    else
      Ck_history.entries history
      |> Ck_history.split
      |> List.filter_map (fun (obj, es) ->
             Ck_model.for_object obj
             |> Option.map (fun m ->
                    (obj, Ck_wgl.check ?max_steps:lin_max_steps m es)))
  in
  {
    ch_kind = kind;
    ch_seed = seed;
    ch_ops_ok = !ok;
    ch_ops_maybe = !maybe;
    ch_ops_failed = !failed;
    ch_success_rate =
      (if total = 0 then 0. else float_of_int !ok /. float_of_int total);
    ch_errors = errors;
    ch_counter_confirmed = !confirmed_incr;
    ch_counter_maybe = !maybe_incr;
    ch_counter_final = !final_counter;
    ch_adds_confirmed = Hashtbl.length confirmed_adds;
    ch_adds_maybe = Hashtbl.length maybe_adds;
    ch_consumed = List.length !consumed;
    ch_remaining = List.length !remaining;
    ch_removes_maybe = !maybe_removes;
    ch_crashes = Nemesis.crashes nem;
    ch_leader_kills = Nemesis.leader_kills nem;
    ch_partitions = Nemesis.partitions nem;
    ch_partitions_healed = Nemesis.partitions_healed nem;
    ch_storms = Nemesis.storms nem;
    ch_faults = Nemesis.faults_injected nem;
    ch_dropped = sys.Systems.dropped_messages ();
    ch_recovery_ms = recovery;
    ch_unrecovered = !unrecovered;
    ch_anomalies = anomalies;
    ch_invariant_failures = List.rev !invariant_failures;
    ch_trace = Nemesis.trace_to_string nem;
    ch_lin = lin;
    ch_history_events = Ck_history.n_events history;
    ch_snap = sys.Systems.snapshot_stats ();
    ch_wire = sys.Systems.wire_stats ();
    ch_reconfig = reconfig_summary_of_stats (sys.Systems.reconfig_stats ());
    ch_reconfig_kills = Nemesis.reconfig_kills nem;
  }

(* ------------------------------------------------------------------ *)
(* Elastic membership: 3 -> 5 -> 3 autoscaling under chaos             *)
(* ------------------------------------------------------------------ *)

type membership_point = {
  mp_kind : Systems.kind;
  mp_seed : int;
  mp_ops_ok : int;
  mp_ops_maybe : int;
  mp_ops_failed : int;
  mp_errors : (string * int) list;
  mp_members_final : int list;
  mp_grow_ms : float list;  (** add_replica -> stable config, per join *)
  mp_shrink_ms : float list;  (** remove accepted -> stable config *)
  mp_reconfig : reconfig_summary;
  mp_reconfig_kills : int;
  mp_crashes : int;
  mp_leader_kills : int;
  mp_steady_ops_s : float;  (** pre-reconfiguration write throughput *)
  mp_trough_ops_s : float;  (** worst bucket during the elastic phase *)
  mp_recovery_s : float list;
      (** per reconfiguration event: time until bucket throughput is back
          to >= 90% of steady state *)
  mp_unrecovered : int;
  mp_counter_confirmed : int;
  mp_counter_maybe : int;
  mp_counter_final : int;
  mp_anomalies : int;
  mp_invariant_failures : string list;
  mp_lin : (string * Ck_wgl.verdict) list;
  mp_history_events : int;
  mp_trace : string;
  mp_snap : Systems.snapshot_stats;
}

(** The autoscaling scenario: a 3-replica ensemble under a diurnal write
    curve grows to 5 (each joiner bootstrapped as a learner via chunked
    snapshot transfer) and shrinks back to 3, while a reconfiguration-
    targeted nemesis kills the leader mid-change and the first learner's
    links are cut mid-bootstrap (the transfer must resume, not restart).
    Safety is checked three ways: the replication anomaly counters, the
    counter/queue conservation invariants, and a WGL linearizability pass
    over the full client history spanning every config boundary. *)
let membership_point ?(seed = 42) ?net_config ?(check = true) ?lin_max_steps
    kind =
  let sim = Sim.create ~seed () in
  (* a regional (few-ms) network, not the 100 us LAN: agreement rounds and
     the learner bootstrap must span real time or every race window the
     nemesis aims for closes within a single poll *)
  let net_config =
    match net_config with
    | Some c -> Some c
    | None -> Some { Net.lan_config with Net.base_latency = Sim_time.ms 3 }
  in
  (* a tight snapshot interval + small chunks so a joiner always
     bootstraps through a multi-chunk state transfer *)
  let server_config =
    {
      Edc_zookeeper.Server.default_config with
      Edc_zookeeper.Server.snapshot_interval = 40;
    }
  in
  let zab_config =
    {
      Edc_replication.Zab.default_config with
      Edc_replication.Zab.snapshot_chunk_size = 192;
      snapshot_window = 4;
    }
  in
  let sys =
    Systems.make ?net_config ~zab_config ~server_config kind sim
  in
  let history = Ck_history.create ~sim () in
  let maybe_wrap api = if check then Instrument.wrap history api else api in
  let extensible = Systems.is_extensible kind in
  let ops_end = Sim_time.sec 21 in
  let horizon = Sim_time.sec 16 in
  let deadline =
    Option.value Edc_core.Retry.default_policy.Edc_core.Retry.deadline
      ~default:(Sim_time.sec 30)
  in
  let verify_at = Sim_time.add ops_end (Sim_time.add deadline (Sim_time.sec 1)) in
  let ok = ref 0 and maybe = ref 0 and failed = ref 0 in
  let taxonomy : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let tax e =
    Hashtbl.replace taxonomy e
      (1 + Option.value ~default:0 (Hashtbl.find_opt taxonomy e))
  in
  let success_times = ref [] in
  let succeed () =
    incr ok;
    success_times := Sim.now sim :: !success_times
  in
  let classify e ~on_maybe =
    if e = "maybe applied" then begin
      on_maybe ();
      incr maybe
    end
    else incr failed;
    tax e
  in
  let confirmed_incr = ref 0 and maybe_incr = ref 0 in
  let confirmed_adds : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let maybe_adds : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let consumed = ref [] in
  let maybe_removes = ref 0 in
  let invariant_failures = ref [] in
  let invariant name cond =
    if not cond then invariant_failures := name :: !invariant_failures
  in
  let grow_ms = ref [] and shrink_ms = ref [] in
  let reconfig_marks = ref [] in  (* initiation times, for recovery windows *)
  let nemesis = ref None in
  let failure = ref None in
  (* fiber-side helpers *)
  let wait_until ?(poll = Sim_time.ms 50) ~timeout pred =
    let wait_deadline = Sim_time.add (Sim.now sim) timeout in
    let rec go () =
      if pred () then true
      else if Sim_time.(wait_deadline <= Sim.now sim) then false
      else begin
        Proc.sleep sim poll;
        go ()
      end
    in
    go ()
  in
  let stable_members n () =
    (not (sys.Systems.reconfig_in_flight ()))
    && List.length (sys.Systems.members ()) = n
  in
  (* diurnal write curve: think time swings 12..28 ms on an 8 s period *)
  let diurnal_sleep () =
    let t = Sim_time.to_float_s (Sim.now sim) in
    let phase = sin (2. *. Float.pi *. t /. 8.) in
    Sim_time.of_float_s (0.012 +. 0.016 *. (1. +. phase) /. 2.)
  in
  Proc.spawn sim (fun () ->
      try
        let admin, _ = sys.Systems.new_api () in
        fail_on_error "counter setup" (Counter.setup admin);
        fail_on_error "queue setup" (Queue.setup admin);
        if extensible then begin
          fail_on_error "register counter" (Counter.register admin);
          fail_on_error "register queue" (Queue.register admin)
        end;
        (* the only scheduled chaos: from t=8s, strike the leader within
           120 ms whenever a reconfiguration is in flight *)
        nemesis :=
          Some
            (Nemesis.start ~sim
               ~target:(sys.Systems.nemesis_target ())
               ~horizon
               [
                 {
                   Nemesis.start = Sim_time.sec 8;
                   period = Some (Sim_time.ms 1200);
                   action =
                     Nemesis.Reconfig_kill
                       {
                         grace = Sim_time.ms 120;
                         downtime = Sim_time.ms 1200;
                       };
                 };
               ]);
        (* three counter incrementers on the diurnal curve *)
        for _ = 1 to 3 do
          Proc.spawn sim (fun () ->
              let api = maybe_wrap (fst (sys.Systems.new_resilient_api ())) in
              if extensible then ack_if_ext api Counter.extension_name;
              let rec loop () =
                if Sim_time.(Sim.now sim < ops_end) then begin
                  (match
                     if extensible then Counter.increment_ext api
                     else Counter.increment_traditional api
                   with
                  | Ok _ ->
                      incr confirmed_incr;
                      succeed ()
                  | Error e ->
                      classify e ~on_maybe:(fun () -> incr maybe_incr));
                  Proc.sleep sim (diurnal_sleep ());
                  loop ()
                end
              in
              loop ())
        done;
        (* one producer / one consumer so the history spans two object
           types across every config boundary *)
        Proc.spawn sim (fun () ->
            let api = maybe_wrap (fst (sys.Systems.new_resilient_api ())) in
            if extensible then ack_if_ext api Queue.extension_name;
            let i = ref 0 in
            let rec loop () =
              if Sim_time.(Sim.now sim < ops_end) then begin
                incr i;
                let eid = Queue.make_eid api !i in
                (match Queue.add api ~eid ~data:eid with
                | Ok () ->
                    Hashtbl.replace confirmed_adds eid ();
                    succeed ()
                | Error e ->
                    classify e ~on_maybe:(fun () ->
                        Hashtbl.replace maybe_adds eid ()));
                Proc.sleep sim (Sim_time.ms 40);
                loop ()
              end
            in
            loop ());
        Proc.spawn sim (fun () ->
            let api = maybe_wrap (fst (sys.Systems.new_resilient_api ())) in
            if extensible then ack_if_ext api Queue.extension_name;
            let rec loop () =
              if Sim_time.(Sim.now sim < ops_end) then begin
                (match
                   if extensible then Queue.remove_ext api
                   else Queue.remove_traditional api
                 with
                | Ok { Queue.data = Some d; _ } ->
                    consumed := d :: !consumed;
                    succeed ()
                | Ok { Queue.data = None; _ } ->
                    succeed ();
                    Proc.sleep sim (Sim_time.ms 60)
                | Error e ->
                    classify e ~on_maybe:(fun () -> incr maybe_removes));
                Proc.sleep sim (Sim_time.ms 30);
                loop ()
              end
            in
            loop ());
        (* the autoscaling driver: 3 -> 4 -> 5 -> 4 -> 3 *)
        Proc.spawn sim (fun () ->
            try
              let grow ~cut_bootstrap ~timeout =
                let t0 = Sim.now sim in
                reconfig_marks := t0 :: !reconfig_marks;
                match sys.Systems.add_replica () with
                | Error e ->
                    invariant (Printf.sprintf "add_replica accepted (%s)" e)
                      false
                | Ok lid ->
                    if cut_bootstrap then
                      Proc.spawn sim (fun () ->
                          (* isolate the learner once its chunked bootstrap
                             is demonstrably in flight; on heal the
                             transfer must resume from chunk > 0 *)
                          let tgt = sys.Systems.nemesis_target () in
                          let peers =
                            List.filter (fun n -> n <> lid)
                              (sys.Systems.members ())
                          in
                          if
                            wait_until ~poll:(Sim_time.ms 2)
                              ~timeout:(Sim_time.sec 4) (fun () ->
                                (sys.Systems.snapshot_stats ())
                                  .Systems.ss_chunks_sent >= 3)
                          then begin
                            List.iter (fun o -> tgt.Nemesis.cut lid o) peers;
                            Proc.sleep sim (Sim_time.ms 400);
                            List.iter (fun o -> tgt.Nemesis.heal lid o) peers
                          end);
                    let n = List.length (sys.Systems.members ()) + 1 in
                    if wait_until ~timeout (stable_members n) then
                      grow_ms :=
                        Sim_time.to_float_ms (Sim_time.sub (Sim.now sim) t0)
                        :: !grow_ms
                    else
                      invariant
                        (Printf.sprintf "grow to %d members completed" n)
                        false
              in
              let shrink ~id ~timeout =
                let t0 = Sim.now sim in
                reconfig_marks := t0 :: !reconfig_marks;
                let accept_deadline =
                  Sim_time.add (Sim.now sim) (Sim_time.sec 6)
                in
                let rec request () =
                  match sys.Systems.remove_replica id with
                  | Ok () -> true
                  | Error _ ->
                      if Sim_time.(accept_deadline <= Sim.now sim) then false
                      else begin
                        Proc.sleep sim (Sim_time.ms 100);
                        request ()
                      end
                in
                if not (request ()) then
                  invariant
                    (Printf.sprintf "remove_replica %d accepted" id)
                    false
                else
                  let n = List.length (sys.Systems.members ()) - 1 in
                  if
                    wait_until ~timeout (fun () ->
                        stable_members n ()
                        && not (List.mem id (sys.Systems.members ())))
                  then
                    shrink_ms :=
                      Sim_time.to_float_ms (Sim_time.sub (Sim.now sim) t0)
                      :: !shrink_ms
                  else
                    invariant
                      (Printf.sprintf "shrink past replica %d completed" id)
                      false
              in
              Proc.sleep sim (Sim_time.sec 4);
              (* join 1: clean of scheduled chaos (the nemesis arms at
                 t=8s), but the learner's links are cut mid-bootstrap *)
              grow ~cut_bootstrap:true ~timeout:(Sim_time.sec 8);
              (* join 2 lands inside the nemesis window: the leader dies
                 within 120 ms of the change getting underway *)
              Proc.sleep sim (Sim_time.sec 4);
              grow ~cut_bootstrap:false ~timeout:(Sim_time.sec 10);
              Proc.sleep sim (Sim_time.ms 500);
              (* scale back down under the same fire *)
              shrink ~id:4 ~timeout:(Sim_time.sec 10);
              shrink ~id:3 ~timeout:(Sim_time.sec 10)
            with e -> failure := Some e)
      with e -> failure := Some e);
  Sim.run ~until:verify_at sim;
  (match !failure with Some e -> raise e | None -> ());
  (* final state through a fresh resilient client (fenced replicas must
     refuse it, so it lands on a live member) *)
  let final_counter = ref 0 in
  let remaining = ref [] in
  Proc.spawn sim (fun () ->
      try
        let api = maybe_wrap (fst (sys.Systems.new_resilient_api ())) in
        (match api.Api.read ~oid:Counter.counter_oid with
        | Ok (Some o) -> final_counter := int_of_string o.Api.data
        | Ok None -> failwith "counter object vanished"
        | Error e -> failwith ("final counter read: " ^ e));
        match api.Api.sub_objects ~oid:Queue.root with
        | Ok objs ->
            remaining := List.map (fun (o : Api.obj) -> o.Api.data) objs
        | Error e -> failwith ("final queue read: " ^ e)
      with e -> failure := Some e);
  Sim.run ~until:(Sim_time.add verify_at (Sim_time.sec 10)) sim;
  (match !failure with Some e -> raise e | None -> ());
  let nem = Option.get !nemesis in
  let anomalies = sys.Systems.anomalies () in
  let snap = sys.Systems.snapshot_stats () in
  let reconfig = reconfig_summary_of_stats (sys.Systems.reconfig_stats ()) in
  (* safety invariants: exactly the chaos ones, plus the membership
     life-cycle outcomes *)
  invariant "replication anomalies = 0" (anomalies = 0);
  invariant "counter >= confirmed increments" (!final_counter >= !confirmed_incr);
  invariant "counter <= confirmed + ambiguous increments"
    (!final_counter <= !confirmed_incr + !maybe_incr);
  let sorted_consumed = List.sort compare !consumed in
  let rec has_dup = function
    | a :: (b :: _ as rest) -> a = b || has_dup rest
    | _ -> false
  in
  invariant "no queue element consumed twice" (not (has_dup sorted_consumed));
  invariant "consumed elements were added"
    (List.for_all
       (fun d -> Hashtbl.mem confirmed_adds d || Hashtbl.mem maybe_adds d)
       !consumed);
  let consumed_set : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun d -> Hashtbl.replace consumed_set d ()) !consumed;
  let remaining_set : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun d -> Hashtbl.replace remaining_set d ()) !remaining;
  let missing =
    Hashtbl.fold
      (fun eid () acc ->
        if Hashtbl.mem consumed_set eid || Hashtbl.mem remaining_set eid then
          acc
        else acc + 1)
      confirmed_adds 0
  in
  invariant "lost queue elements covered by ambiguous removes"
    (missing <= !maybe_removes);
  let members_final = sys.Systems.members () in
  invariant "membership returned to the original three"
    (members_final = [ 0; 1; 2 ]);
  invariant "both joins completed" (reconfig.rs_joins_completed >= 2);
  invariant "both leaves completed" (reconfig.rs_leaves_completed >= 2);
  invariant "interrupted learner bootstrap resumed from chunk > 0"
    (snap.Systems.ss_last_resume_from > 0);
  (* throughput: 500 ms buckets; steady state = the pre-reconfiguration
     plateau; recovery = time from each reconfiguration event until a
     bucket is back to >= 90% of steady *)
  let bucket = 0.5 in
  let n_buckets =
    int_of_float (ceil (Sim_time.to_float_s ops_end /. bucket))
  in
  let rates = Array.make (Stdlib.max n_buckets 1) 0. in
  List.iter
    (fun ts ->
      let i = int_of_float (Sim_time.to_float_s ts /. bucket) in
      if i >= 0 && i < Array.length rates then
        rates.(i) <- rates.(i) +. (1. /. bucket))
    !success_times;
  let mean_over lo hi =
    let sum = ref 0. and n = ref 0 in
    Array.iteri
      (fun i r ->
        let start = float_of_int i *. bucket in
        if start >= lo && start < hi then begin
          sum := !sum +. r;
          incr n
        end)
      rates;
    if !n = 0 then 0. else !sum /. float_of_int !n
  in
  let steady = mean_over 1.0 4.0 in
  let events =
    List.rev_map Sim_time.to_float_s !reconfig_marks
    @ List.filter_map
        (fun { Nemesis.at; fault } ->
          match fault with
          | Nemesis.Reconfig_fault _ -> Some (Sim_time.to_float_s at)
          | _ -> None)
        (Nemesis.trace nem)
  in
  let recovery_s = ref [] and unrecovered = ref 0 in
  List.iter
    (fun te ->
      let rec scan i =
        if i >= Array.length rates then incr unrecovered
        else
          let start = float_of_int i *. bucket in
          if start +. bucket <= te then scan (i + 1)
          else if rates.(i) >= 0.9 *. steady then
            recovery_s := Float.max 0. (start +. bucket -. te) :: !recovery_s
          else scan (i + 1)
      in
      scan 0)
    events;
  let trough =
    let m = ref infinity in
    Array.iteri
      (fun i r ->
        let start = float_of_int i *. bucket in
        if start >= 4.0 && start +. bucket <= Sim_time.to_float_s ops_end then
          m := Float.min !m r)
      rates;
    if !m = infinity then 0. else !m
  in
  let errors =
    Hashtbl.fold (fun e n acc -> (e, n) :: acc) taxonomy []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let lin =
    if not check then []
    else
      Ck_history.entries history
      |> Ck_history.split
      |> List.filter_map (fun (obj, es) ->
             Ck_model.for_object obj
             |> Option.map (fun m ->
                    (obj, Ck_wgl.check ?max_steps:lin_max_steps m es)))
  in
  {
    mp_kind = kind;
    mp_seed = seed;
    mp_ops_ok = !ok;
    mp_ops_maybe = !maybe;
    mp_ops_failed = !failed;
    mp_errors = errors;
    mp_members_final = members_final;
    mp_grow_ms = List.rev !grow_ms;
    mp_shrink_ms = List.rev !shrink_ms;
    mp_reconfig = reconfig;
    mp_reconfig_kills = Nemesis.reconfig_kills nem;
    mp_crashes = Nemesis.crashes nem;
    mp_leader_kills = Nemesis.leader_kills nem;
    mp_steady_ops_s = steady;
    mp_trough_ops_s = trough;
    mp_recovery_s = List.rev !recovery_s;
    mp_unrecovered = !unrecovered;
    mp_counter_confirmed = !confirmed_incr;
    mp_counter_maybe = !maybe_incr;
    mp_counter_final = !final_counter;
    mp_anomalies = anomalies;
    mp_invariant_failures = List.rev !invariant_failures;
    mp_lin = lin;
    mp_history_events = Ck_history.n_events history;
    mp_trace = Nemesis.trace_to_string nem;
    mp_snap = snap;
  }

(* ------------------------------------------------------------------ *)
(* §6i: the scale-free read path — observer scaling, lease economics,  *)
(* and the stale-read detector self-test                               *)
(* ------------------------------------------------------------------ *)

module Zk = Edc_zookeeper
module Ck_freshness = Edc_checker.Freshness

type read_scaling_point = {
  rp_observers : int;
  rp_clients : int;
  rp_reads : int;  (** completed inside the measure window *)
  rp_throughput : float;  (** reads per second *)
  rp_mean_ms : float;
  rp_p99_ms : float;
  rp_observer_reads : int;  (** reads served by observer replicas *)
  rp_invariant_failures : string list;
}

(** Read throughput of a fixed 3-voter ensemble as permanent observers
    are attached.  [read_cost] is raised well above the LAN round trip so
    the replicas' serial read CPU — the resource observers multiply — is
    the bottleneck; clients are allocated after the observers bootstrap
    and round-robin across the whole deployment.  Write quorums, election
    quorums and lease quorums stay at 2-of-3 throughout: the observers
    only widen the read plane. *)
let read_scaling_point ?(seed = 42) ?net_config ?(read_cost = Sim_time.us 200)
    ~warmup ~measure ~observers n_clients =
  let sim = Sim.create ~seed () in
  let server_config = { Zk.Server.default_config with Zk.Server.read_cost } in
  let cluster =
    Zk.Cluster.create ~n_replicas:3 ?net_config ~server_config sim
  in
  let reads = ref 0 in
  let lat = Stats.Series.create () in
  let invariant_failures = ref [] in
  let invariant name cond =
    if not cond then invariant_failures := name :: !invariant_failures
  in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try
        let admin = Zk.Cluster.connected_client ~replica:0 cluster () in
        (match Zk.Client.create_node admin "/obj" (String.make 64 'x') with
        | Ok _ -> ()
        | Error e -> failwith ("setup: " ^ Zk.Zerror.to_string e));
        let obs_ids =
          List.init observers (fun _ -> Zk.Cluster.add_observer cluster)
        in
        (* let the chunked bootstraps land before attaching load *)
        Proc.sleep sim (Sim_time.ms 800);
        let servers = Zk.Cluster.servers cluster in
        List.iter
          (fun oid ->
            invariant
              (Printf.sprintf "observer %d applied the commit stream" oid)
              (Zk.Server.txns_applied servers.(oid) > 0))
          obs_ids;
        let window_start = Sim_time.add (Sim.now sim) warmup in
        let window_end = Sim_time.add window_start measure in
        for _ = 1 to n_clients do
          Proc.spawn sim (fun () ->
              let c = Zk.Cluster.connected_client cluster () in
              let rec loop () =
                if Sim_time.(Sim.now sim < window_end) then begin
                  let t0 = Sim.now sim in
                  (match Zk.Client.get_data c "/obj" with
                  | Ok _ ->
                      let t1 = Sim.now sim in
                      if
                        Sim_time.(window_start <= t0)
                        && Sim_time.(t1 <= window_end)
                      then begin
                        incr reads;
                        Stats.Series.add lat
                          (Sim_time.to_float_ms (Sim_time.sub t1 t0))
                      end
                  | Error _ -> ());
                  loop ()
                end
              in
              loop ())
        done
      with e -> failure := Some e);
  Sim.run
    ~until:(Sim_time.add (Sim_time.add warmup measure) (Sim_time.sec 3))
    sim;
  (match !failure with Some e -> raise e | None -> ());
  let servers = Zk.Cluster.servers cluster in
  let obs_reads = ref 0 in
  Array.iteri
    (fun i s ->
      if i >= 3 then begin
        obs_reads := !obs_reads + Zk.Server.reads_served s;
        let z = Zk.Server.zab s in
        invariant
          (Printf.sprintf "observer %d is marked observer" i)
          (Edc_replication.Zab.is_observer z);
        invariant
          (Printf.sprintf "observer %d stayed out of the voter set" i)
          (not (List.mem i (Edc_replication.Zab.members z)));
        invariant
          (Printf.sprintf "observer %d never led" i)
          (not (Zk.Server.is_leader s));
        invariant
          (Printf.sprintf "observer %d served reads" i)
          (Zk.Server.reads_served s > 0)
      end)
    servers;
  {
    rp_observers = observers;
    rp_clients = n_clients;
    rp_reads = !reads;
    rp_throughput = float_of_int !reads /. Sim_time.to_float_s measure;
    rp_mean_ms = Stats.Series.mean lat;
    rp_p99_ms = Stats.Series.p99 lat;
    rp_observer_reads = !obs_reads;
    rp_invariant_failures = List.rev !invariant_failures;
  }

type lease_cost_point = {
  lc_leases : bool;
  lc_reads : int;  (** leader-accounted linearizable reads in the window *)
  lc_lease_reads : int;  (** of which lease-served (window delta) *)
  lc_quorum_reads : int;  (** of which commit-path fallbacks *)
  lc_mean_ms : float;
  lc_p99_ms : float;
  lc_bytes_per_read : float;
      (** server-to-server coordination bytes per linearizable read
          (proposals, acks, commits, heartbeats, lease grants): the cost
          the lease removes.  Client request/response bytes are excluded
          — identical in both modes. *)
  lc_invariant_failures : string list;
}

(** The economics of the lease fast path: the same linearizable-read
    workload with leases on (every read served locally at the leader under
    a majority lease) versus off ([lease_duration = 0], so every read is
    ordered through the commit path as a quiet no-op).  Compared on
    coordination bytes per read and latency. *)
let lease_cost_point ?(seed = 42) ?net_config ~warmup ~measure ~leases () =
  let sim = Sim.create ~seed () in
  let server_config =
    { Zk.Server.default_config with Zk.Server.linearizable_reads = true }
  in
  let zab_config =
    if leases then Edc_replication.Zab.default_config
    else
      {
        Edc_replication.Zab.default_config with
        Edc_replication.Zab.lease_duration = Sim_time.zero;
      }
  in
  let cluster =
    Zk.Cluster.create ~n_replicas:3 ?net_config ~server_config ~zab_config sim
  in
  let net = Zk.Cluster.net cluster in
  (* Server-to-server bytes only: everything servers received minus what
     clients sent (clients only ever address servers), leaving proposals,
     acks, commits, heartbeats and lease grants — the coordination plane.
     Client requests and responses are identical in both modes and would
     dilute the comparison. *)
  let server_bytes () =
    let sent =
      Net.bytes_sent_by net 0 + Net.bytes_sent_by net 1
      + Net.bytes_sent_by net 2
    and recv =
      Net.bytes_received_by net 0 + Net.bytes_received_by net 1
      + Net.bytes_received_by net 2
    in
    recv - (Net.total_bytes_sent net - sent)
  in
  let lease_quorum () =
    Array.fold_left
      (fun (l, q) s -> (l + Zk.Server.lease_reads s, q + Zk.Server.quorum_reads s))
      (0, 0) (Zk.Cluster.servers cluster)
  in
  let lat = Stats.Series.create () in
  let marks = ref None in  (* (bytes0, lease0, quorum0, bytes1, lease1, quorum1) *)
  let invariant_failures = ref [] in
  let invariant name cond =
    if not cond then invariant_failures := name :: !invariant_failures
  in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try
        let admin = Zk.Cluster.connected_client ~replica:0 cluster () in
        (match Zk.Client.create_node admin "/obj" (String.make 64 'x') with
        | Ok _ -> ()
        | Error e -> failwith ("setup: " ^ Zk.Zerror.to_string e));
        let window_start = Sim_time.add (Sim.now sim) warmup in
        let window_end = Sim_time.add window_start measure in
        (* bracket the window with byte/counter snapshots *)
        Proc.spawn sim (fun () ->
            Proc.sleep sim (Sim_time.sub window_start (Sim.now sim));
            let b0 = server_bytes () and l0, q0 = lease_quorum () in
            Proc.sleep sim measure;
            let b1 = server_bytes () and l1, q1 = lease_quorum () in
            marks := Some (b0, l0, q0, b1, l1, q1));
        for _ = 1 to 4 do
          Proc.spawn sim (fun () ->
              let c = Zk.Cluster.connected_client cluster () in
              let rec loop () =
                if Sim_time.(Sim.now sim < window_end) then begin
                  let t0 = Sim.now sim in
                  (match Zk.Client.get_data c "/obj" with
                  | Ok _ ->
                      let t1 = Sim.now sim in
                      if
                        Sim_time.(window_start <= t0)
                        && Sim_time.(t1 <= window_end)
                      then
                        Stats.Series.add lat
                          (Sim_time.to_float_ms (Sim_time.sub t1 t0))
                  | Error _ -> ());
                  loop ()
                end
              in
              loop ())
        done
      with e -> failure := Some e);
  Sim.run
    ~until:(Sim_time.add (Sim_time.add warmup measure) (Sim_time.sec 3))
    sim;
  (match !failure with Some e -> raise e | None -> ());
  let b0, l0, q0, b1, l1, q1 =
    match !marks with Some m -> m | None -> failwith "window never closed"
  in
  let lease_reads = l1 - l0 and quorum_reads = q1 - q0 in
  let reads = lease_reads + quorum_reads in
  if leases then begin
    invariant "lease mode: reads were lease-served" (lease_reads > 0);
    invariant "lease mode: no read fell back to the commit path"
      (quorum_reads = 0)
  end
  else begin
    invariant "quorum mode: reads took the commit path" (quorum_reads > 0);
    invariant "quorum mode: no lease read possible" (lease_reads = 0)
  end;
  {
    lc_leases = leases;
    lc_reads = reads;
    lc_lease_reads = lease_reads;
    lc_quorum_reads = quorum_reads;
    lc_mean_ms = Stats.Series.mean lat;
    lc_p99_ms = Stats.Series.p99 lat;
    lc_bytes_per_read =
      (if reads = 0 then 0. else float_of_int (b1 - b0) /. float_of_int reads);
    lc_invariant_failures = List.rev !invariant_failures;
  }

type stale_read_point = {
  sr_seed : int;
  sr_unsafe : bool;
  sr_violations : int;  (** real-time freshness convictions *)
  sr_witnesses : string list;  (** first few, pretty-printed *)
  sr_reads_ok : int;
  sr_reads_refused : int;
      (** reads the deposed leader refused (timed out on the dead commit
          path) instead of serving stale *)
  sr_writes_ok : int;
  sr_clock_skews : int;
  sr_partitions : int;
  sr_lease_reads : int;  (** lease-served reads at the initial leader *)
  sr_trace : string;
}

(** The stale-read detector's conviction scenario (§6i): a reader pinned
    to the initial leader while a clock-skew + partition nemesis isolates
    that leader mid-lease and a writer fails over to the new majority's
    leader.  With the safe default the deposed leader's lease expires
    (2ε early) before the new leader can commit anything, so post-expiry
    reads are refused — they fall back to a commit path that cannot
    commit — and {!Edc_checker.Freshness.check_realtime} finds nothing.
    With [unsafe:true] ([unsafe_ignore_lease_expiry]) the deposed leader
    keeps serving its stale tree and the detector must convict. *)
let stale_read_point ?(seed = 42) ?net_config ~unsafe () =
  let sim = Sim.create ~seed () in
  let server_config =
    { Zk.Server.default_config with Zk.Server.linearizable_reads = true }
  in
  let zab_config =
    {
      Edc_replication.Zab.default_config with
      Edc_replication.Zab.unsafe_ignore_lease_expiry = unsafe;
    }
  in
  let cluster =
    Zk.Cluster.create ~n_replicas:3 ?net_config ~server_config ~zab_config sim
  in
  let net = Zk.Cluster.net cluster in
  let servers () = Zk.Cluster.servers cluster in
  let target =
    {
      Nemesis.name = "zookeeper";
      nodes = [ 0; 1; 2 ];
      leader =
        (fun () ->
          let ss = servers () in
          let rec find i =
            if i >= Array.length ss then None
            else if Zk.Server.is_leader ss.(i) then Some i
            else find (i + 1)
          in
          find 0);
      crash = Zk.Cluster.crash_server cluster;
      restart = Zk.Cluster.restart_server cluster;
      cut = Net.cut_link net;
      heal = Net.heal_link net;
      cut_one_way = (fun ~src ~dst -> Net.cut_link_one_way net ~src ~dst);
      heal_one_way = (fun ~src ~dst -> Net.heal_link_one_way net ~src ~dst);
      silence = Net.set_node_down net;
      unsilence = Net.set_node_up net;
      reconfig_in_flight = (fun () -> false);
      set_skew =
        (fun node skew ->
          let ss = servers () in
          if node < Array.length ss then
            Edc_replication.Zab.set_clock_skew (Zk.Server.zab ss.(node)) skew);
    }
  in
  (* drifts stay inside the protocol's ±ε bound (10 ms): the safe run must
     survive them, which is exactly the 2ε margin's job *)
  let schedule =
    [
      {
        Nemesis.start = Sim_time.ms 200;
        period = Some (Sim_time.ms 900);
        action =
          Nemesis.Clock_skew
            {
              duration = Sim_time.ms 250;
              victim = Nemesis.Any_replica;
              skew = Sim_time.ms 8;
            };
      };
      {
        Nemesis.start = Sim_time.ms 650;
        period = Some (Sim_time.ms 900);
        action =
          Nemesis.Clock_skew
            {
              duration = Sim_time.ms 250;
              victim = Nemesis.Any_replica;
              skew = Sim_time.ms (-8);
            };
      };
      (* the kill shot: isolate the initial leader mid-lease *)
      {
        Nemesis.start = Sim_time.sec 1;
        period = None;
        action =
          Nemesis.Isolate
            {
              duration = Sim_time.sec 4;
              victim = Nemesis.Node 0;
              asymmetric = false;
            };
      };
    ]
  in
  let history = Ck_history.create ~sim () in
  let ops_end = Sim_time.sec 6 in
  let reads_ok = ref 0 and reads_refused = ref 0 and writes_ok = ref 0 in
  let nemesis = ref None in
  let failure = ref None in
  Proc.spawn sim (fun () ->
      try
        let admin = Zk.Cluster.connected_client ~replica:1 cluster () in
        (match Zk.Client.create_node admin "/ctr" "0" with
        | Ok _ -> ()
        | Error e -> failwith ("setup: " ^ Zk.Zerror.to_string e));
        nemesis :=
          Some (Nemesis.start ~sim ~target ~horizon:ops_end schedule);
        (* reader pinned to the initial leader; a short timeout so refused
           lease reads surface as errors rather than stalls *)
        Proc.spawn sim (fun () ->
            let c =
              Zk.Cluster.connected_client
                ~config:
                  {
                    Zk.Client.request_timeout = Sim_time.ms 300;
                    ping_interval = Sim_time.ms 500;
                  }
                ~replica:0 cluster ()
            in
            let rec loop () =
              if Sim_time.(Sim.now sim < ops_end) then begin
                let id =
                  Ck_history.invoke history ~client:0 Ck_history.Ctr_read
                in
                (match Zk.Client.get_data c "/ctr" with
                | Ok (data, stat) ->
                    incr reads_ok;
                    Ck_history.ok history id
                      (Ck_history.R_obj
                         { data; version = stat.Zk.Znode.version })
                | Error e ->
                    incr reads_refused;
                    Ck_history.fail history id (Zk.Zerror.to_string e));
                Proc.sleep sim (Sim_time.ms 25);
                loop ()
              end
            in
            loop ());
        (* writer on a resilient session over the survivors: after the
           partition it lands on the new majority's leader *)
        Proc.spawn sim (fun () ->
            let c =
              Zk.Cluster.connected_client
                ~config:
                  {
                    Zk.Client.request_timeout = Sim_time.ms 500;
                    ping_interval = Sim_time.ms 500;
                  }
                ~replica:1 cluster ()
            in
            let s = Zk.Session.wrap ~sim ~replicas:[ 1; 2 ] c in
            let i = ref 0 in
            let rec loop () =
              if Sim_time.(Sim.now sim < ops_end) then begin
                incr i;
                let v = !i in
                let id = Ck_history.invoke history ~client:1 Ck_history.Incr in
                (match
                   Zk.Session.call s
                     ~op:(Zk.Session.Write { idempotent = true })
                     (fun c -> Zk.Client.set_data c "/ctr" (string_of_int v))
                 with
                | Ok _ ->
                    incr writes_ok;
                    Ck_history.ok history id (Ck_history.R_int v)
                | Error e ->
                    Ck_history.fail history id (Zk.Zerror.to_string e));
                Proc.sleep sim (Sim_time.ms 40);
                loop ()
              end
            in
            loop ())
      with e -> failure := Some e);
  Sim.run ~until:(Sim_time.add ops_end (Sim_time.sec 3)) sim;
  (match !failure with Some e -> raise e | None -> ());
  let nem = Option.get !nemesis in
  let violations = Ck_freshness.check_realtime (Ck_history.entries history) in
  {
    sr_seed = seed;
    sr_unsafe = unsafe;
    sr_violations = List.length violations;
    sr_witnesses =
      List.filteri (fun i _ -> i < 3) violations
      |> List.map (fun v -> Fmt.str "%a" Ck_freshness.pp_violation v);
    sr_reads_ok = !reads_ok;
    sr_reads_refused = !reads_refused;
    sr_writes_ok = !writes_ok;
    sr_clock_skews = Nemesis.clock_skews nem;
    sr_partitions = Nemesis.partitions nem;
    sr_lease_reads = Zk.Server.lease_reads (Zk.Cluster.servers cluster).(0);
    sr_trace = Nemesis.trace_to_string nem;
  }
