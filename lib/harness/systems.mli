(** Uniform construction of the four evaluated deployments (§6): ZooKeeper,
    EZK, DepSpace, EDS — each configured to tolerate one fault (three
    replicas crash-tolerant, four BFT). *)

open Edc_simnet
open Edc_recipes

type kind = Zookeeper | Ezk | Depspace | Eds

(** Snapshot-pipeline counters summed over the deployment's replicas
    (all-zero for the BFT deployments, which do not run the Zab chunked
    state transfer). *)
type snapshot_stats = {
  ss_captures : int;  (** O(1) copy-on-write captures *)
  ss_serializations : int;  (** captures actually marshaled for a transfer *)
  ss_skipped : int;  (** interval fired but log already compacted *)
  ss_installs : int;  (** complete blobs imported atomically *)
  ss_chunks_sent : int;
  ss_chunk_retx : int;
  ss_bytes_streamed : int;
  ss_transfers_started : int;
  ss_transfers_completed : int;
  ss_resumes : int;  (** transfers continued after a stall/leader change *)
  ss_last_resume_from : int;
      (** chunk index the latest resume restarted from, maxed over
          replicas ([> 0] proves a resumed transfer kept its prefix) *)
}

val snapshot_stats_zero : snapshot_stats

(** Serializer-work counters summed over the deployment's replicas:
    [ws_encodes] counts distinct frames handed to the transport (one
    serialization each on an encoding transport — an encode-once broadcast
    counts once regardless of fan-out); [ws_sends] counts per-destination
    deliveries.  Their gap is the work the encode-once broadcast saves.
    All-zero for the BFT deployments. *)
type wire_stats = { ws_encodes : int; ws_sends : int }

val wire_stats_zero : wire_stats

val kind_name : kind -> string
val is_extensible : kind -> bool

(** All four, in the paper's presentation order. *)
val all : kind list

type t = {
  sim : Sim.t;
  kind : kind;
  new_api : unit -> Coord_api.t * int;
      (** fresh connected client (call from a fiber): the abstract API plus
          the client's network address for byte accounting *)
  new_resilient_api : unit -> Coord_api.t * int;
      (** like [new_api], but routed through the resilient session layer
          (deadlines, backoff, replica failover, safe resubmission) with
          client timeouts tightened for fault-heavy runs *)
  bytes_sent_by : int -> int;
  total_bytes : unit -> int;
  crash_replica : int -> unit;
  restart_replica : int -> unit;
  nemesis_target : unit -> Nemesis.target;
      (** adapter handing the deployment's replicas, leader probe and
          network knobs to the {!Edc_simnet.Nemesis} fault injector *)
  dropped_messages : unit -> int;
      (** messages discarded so far by the simulated network (down nodes,
          cut links, loss) *)
  n_replicas : int;
  anomalies : unit -> int;
      (** replication-safety violations detected by the state machines
          (must stay 0 in every run) *)
  snapshot_stats : unit -> snapshot_stats;
      (** snapshot/state-transfer counters summed over replicas *)
  wire_stats : unit -> wire_stats;
      (** serializer-work counters summed over replicas *)
  add_replica : unit -> (int, string) result;
      (** elastic growth: boot a non-voting learner that the leader
          bootstraps (snapshot + log sync) and admits through the
          joint-consensus log path; returns the new replica id.  [Error]
          for the static BFT deployments. *)
  add_observer : unit -> (int, string) result;
      (** attach a permanent non-voting observer replica: bootstrapped by
          the chunked snapshot transfer like a learner, it consumes the
          commit stream and serves sequentially-consistent reads but never
          votes, campaigns, or counts toward any quorum.  [Error] for the
          static BFT deployments. *)
  remove_replica : int -> (unit, string) result;
      (** ask the leader to remove a replica through the log; the replica
          is fenced once the final config commits *)
  members : unit -> int list;
      (** current voter set (the leader's view when one exists) *)
  reconfig_in_flight : unit -> bool;
  reconfig_stats : unit -> Edc_replication.Zab.reconfig_stats;
      (** cluster-wide aggregation: leader-side counters (adoptions,
          proposals, removals, catch-up times) summed; commit-side
          counters maxed (each committed config entry is counted by every
          live replica) *)
}

(** [make ?net_config ?batch ?zab_config kind sim] — [batch] configures
    replication group commit uniformly across deployments
    ({!Edc_replication.Batching.off} when omitted).  [zab_config] applies
    to the Zab-replicated deployments only (ZooKeeper/EZK; ignored for
    the BFT ones) — the linearizability mutation self-test uses it to
    re-enable a known-bad protocol behaviour.  [server_config] likewise
    reaches only ZooKeeper/EZK (e.g. to tighten [snapshot_interval] so a
    run exercises the chunked state transfer). *)
val make :
  ?net_config:Net.config ->
  ?batch:Edc_replication.Batching.config ->
  ?zab_config:Edc_replication.Zab.config ->
  ?server_config:Edc_zookeeper.Server.config ->
  kind ->
  Sim.t ->
  t
