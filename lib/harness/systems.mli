(** Uniform construction of the four evaluated deployments (§6): ZooKeeper,
    EZK, DepSpace, EDS — each configured to tolerate one fault (three
    replicas crash-tolerant, four BFT). *)

open Edc_simnet
open Edc_recipes

type kind = Zookeeper | Ezk | Depspace | Eds

val kind_name : kind -> string
val is_extensible : kind -> bool

(** All four, in the paper's presentation order. *)
val all : kind list

type t = {
  sim : Sim.t;
  kind : kind;
  new_api : unit -> Coord_api.t * int;
      (** fresh connected client (call from a fiber): the abstract API plus
          the client's network address for byte accounting *)
  new_resilient_api : unit -> Coord_api.t * int;
      (** like [new_api], but routed through the resilient session layer
          (deadlines, backoff, replica failover, safe resubmission) with
          client timeouts tightened for fault-heavy runs *)
  bytes_sent_by : int -> int;
  total_bytes : unit -> int;
  crash_replica : int -> unit;
  restart_replica : int -> unit;
  nemesis_target : unit -> Nemesis.target;
      (** adapter handing the deployment's replicas, leader probe and
          network knobs to the {!Edc_simnet.Nemesis} fault injector *)
  dropped_messages : unit -> int;
      (** messages discarded so far by the simulated network (down nodes,
          cut links, loss) *)
  n_replicas : int;
  anomalies : unit -> int;
      (** replication-safety violations detected by the state machines
          (must stay 0 in every run) *)
}

(** [make ?net_config ?batch ?zab_config kind sim] — [batch] configures
    replication group commit uniformly across deployments
    ({!Edc_replication.Batching.off} when omitted).  [zab_config] applies
    to the Zab-replicated deployments only (ZooKeeper/EZK; ignored for
    the BFT ones) — the linearizability mutation self-test uses it to
    re-enable a known-bad protocol behaviour. *)
val make :
  ?net_config:Net.config ->
  ?batch:Edc_replication.Batching.config ->
  ?zab_config:Edc_replication.Zab.config ->
  kind ->
  Sim.t ->
  t
