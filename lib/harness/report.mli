(** Paper-style text output: metric tables per figure plus the two static
    tables. *)

val hline : int -> unit
val section : string -> unit

(** Rows = client counts, columns = systems. *)
val metric_table :
  title:string ->
  unit:string ->
  clients:int list ->
  systems:Systems.kind list ->
  value:(Systems.kind -> int -> float) ->
  unit

(** Find a metric in a list of points ([nan] if absent). *)
val lookup :
  Experiment.point list ->
  Systems.kind ->
  int ->
  (Experiment.point -> float) ->
  float

(** Table 1 (static). *)
val table1 : unit -> unit

(** Table 2 (static; the mapping itself is exercised by the tests). *)
val table2 : unit -> unit

(** Run [point_fn] over the sweep with progress output. *)
val figure_points :
  title:string ->
  clients:int list ->
  systems:Systems.kind list ->
  point_fn:(Systems.kind -> int -> Experiment.point) ->
  Experiment.point list

val summarize_speedup :
  Experiment.point list ->
  clients:int ->
  base:Systems.kind ->
  ext:Systems.kind ->
  what:string ->
  unit

(** Availability under fault injection: one row per chaos run (success
    counts, success rate, drops, recovery times, invariant verdict). *)
val availability_table : Experiment.chaos_point list -> unit

(** Fault counts per run plus confirmed-vs-observed state recap. *)
val fault_summary : Experiment.chaos_point list -> unit

(** Snapshot/state-transfer activity per run (captures vs. forced
    serializations, chunk and resume counts); silent when no run saw any
    snapshot activity. *)
val snapshot_summary : Experiment.chaos_point list -> unit

(** Serializer-work table (frames encoded vs per-destination sends; their
    gap is the encode-once broadcast saving).  Skipped when no run
    recorded wire activity. *)
val wire_summary : Experiment.chaos_point list -> unit

(** Membership-change activity per chaos run (joins/leaves
    attempted/completed, joint vs final commits, aborts, fences, targeted
    leader kills, learner catch-up times); silent when no run
    reconfigured. *)
val reconfig_summary : Experiment.chaos_point list -> unit

(** One row per elastic-membership run: availability, final member set,
    steady vs trough throughput, recovery windows, bootstrap-resume proof
    and invariant verdict. *)
val membership_table : Experiment.membership_point list -> unit

(** The reconfiguration recap (same columns as {!reconfig_summary}) over
    membership runs. *)
val membership_reconfig_summary : Experiment.membership_point list -> unit

(** Print every broken membership invariant (silent when intact). *)
val membership_invariant_failures : Experiment.membership_point list -> unit

(** Aggregate non-ok outcome counts across runs, most frequent first. *)
val error_taxonomy : Experiment.chaos_point list -> unit

(** Print every broken invariant (silent when all runs are intact). *)
val invariant_failures : Experiment.chaos_point list -> unit

(** The timestamped fault schedule of one run (deterministic per seed). *)
val fault_trace : Experiment.chaos_point -> unit
