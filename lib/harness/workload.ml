(** Closed-loop stress workload, as in §6: each client continuously invokes
    the operation under test with at most one request pending at a time.
    Measurements are confined to a steady-state window after a warm-up
    phase; client byte counts are snapshotted at the window edges so the
    "data sent by client" metric matches the paper's per-operation cost. *)

open Edc_simnet
open Edc_recipes

type results = {
  ops : int;  (** operations completed inside the window *)
  errors : int;
  duration : Sim_time.t;
  throughput : float;  (** ops per second of simulated time *)
  mean_latency_ms : float;
  p99_latency_ms : float;
  client_bytes : int;  (** bytes sent by measured clients inside the window *)
  kb_per_op : float;
  attempts_per_op : float;  (** retry amplification (1.0 = no retries) *)
}

let pp_results ppf r =
  Fmt.pf ppf "%d ops, %.1f ops/s, %.3f ms avg, %.2f KB/op" r.ops r.throughput
    r.mean_latency_ms r.kb_per_op

type spec = {
  n_clients : int;
  warmup : Sim_time.t;
  measure : Sim_time.t;
  setup : Coord_api.t -> unit;
      (** run once by an admin client before the stress clients start *)
  prepare : Coord_api.t -> unit;  (** per-client setup (e.g. acknowledge) *)
  op : Coord_api.t -> (int, string) result;
      (** one closed-loop iteration; returns the number of attempts *)
  ops_per_iteration : int;
      (** operations completed per iteration (the queue workload pairs an
          add with a remove, §6.1.2) *)
}

(** [run ?wrap_api sys spec] drives the workload and returns windowed
    results.  [wrap_api] decorates each stress client's API before use —
    the hook the linearizability checker's {!Edc_checker.Instrument}
    plugs into (the admin client is not wrapped: setup precedes the
    recorded history).  Deterministic for a fixed simulator seed. *)
let run ?(wrap_api = fun api -> api) (sys : Systems.t) spec =
  let sim = sys.Systems.sim in
  let start = Sim.now sim in
  let window_start = Sim_time.add start spec.warmup in
  let window_end = Sim_time.add window_start spec.measure in
  let ops = ref 0 and errors = ref 0 and attempts = ref 0 in
  let latencies = Stats.Series.create () in
  let client_addrs = ref [] in
  let bytes_at_start = ref 0 in
  let bytes_at_end = ref 0 in
  let setup_done = Proc.promise sim in
  (* admin client performs the global setup *)
  Proc.spawn sim (fun () ->
      let api, _ = sys.Systems.new_api () in
      spec.setup api;
      Proc.fulfill setup_done ());
  (* snapshot byte counters at the window edges *)
  Sim.schedule_at sim ~at:window_start (fun () ->
      bytes_at_start :=
        List.fold_left (fun acc a -> acc + sys.Systems.bytes_sent_by a) 0 !client_addrs);
  Sim.schedule_at sim ~at:window_end (fun () ->
      bytes_at_end :=
        List.fold_left (fun acc a -> acc + sys.Systems.bytes_sent_by a) 0 !client_addrs);
  (* stress clients *)
  for _ = 1 to spec.n_clients do
    Proc.spawn sim (fun () ->
        Proc.await setup_done;
        let api, addr = sys.Systems.new_api () in
        let api = wrap_api api in
        client_addrs := addr :: !client_addrs;
        spec.prepare api;
        let rec loop () =
          if Sim_time.(Sim.now sim < window_end) then begin
            let t0 = Sim.now sim in
            let outcome = spec.op api in
            let t1 = Sim.now sim in
            (if Sim_time.(window_start <= t0) && Sim_time.(t1 <= window_end)
             then
               match outcome with
               | Ok n ->
                   ops := !ops + spec.ops_per_iteration;
                   attempts := !attempts + n;
                   Stats.Series.add latencies (Sim_time.to_float_ms (Sim_time.sub t1 t0))
               | Error _ -> incr errors);
            loop ()
          end
        in
        loop ())
  done;
  (* drain: run a little past the window so in-flight calls settle *)
  Sim.run ~until:(Sim_time.add window_end (Sim_time.sec 10)) sim;
  (* replication safety: the state machines must never have skipped an
     inconsistent apply *)
  (let a = sys.Systems.anomalies () in
   if a > 0 then failwith (Printf.sprintf "replication anomalies detected: %d" a));
  let client_bytes = !bytes_at_end - !bytes_at_start in
  {
    ops = !ops;
    errors = !errors;
    duration = spec.measure;
    throughput = float_of_int !ops /. Sim_time.to_float_s spec.measure;
    mean_latency_ms = Stats.Series.mean latencies;
    p99_latency_ms = Stats.Series.p99 latencies;
    client_bytes;
    kb_per_op =
      (if !ops = 0 then 0.0
       else float_of_int client_bytes /. 1024.0 /. float_of_int !ops);
    attempts_per_op =
      (if !ops = 0 then 0.0 else float_of_int !attempts /. float_of_int !ops);
  }
