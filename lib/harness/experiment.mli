(** The paper's evaluation experiments (§6): one function per figure, each
    running a fresh deterministic simulation per (system, client-count)
    point and returning what the figure plots. *)

open Edc_simnet

val default_client_counts : int list
val paired_client_counts : int list

type point = {
  kind : Systems.kind;
  clients : int;
  throughput : float;  (** ops per second *)
  latency_ms : float;
  p99_ms : float;
  kb_per_op : float;  (** client-transmitted data per completed op *)
  attempts : float;
  errors : int;
}

(** Figure 6: shared counter under contention.  [batch] configures
    replication group commit (off when omitted). *)
val counter_point :
  ?seed:int ->
  ?net_config:Net.config ->
  ?batch:Edc_replication.Batching.config ->
  warmup:Sim_time.t ->
  measure:Sim_time.t ->
  Systems.kind ->
  int ->
  point

(** Figure 8: distributed queue (add + remove per iteration). *)
val queue_point :
  ?seed:int ->
  ?net_config:Net.config ->
  ?batch:Edc_replication.Batching.config ->
  warmup:Sim_time.t ->
  measure:Sim_time.t ->
  Systems.kind ->
  int ->
  point

(** Figure 10: distributed barrier (round-based; [latency_ms] = avg per
    enter, [kb_per_op] over measured rounds). *)
val barrier_point :
  ?seed:int ->
  ?net_config:Net.config ->
  ?rounds:int ->
  ?warmup_rounds:int ->
  Systems.kind ->
  int ->
  point

(** Figure 12: leader election ([throughput] = leader changes/s,
    [latency_ms] = signaling latency). *)
val election_point :
  ?seed:int ->
  ?net_config:Net.config ->
  warmup:Sim_time.t ->
  measure:Sim_time.t ->
  Systems.kind ->
  int ->
  point

(** Figure 13: queue extension load vs regular clients. *)
type fig13_point = {
  f13_kind : Systems.kind;
  f13_queue_clients : int;
  f13_queue_throughput : float;
  f13_read_ms : float;
  f13_write_ms : float;
}

val fig13_point :
  ?seed:int ->
  ?net_config:Net.config ->
  warmup:Sim_time.t ->
  measure:Sim_time.t ->
  Systems.kind ->
  int ->
  fig13_point

(** §6.2: regular-operation latency with extensibility installed but not
    triggered. *)
type overhead_point = {
  oh_kind : Systems.kind;
  oh_read_ms : float;
  oh_write_ms : float;
}

val overhead_point :
  ?seed:int ->
  ?net_config:Net.config ->
  warmup:Sim_time.t ->
  measure:Sim_time.t ->
  Systems.kind ->
  overhead_point

(** Healthy-cluster linearizability of the blocking recipes, captured at
    recipe granularity: leadership acquire/release checked against the
    mutex sequential model, barrier rounds against the real-time gate
    property. *)
type lin_point = {
  lp_kind : Systems.kind;
  lp_seed : int;
  lp_events : int;
  lp_lock : Edc_checker.Wgl.verdict;
  lp_barrier : (unit, string) result;
}

val lin_recipes_point :
  ?seed:int ->
  ?contenders:int ->
  ?rounds:int ->
  ?barrier_clients:int ->
  ?barrier_rounds:int ->
  ?lin_max_steps:int ->
  Systems.kind ->
  lin_point

(** Membership-change outcomes aggregated over a run's replicas (see
    {!Systems.t.reconfig_stats} for the aggregation rules). *)
type reconfig_summary = {
  rs_joins_attempted : int;
  rs_joins_completed : int;
  rs_leaves_attempted : int;
  rs_leaves_completed : int;
  rs_joint_commits : int;  (** joint \{old ∪ new\} entries committed *)
  rs_finals_committed : int;  (** finalizing entries committed *)
  rs_aborted : int;  (** joint entries truncated by a new leader's sync *)
  rs_fenced : int;  (** fence notices sent to removed/stale replicas *)
  rs_catchup_ms : float list;  (** learner bootstrap-to-promotion times *)
}

val reconfig_summary_of_stats :
  Edc_replication.Zab.reconfig_stats -> reconfig_summary

(** Availability under fault injection: counter + queue recipes on
    resilient sessions while a {!Edc_simnet.Nemesis} runs [schedule] until
    [horizon]; final state is read back and checked against what clients
    were told (see the fault model in DESIGN.md). *)
type chaos_point = {
  ch_kind : Systems.kind;
  ch_seed : int;
  ch_ops_ok : int;
  ch_ops_maybe : int;  (** concluded [Maybe_applied] (ambiguous writes) *)
  ch_ops_failed : int;
  ch_success_rate : float;
  ch_errors : (string * int) list;  (** taxonomy of non-ok outcomes *)
  ch_counter_confirmed : int;
  ch_counter_maybe : int;
  ch_counter_final : int;
  ch_adds_confirmed : int;
  ch_adds_maybe : int;
  ch_consumed : int;
  ch_remaining : int;
  ch_removes_maybe : int;
  ch_crashes : int;
  ch_leader_kills : int;
  ch_partitions : int;
  ch_partitions_healed : int;
  ch_storms : int;
  ch_faults : int;
  ch_dropped : int;  (** messages discarded by the simulated network *)
  ch_recovery_ms : Stats.Series.t;
      (** per-disruption time to the next successful client operation *)
  ch_unrecovered : int;
  ch_anomalies : int;
  ch_invariant_failures : string list;  (** empty = all invariants intact *)
  ch_trace : string;  (** equal seeds produce equal traces *)
  ch_lin : (string * Edc_checker.Wgl.verdict) list;
      (** per-object linearizability verdicts over the history captured
          by {!Edc_checker.Instrument} (empty with [~check:false]): the
          recorded counter and queue operations, including the final
          state reads, must admit a legal sequential ordering *)
  ch_history_events : int;
  ch_snap : Systems.snapshot_stats;
      (** snapshot/state-transfer activity during the run (zeros for the
          BFT deployments) *)
  ch_wire : Systems.wire_stats;
      (** serializer work during the run: frames encoded vs per-destination
          sends — the gap is the encode-once broadcast saving (zeros for
          the BFT deployments) *)
  ch_reconfig : reconfig_summary;
      (** membership-change activity (all-zero unless the run reconfigures) *)
  ch_reconfig_kills : int;
      (** leader kills the nemesis timed against an in-flight reconfig *)
}

(** [check] (default [true]) wraps every chaos client in the
    history-capturing instrument and runs a WGL linearizability search
    per object after the run.  [zab_config] and [server_config] reach
    the Zab deployments only — the mutation self-test uses the former to
    re-enable a known-bad behaviour and assert the checker notices; the
    snapshot tests use the latter to tighten the snapshot interval so
    crash recovery goes through the chunked state transfer. *)
val chaos_point :
  ?seed:int ->
  ?net_config:Net.config ->
  ?zab_config:Edc_replication.Zab.config ->
  ?server_config:Edc_zookeeper.Server.config ->
  ?schedule:Nemesis.schedule ->
  ?horizon:Sim_time.t ->
  ?check:bool ->
  ?lin_max_steps:int ->
  Systems.kind ->
  chaos_point

(** Elastic membership under chaos: a 3-replica ensemble grows to 5 and
    shrinks back to 3 through the joint-consensus log path while clients
    drive a diurnal write curve.  The first joiner's links are cut while
    its chunked snapshot bootstrap is in flight (the transfer must resume
    from a nonzero chunk); from t=8s a reconfiguration-targeted nemesis
    kills the leader within 120 ms of any in-flight config change. *)
type membership_point = {
  mp_kind : Systems.kind;
  mp_seed : int;
  mp_ops_ok : int;
  mp_ops_maybe : int;
  mp_ops_failed : int;
  mp_errors : (string * int) list;
  mp_members_final : int list;
  mp_grow_ms : float list;
      (** add_replica call -> stable grown config, per join *)
  mp_shrink_ms : float list;  (** removal requested -> stable config *)
  mp_reconfig : reconfig_summary;
  mp_reconfig_kills : int;
  mp_crashes : int;
  mp_leader_kills : int;
  mp_steady_ops_s : float;  (** write throughput before any reconfig *)
  mp_trough_ops_s : float;  (** worst 500 ms bucket of the elastic phase *)
  mp_recovery_s : float list;
      (** per reconfiguration event: time until bucket throughput is back
          to >= 90% of steady state *)
  mp_unrecovered : int;
  mp_counter_confirmed : int;
  mp_counter_maybe : int;
  mp_counter_final : int;
  mp_anomalies : int;
  mp_invariant_failures : string list;  (** empty = all invariants intact *)
  mp_lin : (string * Edc_checker.Wgl.verdict) list;
      (** per-object WGL verdicts over the full history, which spans
          every configuration boundary *)
  mp_history_events : int;
  mp_trace : string;  (** equal seeds produce equal traces *)
  mp_snap : Systems.snapshot_stats;
}

(** Meaningful for the Zab deployments (ZooKeeper/EZK); the static BFT
    deployments fail the [add_replica accepted] invariant immediately. *)
val membership_point :
  ?seed:int ->
  ?net_config:Net.config ->
  ?check:bool ->
  ?lin_max_steps:int ->
  Systems.kind ->
  membership_point

(** {2 The scale-free read path (§6i)} *)

(** Observer scaling: read throughput of a fixed 3-voter ensemble with
    [observers] permanent non-voting replicas attached.  [read_cost]
    (default 200 µs) keeps the replicas' serial read CPU the bottleneck,
    so throughput should grow near-linearly with the number of
    read-serving replicas while every quorum stays 2-of-3. *)
type read_scaling_point = {
  rp_observers : int;
  rp_clients : int;
  rp_reads : int;  (** completed inside the measure window *)
  rp_throughput : float;  (** reads per second *)
  rp_mean_ms : float;
  rp_p99_ms : float;
  rp_observer_reads : int;  (** reads served by observer replicas *)
  rp_invariant_failures : string list;
      (** empty = every observer bootstrapped, applied the commit stream,
          served reads, and stayed out of the voter set *)
}

val read_scaling_point :
  ?seed:int ->
  ?net_config:Net.config ->
  ?read_cost:Sim_time.t ->
  warmup:Sim_time.t ->
  measure:Sim_time.t ->
  observers:int ->
  int ->
  read_scaling_point

(** Lease economics: the same linearizable-read workload with leases on
    (reads served locally at the leader under a majority lease) versus
    off (every read ordered through the commit path as a quiet no-op),
    compared on coordination bytes per read and latency. *)
type lease_cost_point = {
  lc_leases : bool;
  lc_reads : int;  (** leader-accounted linearizable reads in the window *)
  lc_lease_reads : int;
  lc_quorum_reads : int;
  lc_mean_ms : float;
  lc_p99_ms : float;
  lc_bytes_per_read : float;
      (** server-to-server coordination bytes per read (client
          request/response traffic excluded) *)
  lc_invariant_failures : string list;
}

val lease_cost_point :
  ?seed:int ->
  ?net_config:Net.config ->
  warmup:Sim_time.t ->
  measure:Sim_time.t ->
  leases:bool ->
  unit ->
  lease_cost_point

(** The stale-read detector's self-test scenario: a reader pinned to the
    initial leader while a clock-skew + partition nemesis isolates that
    leader mid-lease and a writer fails over to the new majority.  With
    the safe default, post-expiry reads at the deposed leader are refused
    and the detector must find nothing; with [unsafe:true]
    ([Zab.config.unsafe_ignore_lease_expiry]) the deposed leader keeps
    serving its stale tree and the detector must convict. *)
type stale_read_point = {
  sr_seed : int;
  sr_unsafe : bool;
  sr_violations : int;  (** real-time freshness convictions *)
  sr_witnesses : string list;  (** first few, pretty-printed *)
  sr_reads_ok : int;
  sr_reads_refused : int;
      (** reads the deposed leader refused instead of serving stale *)
  sr_writes_ok : int;
  sr_clock_skews : int;
  sr_partitions : int;
  sr_lease_reads : int;  (** lease-served reads at the initial leader *)
  sr_trace : string;  (** equal seeds produce equal traces *)
}

val stale_read_point :
  ?seed:int ->
  ?net_config:Net.config ->
  unsafe:bool ->
  unit ->
  stale_read_point
