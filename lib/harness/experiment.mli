(** The paper's evaluation experiments (§6): one function per figure, each
    running a fresh deterministic simulation per (system, client-count)
    point and returning what the figure plots. *)

open Edc_simnet

val default_client_counts : int list
val paired_client_counts : int list

type point = {
  kind : Systems.kind;
  clients : int;
  throughput : float;  (** ops per second *)
  latency_ms : float;
  p99_ms : float;
  kb_per_op : float;  (** client-transmitted data per completed op *)
  attempts : float;
  errors : int;
}

(** Figure 6: shared counter under contention.  [batch] configures
    replication group commit (off when omitted). *)
val counter_point :
  ?seed:int ->
  ?net_config:Net.config ->
  ?batch:Edc_replication.Batching.config ->
  warmup:Sim_time.t ->
  measure:Sim_time.t ->
  Systems.kind ->
  int ->
  point

(** Figure 8: distributed queue (add + remove per iteration). *)
val queue_point :
  ?seed:int ->
  ?net_config:Net.config ->
  ?batch:Edc_replication.Batching.config ->
  warmup:Sim_time.t ->
  measure:Sim_time.t ->
  Systems.kind ->
  int ->
  point

(** Figure 10: distributed barrier (round-based; [latency_ms] = avg per
    enter, [kb_per_op] over measured rounds). *)
val barrier_point :
  ?seed:int ->
  ?net_config:Net.config ->
  ?rounds:int ->
  ?warmup_rounds:int ->
  Systems.kind ->
  int ->
  point

(** Figure 12: leader election ([throughput] = leader changes/s,
    [latency_ms] = signaling latency). *)
val election_point :
  ?seed:int ->
  ?net_config:Net.config ->
  warmup:Sim_time.t ->
  measure:Sim_time.t ->
  Systems.kind ->
  int ->
  point

(** Figure 13: queue extension load vs regular clients. *)
type fig13_point = {
  f13_kind : Systems.kind;
  f13_queue_clients : int;
  f13_queue_throughput : float;
  f13_read_ms : float;
  f13_write_ms : float;
}

val fig13_point :
  ?seed:int ->
  ?net_config:Net.config ->
  warmup:Sim_time.t ->
  measure:Sim_time.t ->
  Systems.kind ->
  int ->
  fig13_point

(** §6.2: regular-operation latency with extensibility installed but not
    triggered. *)
type overhead_point = {
  oh_kind : Systems.kind;
  oh_read_ms : float;
  oh_write_ms : float;
}

val overhead_point :
  ?seed:int ->
  ?net_config:Net.config ->
  warmup:Sim_time.t ->
  measure:Sim_time.t ->
  Systems.kind ->
  overhead_point

(** Healthy-cluster linearizability of the blocking recipes, captured at
    recipe granularity: leadership acquire/release checked against the
    mutex sequential model, barrier rounds against the real-time gate
    property. *)
type lin_point = {
  lp_kind : Systems.kind;
  lp_seed : int;
  lp_events : int;
  lp_lock : Edc_checker.Wgl.verdict;
  lp_barrier : (unit, string) result;
}

val lin_recipes_point :
  ?seed:int ->
  ?contenders:int ->
  ?rounds:int ->
  ?barrier_clients:int ->
  ?barrier_rounds:int ->
  ?lin_max_steps:int ->
  Systems.kind ->
  lin_point

(** Availability under fault injection: counter + queue recipes on
    resilient sessions while a {!Edc_simnet.Nemesis} runs [schedule] until
    [horizon]; final state is read back and checked against what clients
    were told (see the fault model in DESIGN.md). *)
type chaos_point = {
  ch_kind : Systems.kind;
  ch_seed : int;
  ch_ops_ok : int;
  ch_ops_maybe : int;  (** concluded [Maybe_applied] (ambiguous writes) *)
  ch_ops_failed : int;
  ch_success_rate : float;
  ch_errors : (string * int) list;  (** taxonomy of non-ok outcomes *)
  ch_counter_confirmed : int;
  ch_counter_maybe : int;
  ch_counter_final : int;
  ch_adds_confirmed : int;
  ch_adds_maybe : int;
  ch_consumed : int;
  ch_remaining : int;
  ch_removes_maybe : int;
  ch_crashes : int;
  ch_leader_kills : int;
  ch_partitions : int;
  ch_partitions_healed : int;
  ch_storms : int;
  ch_faults : int;
  ch_dropped : int;  (** messages discarded by the simulated network *)
  ch_recovery_ms : Stats.Series.t;
      (** per-disruption time to the next successful client operation *)
  ch_unrecovered : int;
  ch_anomalies : int;
  ch_invariant_failures : string list;  (** empty = all invariants intact *)
  ch_trace : string;  (** equal seeds produce equal traces *)
  ch_lin : (string * Edc_checker.Wgl.verdict) list;
      (** per-object linearizability verdicts over the history captured
          by {!Edc_checker.Instrument} (empty with [~check:false]): the
          recorded counter and queue operations, including the final
          state reads, must admit a legal sequential ordering *)
  ch_history_events : int;
  ch_snap : Systems.snapshot_stats;
      (** snapshot/state-transfer activity during the run (zeros for the
          BFT deployments) *)
}

(** [check] (default [true]) wraps every chaos client in the
    history-capturing instrument and runs a WGL linearizability search
    per object after the run.  [zab_config] and [server_config] reach
    the Zab deployments only — the mutation self-test uses the former to
    re-enable a known-bad behaviour and assert the checker notices; the
    snapshot tests use the latter to tighten the snapshot interval so
    crash recovery goes through the chunked state transfer. *)
val chaos_point :
  ?seed:int ->
  ?net_config:Net.config ->
  ?zab_config:Edc_replication.Zab.config ->
  ?server_config:Edc_zookeeper.Server.config ->
  ?schedule:Nemesis.schedule ->
  ?horizon:Sim_time.t ->
  ?check:bool ->
  ?lin_max_steps:int ->
  Systems.kind ->
  chaos_point
