(** The paper's evaluation experiments (§6): one function per figure, each
    running a fresh deterministic simulation per (system, client-count)
    point and returning what the figure plots. *)

open Edc_simnet

val default_client_counts : int list
val paired_client_counts : int list

type point = {
  kind : Systems.kind;
  clients : int;
  throughput : float;  (** ops per second *)
  latency_ms : float;
  p99_ms : float;
  kb_per_op : float;  (** client-transmitted data per completed op *)
  attempts : float;
  errors : int;
}

(** Figure 6: shared counter under contention.  [batch] configures
    replication group commit (off when omitted). *)
val counter_point :
  ?seed:int ->
  ?net_config:Net.config ->
  ?batch:Edc_replication.Batching.config ->
  warmup:Sim_time.t ->
  measure:Sim_time.t ->
  Systems.kind ->
  int ->
  point

(** Figure 8: distributed queue (add + remove per iteration). *)
val queue_point :
  ?seed:int ->
  ?net_config:Net.config ->
  ?batch:Edc_replication.Batching.config ->
  warmup:Sim_time.t ->
  measure:Sim_time.t ->
  Systems.kind ->
  int ->
  point

(** Figure 10: distributed barrier (round-based; [latency_ms] = avg per
    enter, [kb_per_op] over measured rounds). *)
val barrier_point :
  ?seed:int ->
  ?net_config:Net.config ->
  ?rounds:int ->
  ?warmup_rounds:int ->
  Systems.kind ->
  int ->
  point

(** Figure 12: leader election ([throughput] = leader changes/s,
    [latency_ms] = signaling latency). *)
val election_point :
  ?seed:int ->
  ?net_config:Net.config ->
  warmup:Sim_time.t ->
  measure:Sim_time.t ->
  Systems.kind ->
  int ->
  point

(** Figure 13: queue extension load vs regular clients. *)
type fig13_point = {
  f13_kind : Systems.kind;
  f13_queue_clients : int;
  f13_queue_throughput : float;
  f13_read_ms : float;
  f13_write_ms : float;
}

val fig13_point :
  ?seed:int ->
  ?net_config:Net.config ->
  warmup:Sim_time.t ->
  measure:Sim_time.t ->
  Systems.kind ->
  int ->
  fig13_point

(** §6.2: regular-operation latency with extensibility installed but not
    triggered. *)
type overhead_point = {
  oh_kind : Systems.kind;
  oh_read_ms : float;
  oh_write_ms : float;
}

val overhead_point :
  ?seed:int ->
  ?net_config:Net.config ->
  warmup:Sim_time.t ->
  measure:Sim_time.t ->
  Systems.kind ->
  overhead_point
