(** Uniform construction of the four evaluated deployments: ZooKeeper,
    EXTENSIBLE ZOOKEEPER, DepSpace, and EXTENSIBLE DEPSPACE — each
    configured to tolerate one fault as in §6 (three replicas for the
    crash-tolerant systems, four for the BFT ones). *)

open Edc_simnet
open Edc_recipes
module Zk = Edc_zookeeper
module Ds = Edc_depspace
module Ezk_cluster = Edc_ezk.Ezk_cluster

type kind = Zookeeper | Ezk | Depspace | Eds

let kind_name = function
  | Zookeeper -> "ZooKeeper"
  | Ezk -> "EZK"
  | Depspace -> "DepSpace"
  | Eds -> "EDS"

let is_extensible = function Ezk | Eds -> true | Zookeeper | Depspace -> false

let all = [ Zookeeper; Ezk; Depspace; Eds ]

type t = {
  sim : Sim.t;
  kind : kind;
  new_api : unit -> Coord_api.t * int;
      (** fresh connected client (call from a fiber); returns the abstract
          API plus the client's network address (for byte accounting) *)
  bytes_sent_by : int -> int;
  total_bytes : unit -> int;
  crash_replica : int -> unit;
  n_replicas : int;
  anomalies : unit -> int;
      (** replication-safety violations detected by the state machines
          (must stay 0 in every run) *)
}

let make ?net_config ?batch kind sim =
  match kind with
  | Zookeeper ->
      let cluster = Zk.Cluster.create ?net_config ?batch sim in
      {
        sim;
        kind;
        new_api =
          (fun () ->
            let c = Zk.Cluster.connected_client cluster () in
            (Coord_zk.of_client ~extensible:false c, Zk.Client.addr c));
        bytes_sent_by = Net.bytes_sent_by (Zk.Cluster.net cluster);
        total_bytes = (fun () -> Net.total_bytes_sent (Zk.Cluster.net cluster));
        crash_replica = Zk.Cluster.crash_server cluster;
        n_replicas = 3;
        anomalies =
          (fun () ->
            Array.fold_left
              (fun acc s -> acc + Zk.Data_tree.anomalies (Zk.Server.tree s))
              0 (Zk.Cluster.servers cluster));
      }
  | Ezk ->
      let cluster = Ezk_cluster.create ?net_config ?batch sim in
      {
        sim;
        kind;
        new_api =
          (fun () ->
            let c = Ezk_cluster.connected_client cluster () in
            (Coord_zk.of_client ~extensible:true c, Zk.Client.addr c));
        bytes_sent_by = Net.bytes_sent_by (Ezk_cluster.net cluster);
        total_bytes = (fun () -> Net.total_bytes_sent (Ezk_cluster.net cluster));
        crash_replica = Ezk_cluster.crash_server cluster;
        n_replicas = 3;
        anomalies =
          (fun () ->
            Array.fold_left
              (fun acc s -> acc + Zk.Data_tree.anomalies (Zk.Server.tree s))
              0 (Ezk_cluster.servers cluster));
      }
  | Depspace ->
      let cluster = Ds.Ds_cluster.create ?net_config ?batch sim in
      {
        sim;
        kind;
        new_api =
          (fun () ->
            let c = Ds.Ds_cluster.client cluster () in
            (Coord_ds.of_client ~extensible:false c, Ds.Ds_client.addr c));
        bytes_sent_by = Net.bytes_sent_by (Ds.Ds_cluster.net cluster);
        total_bytes = (fun () -> Net.total_bytes_sent (Ds.Ds_cluster.net cluster));
        crash_replica = Ds.Ds_cluster.crash_server cluster;
        n_replicas = 4;
        anomalies = (fun () -> 0);
      }
  | Eds ->
      let cluster = Edc_eds.Eds_cluster.create ?net_config ?batch sim in
      {
        sim;
        kind;
        new_api =
          (fun () ->
            let c = Edc_eds.Eds_cluster.client cluster () in
            (Coord_ds.of_client ~extensible:true c, Ds.Ds_client.addr c));
        bytes_sent_by = Net.bytes_sent_by (Edc_eds.Eds_cluster.net cluster);
        total_bytes = (fun () -> Net.total_bytes_sent (Edc_eds.Eds_cluster.net cluster));
        crash_replica = Edc_eds.Eds_cluster.crash_server cluster;
        n_replicas = 4;
        anomalies = (fun () -> 0);
      }
