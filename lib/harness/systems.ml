(** Uniform construction of the four evaluated deployments: ZooKeeper,
    EXTENSIBLE ZOOKEEPER, DepSpace, and EXTENSIBLE DEPSPACE — each
    configured to tolerate one fault as in §6 (three replicas for the
    crash-tolerant systems, four for the BFT ones). *)

open Edc_simnet
open Edc_recipes
module Zk = Edc_zookeeper
module Ds = Edc_depspace
module Ezk_cluster = Edc_ezk.Ezk_cluster

type kind = Zookeeper | Ezk | Depspace | Eds

let kind_name = function
  | Zookeeper -> "ZooKeeper"
  | Ezk -> "EZK"
  | Depspace -> "DepSpace"
  | Eds -> "EDS"

let is_extensible = function Ezk | Eds -> true | Zookeeper | Depspace -> false

let all = [ Zookeeper; Ezk; Depspace; Eds ]

type snapshot_stats = {
  ss_captures : int;
  ss_serializations : int;
  ss_skipped : int;
  ss_installs : int;
  ss_chunks_sent : int;
  ss_chunk_retx : int;
  ss_bytes_streamed : int;
  ss_transfers_started : int;
  ss_transfers_completed : int;
  ss_resumes : int;
  ss_last_resume_from : int;
}

type wire_stats = { ws_encodes : int; ws_sends : int }

let wire_stats_zero = { ws_encodes = 0; ws_sends = 0 }

let snapshot_stats_zero =
  {
    ss_captures = 0;
    ss_serializations = 0;
    ss_skipped = 0;
    ss_installs = 0;
    ss_chunks_sent = 0;
    ss_chunk_retx = 0;
    ss_bytes_streamed = 0;
    ss_transfers_started = 0;
    ss_transfers_completed = 0;
    ss_resumes = 0;
    ss_last_resume_from = 0;
  }

type t = {
  sim : Sim.t;
  kind : kind;
  new_api : unit -> Coord_api.t * int;
      (** fresh connected client (call from a fiber); returns the abstract
          API plus the client's network address (for byte accounting) *)
  new_resilient_api : unit -> Coord_api.t * int;
      (** like [new_api], but through the resilient session layer
          (deadlines, backoff, failover, safe resubmission) with timeouts
          tightened for fault-heavy runs *)
  bytes_sent_by : int -> int;
  total_bytes : unit -> int;
  crash_replica : int -> unit;
  restart_replica : int -> unit;
  nemesis_target : unit -> Nemesis.target;
  dropped_messages : unit -> int;
  n_replicas : int;
  anomalies : unit -> int;
      (** replication-safety violations detected by the state machines
          (must stay 0 in every run) *)
  snapshot_stats : unit -> snapshot_stats;
  wire_stats : unit -> wire_stats;
      (* serializer work summed over replicas: encodes (distinct frames) vs
         per-destination sends; zeros for the BFT deployments, whose servers
         do not expose the counters *)
  (* elastic membership (joint-consensus reconfiguration through the
     log); the BFT deployments are static and return [Error]/zeros *)
  add_replica : unit -> (int, string) result;
      (** boot a learner, hand it to the leader for bootstrap + admission;
          returns its replica id *)
  add_observer : unit -> (int, string) result;
      (** attach a permanent non-voting observer: bootstrapped like a
          learner (chunked snapshot transfer), it consumes the commit
          stream and serves reads but never votes or joins any quorum *)
  remove_replica : int -> (unit, string) result;
      (** ask the leader to remove a replica through the log *)
  members : unit -> int list;
      (** current voter set (the leader's view when one exists) *)
  reconfig_in_flight : unit -> bool;
  reconfig_stats : unit -> Edc_replication.Zab.reconfig_stats;
      (** cluster-wide aggregation: leader-side counters summed across
          replicas that led, commit-side counters maxed (every live
          replica counts each committed config entry) *)
}

(* Sum the server-side capture counters and the Zab transfer counters over
   a ZooKeeper-style replica array. *)
let zk_snapshot_stats servers () =
  Array.fold_left
    (fun acc s ->
      let x = Edc_replication.Zab.xfer_stats (Zk.Server.zab s) in
      {
        ss_captures = acc.ss_captures + Zk.Server.snapshot_captures s;
        ss_serializations =
          acc.ss_serializations + Zk.Server.snapshot_serializations s;
        ss_skipped = acc.ss_skipped + Zk.Server.snapshots_skipped s;
        ss_installs = acc.ss_installs + Zk.Server.snapshot_installs s;
        ss_chunks_sent = acc.ss_chunks_sent + x.Edc_replication.Zab.chunks_sent;
        ss_chunk_retx = acc.ss_chunk_retx + x.Edc_replication.Zab.chunk_retx;
        ss_bytes_streamed =
          acc.ss_bytes_streamed + x.Edc_replication.Zab.bytes_streamed;
        ss_transfers_started =
          acc.ss_transfers_started + x.Edc_replication.Zab.transfers_started;
        ss_transfers_completed =
          acc.ss_transfers_completed + x.Edc_replication.Zab.transfers_completed;
        ss_resumes = acc.ss_resumes + x.Edc_replication.Zab.resumes;
        ss_last_resume_from =
          max acc.ss_last_resume_from
            x.Edc_replication.Zab.last_resume_from;
      })
    snapshot_stats_zero servers

let zk_wire_stats servers () =
  Array.fold_left
    (fun acc s ->
      {
        ws_encodes = acc.ws_encodes + Zk.Server.wire_encodes s;
        ws_sends = acc.ws_sends + Zk.Server.wire_sends s;
      })
    wire_stats_zero servers

(* Fault-heavy runs want clients that notice a dead replica quickly; the
   4 s defaults would dominate every recovery-time measurement. *)
let chaos_zk_client_config =
  { Zk.Client.request_timeout = Sim_time.sec 1; ping_interval = Sim_time.ms 500 }

let chaos_ds_client_config =
  {
    Ds.Ds_client.default_config with
    Ds.Ds_client.request_timeout = Sim_time.sec 1;
  }

(* [servers] is a getter because elastic clusters grow their replica
   array at runtime; every closure re-reads it. *)
let zk_nemesis_target name net servers ~crash ~restart =
  {
    Nemesis.name;
    nodes = List.init (Array.length (servers ())) Fun.id;
    leader =
      (fun () ->
        let ss = servers () in
        let rec find i =
          if i >= Array.length ss then None
          else if Zk.Server.is_leader ss.(i) then Some i
          else find (i + 1)
        in
        find 0);
    crash;
    restart;
    cut = Net.cut_link net;
    heal = Net.heal_link net;
    cut_one_way = (fun ~src ~dst -> Net.cut_link_one_way net ~src ~dst);
    heal_one_way = (fun ~src ~dst -> Net.heal_link_one_way net ~src ~dst);
    silence = Net.set_node_down net;
    unsilence = Net.set_node_up net;
    reconfig_in_flight =
      (fun () ->
        (* arm from the moment a learner is adopted (bootstrap counts as
           "change underway") until the final config entry commits; a
           fenced replica's stale joint view does not count *)
        Array.exists
          (fun s ->
            let z = Zk.Server.zab s in
            (not (Edc_replication.Zab.is_fenced z))
            && (Edc_replication.Zab.reconfig_in_flight z
               || Edc_replication.Zab.learners z <> []))
          (servers ()));
    set_skew =
      (fun node skew ->
        let ss = servers () in
        if node < Array.length ss then
          Edc_replication.Zab.set_clock_skew (Zk.Server.zab ss.(node)) skew);
  }

let ds_nemesis_target name net servers ~crash ~restart =
  let n = Array.length servers in
  {
    Nemesis.name;
    nodes = List.init n Fun.id;
    leader =
      (fun () ->
        let rec find i =
          if i >= n then None
          else if
            Edc_replication.Pbft.is_primary (Ds.Ds_server.pbft servers.(i))
          then Some i
          else find (i + 1)
        in
        find 0);
    crash;
    restart;
    cut = Net.cut_link net;
    heal = Net.heal_link net;
    cut_one_way = (fun ~src ~dst -> Net.cut_link_one_way net ~src ~dst);
    heal_one_way = (fun ~src ~dst -> Net.heal_link_one_way net ~src ~dst);
    silence = Net.set_node_down net;
    unsilence = Net.set_node_up net;
    reconfig_in_flight = (fun () -> false);
    set_skew = (fun _ _ -> ()) (* PBFT has no leases, no virtual clock *);
  }

let zk_replica_ids cluster =
  List.init (Array.length (Zk.Cluster.servers cluster)) Fun.id

module Zab = Edc_replication.Zab

let reconfig_stats_zero () =
  {
    Zab.joins_requested = 0;
    joint_proposed = 0;
    joint_commits = 0;
    finals_committed = 0;
    joins_completed = 0;
    leaves_requested = 0;
    leaves_completed = 0;
    aborted = 0;
    fences = 0;
    catchup_ms = [];
  }

(* Leader-side counters (adoptions, proposals, removals, catch-up times)
   live on whichever replicas led and sum cleanly; commit-side counters
   increment on EVERY replica that applies the config entry, so the
   cluster-wide value is the max, not the sum. *)
let zk_reconfig_stats servers () =
  let acc = reconfig_stats_zero () in
  Array.iter
    (fun s ->
      let r = Zab.reconfig_stats (Zk.Server.zab s) in
      acc.Zab.joins_requested <- acc.Zab.joins_requested + r.Zab.joins_requested;
      acc.Zab.joint_proposed <- acc.Zab.joint_proposed + r.Zab.joint_proposed;
      acc.Zab.joint_commits <- max acc.Zab.joint_commits r.Zab.joint_commits;
      acc.Zab.finals_committed <-
        max acc.Zab.finals_committed r.Zab.finals_committed;
      acc.Zab.joins_completed <-
        max acc.Zab.joins_completed r.Zab.joins_completed;
      acc.Zab.leaves_requested <-
        acc.Zab.leaves_requested + r.Zab.leaves_requested;
      acc.Zab.leaves_completed <-
        max acc.Zab.leaves_completed r.Zab.leaves_completed;
      acc.Zab.aborted <- max acc.Zab.aborted r.Zab.aborted;
      acc.Zab.fences <- acc.Zab.fences + r.Zab.fences;
      acc.Zab.catchup_ms <- r.Zab.catchup_ms @ acc.Zab.catchup_ms)
    (servers ());
  acc

let zk_members servers () =
  let ss = servers () in
  match Array.find_opt Zk.Server.is_leader ss with
  | Some l -> Zab.members (Zk.Server.zab l)
  | None ->
      Array.fold_left
        (fun acc s ->
          let z = Zk.Server.zab s in
          if Zab.is_fenced z then acc
          else List.sort_uniq compare (acc @ Zab.members z))
        [] ss

let zk_reconfig_in_flight servers () =
  (* a fenced replica's opinion is history: it was removed mid-change and
     may sit on a joint view forever (nobody replicates to it anymore) *)
  Array.exists
    (fun s ->
      let z = Zk.Server.zab s in
      (not (Zab.is_fenced z)) && Zab.reconfig_in_flight z)
    (servers ())

let make ?net_config ?batch ?zab_config ?server_config kind sim =
  match kind with
  | Zookeeper ->
      let cluster = Zk.Cluster.create ?net_config ?server_config ?zab_config ?batch sim in
      {
        sim;
        kind;
        new_api =
          (fun () ->
            let c = Zk.Cluster.connected_client cluster () in
            (Coord_zk.of_client ~extensible:false c, Zk.Client.addr c));
        new_resilient_api =
          (fun () ->
            let c =
              Zk.Cluster.connected_client ~config:chaos_zk_client_config
                cluster ()
            in
            let s =
              Zk.Session.wrap ~sim ~replicas:(zk_replica_ids cluster) c
            in
            (Coord_zk.of_session ~extensible:false s, Zk.Client.addr c));
        bytes_sent_by = Net.bytes_sent_by (Zk.Cluster.net cluster);
        total_bytes = (fun () -> Net.total_bytes_sent (Zk.Cluster.net cluster));
        crash_replica = Zk.Cluster.crash_server cluster;
        restart_replica = Zk.Cluster.restart_server cluster;
        nemesis_target =
          (fun () ->
            zk_nemesis_target "zookeeper" (Zk.Cluster.net cluster)
              (fun () -> Zk.Cluster.servers cluster)
              ~crash:(Zk.Cluster.crash_server cluster)
              ~restart:(Zk.Cluster.restart_server cluster));
        dropped_messages =
          (fun () -> Net.dropped_messages (Zk.Cluster.net cluster));
        n_replicas = 3;
        anomalies =
          (fun () ->
            Array.fold_left
              (fun acc s -> acc + Zk.Data_tree.anomalies (Zk.Server.tree s))
              0 (Zk.Cluster.servers cluster));
        snapshot_stats =
          (fun () -> zk_snapshot_stats (Zk.Cluster.servers cluster) ());
        wire_stats = (fun () -> zk_wire_stats (Zk.Cluster.servers cluster) ());
        add_replica = (fun () -> Ok (Zk.Cluster.add_server cluster));
        add_observer = (fun () -> Ok (Zk.Cluster.add_observer cluster));
        remove_replica = (fun id -> Zk.Cluster.remove_server cluster ~id);
        members = zk_members (fun () -> Zk.Cluster.servers cluster);
        reconfig_in_flight =
          zk_reconfig_in_flight (fun () -> Zk.Cluster.servers cluster);
        reconfig_stats =
          zk_reconfig_stats (fun () -> Zk.Cluster.servers cluster);
      }
  | Ezk ->
      let cluster = Ezk_cluster.create ?net_config ?server_config ?zab_config ?batch sim in
      {
        sim;
        kind;
        new_api =
          (fun () ->
            let c = Ezk_cluster.connected_client cluster () in
            (Coord_zk.of_client ~extensible:true c, Zk.Client.addr c));
        new_resilient_api =
          (fun () ->
            let c =
              Ezk_cluster.connected_client ~config:chaos_zk_client_config
                cluster ()
            in
            let n = Array.length (Ezk_cluster.servers cluster) in
            let s = Zk.Session.wrap ~sim ~replicas:(List.init n Fun.id) c in
            (Coord_zk.of_session ~extensible:true s, Zk.Client.addr c));
        bytes_sent_by = Net.bytes_sent_by (Ezk_cluster.net cluster);
        total_bytes = (fun () -> Net.total_bytes_sent (Ezk_cluster.net cluster));
        crash_replica = Ezk_cluster.crash_server cluster;
        restart_replica = Ezk_cluster.restart_server cluster;
        nemesis_target = (fun () -> Ezk_cluster.nemesis_target cluster);
        dropped_messages =
          (fun () -> Net.dropped_messages (Ezk_cluster.net cluster));
        n_replicas = 3;
        anomalies =
          (fun () ->
            Array.fold_left
              (fun acc s -> acc + Zk.Data_tree.anomalies (Zk.Server.tree s))
              0 (Ezk_cluster.servers cluster));
        snapshot_stats =
          (fun () -> zk_snapshot_stats (Ezk_cluster.servers cluster) ());
        wire_stats = (fun () -> zk_wire_stats (Ezk_cluster.servers cluster) ());
        add_replica = (fun () -> Ok (Ezk_cluster.add_server cluster));
        add_observer = (fun () -> Ok (Ezk_cluster.add_observer cluster));
        remove_replica = (fun id -> Ezk_cluster.remove_server cluster ~id);
        members = zk_members (fun () -> Ezk_cluster.servers cluster);
        reconfig_in_flight =
          zk_reconfig_in_flight (fun () -> Ezk_cluster.servers cluster);
        reconfig_stats =
          zk_reconfig_stats (fun () -> Ezk_cluster.servers cluster);
      }
  | Depspace ->
      ignore zab_config (* BFT deployments do not run Zab *);
      let cluster = Ds.Ds_cluster.create ?net_config ?batch sim in
      {
        sim;
        kind;
        new_api =
          (fun () ->
            let c = Ds.Ds_cluster.client cluster () in
            (Coord_ds.of_client ~extensible:false c, Ds.Ds_client.addr c));
        new_resilient_api =
          (fun () ->
            let c =
              Ds.Ds_cluster.client ~config:chaos_ds_client_config cluster ()
            in
            let s = Ds.Ds_session.wrap c in
            (Coord_ds.of_session ~extensible:false s, Ds.Ds_client.addr c));
        bytes_sent_by = Net.bytes_sent_by (Ds.Ds_cluster.net cluster);
        total_bytes = (fun () -> Net.total_bytes_sent (Ds.Ds_cluster.net cluster));
        crash_replica = Ds.Ds_cluster.crash_server cluster;
        restart_replica = Ds.Ds_cluster.restart_server cluster;
        nemesis_target =
          (fun () ->
            ds_nemesis_target "depspace" (Ds.Ds_cluster.net cluster)
              (Ds.Ds_cluster.servers cluster)
              ~crash:(Ds.Ds_cluster.crash_server cluster)
              ~restart:(Ds.Ds_cluster.restart_server cluster));
        dropped_messages =
          (fun () -> Net.dropped_messages (Ds.Ds_cluster.net cluster));
        n_replicas = 4;
        anomalies = (fun () -> 0);
        snapshot_stats = (fun () -> snapshot_stats_zero);
        wire_stats = (fun () -> wire_stats_zero);
        add_replica = (fun () -> Error "DepSpace membership is static");
        add_observer = (fun () -> Error "DepSpace membership is static");
        remove_replica = (fun _ -> Error "DepSpace membership is static");
        members = (fun () -> List.init 4 Fun.id);
        reconfig_in_flight = (fun () -> false);
        reconfig_stats = (fun () -> reconfig_stats_zero ());
      }
  | Eds ->
      ignore zab_config;
      let cluster = Edc_eds.Eds_cluster.create ?net_config ?batch sim in
      {
        sim;
        kind;
        new_api =
          (fun () ->
            let c = Edc_eds.Eds_cluster.client cluster () in
            (Coord_ds.of_client ~extensible:true c, Ds.Ds_client.addr c));
        new_resilient_api =
          (fun () ->
            let c =
              Edc_eds.Eds_cluster.client ~config:chaos_ds_client_config
                cluster ()
            in
            let s = Ds.Ds_session.wrap c in
            (Coord_ds.of_session ~extensible:true s, Ds.Ds_client.addr c));
        bytes_sent_by = Net.bytes_sent_by (Edc_eds.Eds_cluster.net cluster);
        total_bytes = (fun () -> Net.total_bytes_sent (Edc_eds.Eds_cluster.net cluster));
        crash_replica = Edc_eds.Eds_cluster.crash_server cluster;
        restart_replica = Edc_eds.Eds_cluster.restart_server cluster;
        nemesis_target =
          (fun () -> Edc_eds.Eds_cluster.nemesis_target cluster);
        dropped_messages =
          (fun () -> Net.dropped_messages (Edc_eds.Eds_cluster.net cluster));
        n_replicas = 4;
        anomalies = (fun () -> 0);
        snapshot_stats = (fun () -> snapshot_stats_zero);
        wire_stats = (fun () -> wire_stats_zero);
        add_replica = (fun () -> Error "EDS membership is static");
        add_observer = (fun () -> Error "EDS membership is static");
        remove_replica = (fun _ -> Error "EDS membership is static");
        members = (fun () -> List.init 4 Fun.id);
        reconfig_in_flight = (fun () -> false);
        reconfig_stats = (fun () -> reconfig_stats_zero ());
      }
