(** Closed-loop stress workload (§6): each client continuously invokes the
    operation under test with at most one request pending; measurements are
    confined to a steady-state window, with client byte counters
    snapshotted at the window edges (the paper's per-op data cost). *)

open Edc_simnet
open Edc_recipes

type results = {
  ops : int;
  errors : int;
  duration : Sim_time.t;
  throughput : float;  (** ops per simulated second *)
  mean_latency_ms : float;
  p99_latency_ms : float;
  client_bytes : int;
  kb_per_op : float;
  attempts_per_op : float;  (** retry amplification (1.0 = none) *)
}

val pp_results : Format.formatter -> results -> unit

type spec = {
  n_clients : int;
  warmup : Sim_time.t;
  measure : Sim_time.t;
  setup : Coord_api.t -> unit;  (** one admin client, before the stress *)
  prepare : Coord_api.t -> unit;  (** per-client (e.g. acknowledge) *)
  op : Coord_api.t -> (int, string) result;
      (** one closed-loop iteration; returns its attempt count *)
  ops_per_iteration : int;
}

(** Deterministic for a fixed simulator seed.  [wrap_api] decorates each
    stress client's API before use (e.g. {!Edc_checker.Instrument.wrap}
    for history capture); the admin/setup client is not wrapped. *)
val run :
  ?wrap_api:(Coord_api.t -> Coord_api.t) -> Systems.t -> spec -> results
