(** Paper-style text output: one table per figure, plus the two static
    tables. *)

open Edc_simnet

let hline width = print_endline (String.make width '-')

let section title =
  print_newline ();
  hline 78;
  Printf.printf "%s\n" title;
  hline 78

(** Print a metric table: rows = client counts, columns = systems. *)
let metric_table ~title ~unit ~clients ~systems ~value =
  Printf.printf "\n%s [%s]\n" title unit;
  Printf.printf "%8s |" "clients";
  List.iter (fun k -> Printf.printf " %12s" (Systems.kind_name k)) systems;
  print_newline ();
  hline (10 + (13 * List.length systems));
  List.iter
    (fun n ->
      Printf.printf "%8d |" n;
      List.iter (fun k -> Printf.printf " %12.2f" (value k n)) systems;
      print_newline ())
    clients

let lookup points kind clients metric =
  match
    List.find_opt
      (fun (p : Experiment.point) -> p.Experiment.kind = kind && p.Experiment.clients = clients)
      points
  with
  | Some p -> metric p
  | None -> nan

(* ------------------------------------------------------------------ *)
(* Table 1: coordination services and their characteristics (static)   *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: Coordination services and their characteristics";
  let rows =
    [
      ("Boxwood", "Key-Value store", "Locks", "No");
      ("Chubby", "(Small) File system", "Locks", "No");
      ("Sinfonia", "Key-Value store", "Microtransactions", "Yes");
      ("DepSpace", "Tuple space", "cas/replace ops", "Yes");
      ("ZooKeeper", "Hierar. of data nodes", "Sequencers", "Yes");
      ("etcd", "Hierar. of data nodes", "Sequen./Atomic ops", "Yes");
      ("LogCabin", "Hierar. of data nodes", "Conditions", "Yes");
    ]
  in
  Printf.printf "%-12s %-24s %-20s %-9s\n" "System" "Data Model" "Sync. Primitive"
    "Wait-free";
  hline 68;
  List.iter
    (fun (s, d, p, w) -> Printf.printf "%-12s %-24s %-20s %-9s\n" s d p w)
    rows;
  Printf.printf
    "\n(This repository implements the DepSpace and ZooKeeper rows in full,\n\
    \ plus their extensible variants EDS and EZK.)\n"

(* ------------------------------------------------------------------ *)
(* Table 2: abstract API mapping (static; validated by the test suite) *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2: Abstract coordination methods and their mappings";
  let rows =
    [
      ("create(o)", "create(o)", "out(o) [via cas]");
      ("delete(o)", "delete(o, ANY_VERSION)", "inp(<o,*>)");
      ("read(o)", "getData(o)", "rdp(<o,*>)");
      ("update(o,c)", "setData(o, c, ANY_VERSION)", "replace(<o,*>, <o,c>)");
      ("cas(o,cc,nc)", "setData(o, nc, v_observed)", "replace(<o,cc>, <o,nc>)");
      ("subObjects(o)", "getChildren + k x getData", "rdAll(<o/, SUB_ANY>)");
      ("block(o)", "exists-watch + notification", "rd(<o,*>)");
      ("monitor(x,o)", "ephemeral node + session", "lease tuple + renewals");
    ]
  in
  Printf.printf "%-14s | %-28s | %-24s\n" "Method" "ZooKeeper" "DepSpace";
  hline 74;
  List.iter (fun (m, z, d) -> Printf.printf "%-14s | %-28s | %-24s\n" m z d) rows;
  Printf.printf
    "\n(Exercised by test/test_recipes.ml: every recipe runs against both\n\
    \ mappings through the shared Coord_api interface.)\n"

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let figure_points ~title ~clients ~systems ~point_fn =
  section title;
  List.concat_map
    (fun kind ->
      List.map
        (fun n ->
          let p = point_fn kind n in
          Printf.printf "  %-10s clients=%2d done\n%!" (Systems.kind_name kind) n;
          p)
        clients)
    systems

let summarize_speedup points ~clients ~base ~ext ~what =
  let t kind = lookup points kind clients (fun p -> p.Experiment.throughput) in
  let b = t base and e = t ext in
  if b > 0.0 then
    Printf.printf "%s at %d clients: %s %.0f ops/s vs %s %.0f ops/s -> %.1fx\n"
      what clients (Systems.kind_name ext) e (Systems.kind_name base) b (e /. b)

(* ------------------------------------------------------------------ *)
(* Availability under fault injection                                  *)
(* ------------------------------------------------------------------ *)

let availability_table points =
  Printf.printf "\n%-10s %5s | %6s %5s %4s %6s | %7s %9s | %5s %6s\n" "system"
    "seed" "ok" "maybe" "fail" "rate" "dropped" "recov ms" "unrec" "invar";
  hline 86;
  List.iter
    (fun (p : Experiment.chaos_point) ->
      let r = p.Experiment.ch_recovery_ms in
      let recov =
        if Stats.Series.count r = 0 then "-"
        else
          Printf.sprintf "%.0f/%.0f" (Stats.Series.mean r) (Stats.Series.max r)
      in
      Printf.printf "%-10s %5d | %6d %5d %4d %5.1f%% | %7d %9s | %5d %6s\n"
        (Systems.kind_name p.Experiment.ch_kind)
        p.Experiment.ch_seed p.Experiment.ch_ops_ok p.Experiment.ch_ops_maybe
        p.Experiment.ch_ops_failed
        (100.0 *. p.Experiment.ch_success_rate)
        p.Experiment.ch_dropped recov p.Experiment.ch_unrecovered
        (if p.Experiment.ch_invariant_failures = [] then "OK" else "BROKEN"))
    points

let fault_summary points =
  Printf.printf
    "\n%-10s %5s | %6s %7s %10s %6s %6s | %8s %8s %9s\n" "system" "seed"
    "faults" "crashes" "ldr-kills" "parts" "storms" "healed" "ctr" "queue";
  hline 96;
  List.iter
    (fun (p : Experiment.chaos_point) ->
      Printf.printf
        "%-10s %5d | %6d %7d %10d %6d %6d | %8d %4d/%-4d %4d/%-4d\n"
        (Systems.kind_name p.Experiment.ch_kind)
        p.Experiment.ch_seed p.Experiment.ch_faults p.Experiment.ch_crashes
        p.Experiment.ch_leader_kills p.Experiment.ch_partitions
        p.Experiment.ch_storms p.Experiment.ch_partitions_healed
        p.Experiment.ch_counter_final p.Experiment.ch_counter_confirmed
        p.Experiment.ch_consumed p.Experiment.ch_adds_confirmed)
    points

let snapshot_summary points =
  (* only meaningful for the Zab deployments; skip the table entirely when
     no run saw snapshot activity (e.g. a BFT-only sweep) *)
  let active =
    List.exists
      (fun (p : Experiment.chaos_point) ->
        p.Experiment.ch_snap <> Systems.snapshot_stats_zero)
      points
  in
  if active then begin
    Printf.printf
      "\n%-10s %5s | %8s %6s %7s | %6s %8s %9s | %7s %7s\n" "system" "seed"
      "captures" "serial" "skipped" "xfers" "chunks" "bytes" "retx" "resume";
    hline 96;
    List.iter
      (fun (p : Experiment.chaos_point) ->
        let s = p.Experiment.ch_snap in
        Printf.printf
          "%-10s %5d | %8d %6d %7d | %3d/%-3d %8d %9d | %7d %7d\n"
          (Systems.kind_name p.Experiment.ch_kind)
          p.Experiment.ch_seed s.Systems.ss_captures s.Systems.ss_serializations
          s.Systems.ss_skipped s.Systems.ss_transfers_completed
          s.Systems.ss_transfers_started s.Systems.ss_chunks_sent
          s.Systems.ss_bytes_streamed s.Systems.ss_chunk_retx
          s.Systems.ss_resumes)
      points
  end

let wire_summary points =
  (* serializer work (Zab deployments only): distinct frames encoded vs
     per-destination sends; saved = sends - encodes is the serialization
     work the encode-once broadcast avoided *)
  let active =
    List.exists
      (fun (p : Experiment.chaos_point) ->
        p.Experiment.ch_wire <> Systems.wire_stats_zero)
      points
  in
  if active then begin
    Printf.printf "\n%-10s %5s | %10s %10s %10s %6s\n" "system" "seed"
      "encodes" "sends" "saved" "ratio";
    hline 60;
    List.iter
      (fun (p : Experiment.chaos_point) ->
        let w = p.Experiment.ch_wire in
        if w <> Systems.wire_stats_zero then
          Printf.printf "%-10s %5d | %10d %10d %10d %6.2f\n"
            (Systems.kind_name p.Experiment.ch_kind)
            p.Experiment.ch_seed w.Systems.ws_encodes w.Systems.ws_sends
            (w.Systems.ws_sends - w.Systems.ws_encodes)
            (float_of_int w.Systems.ws_sends
            /. float_of_int (max 1 w.Systems.ws_encodes)))
      points
  end

let reconfig_active (r : Experiment.reconfig_summary) =
  r.Experiment.rs_joins_attempted + r.Experiment.rs_leaves_attempted
  + r.Experiment.rs_joint_commits + r.Experiment.rs_fenced
  > 0

let reconfig_row ~kind ~seed (r : Experiment.reconfig_summary) ~kills =
  let catchup =
    match r.Experiment.rs_catchup_ms with
    | [] -> "-"
    | ms ->
        let n = List.length ms in
        let sum = List.fold_left ( +. ) 0.0 ms in
        let mx = List.fold_left Float.max 0.0 ms in
        Printf.sprintf "%.0f/%.0f (%d)" (sum /. float_of_int n) mx n
  in
  Printf.printf "%-10s %5d | %4d/%-4d %4d/%-4d | %5d %5d %5d | %6d %5d | %s\n"
    (Systems.kind_name kind) seed r.Experiment.rs_joins_attempted
    r.Experiment.rs_joins_completed r.Experiment.rs_leaves_attempted
    r.Experiment.rs_leaves_completed r.Experiment.rs_joint_commits
    r.Experiment.rs_finals_committed r.Experiment.rs_aborted
    r.Experiment.rs_fenced kills catchup

let reconfig_header () =
  Printf.printf "\n%-10s %5s | %9s %9s | %5s %5s %5s | %6s %5s | %s\n" "system"
    "seed" "joins a/c" "leave a/c" "joint" "final" "abort" "fences" "kills"
    "catchup ms avg/max (n)";
  hline 96

let reconfig_summary points =
  (* membership-change activity; silent unless some run reconfigured *)
  let active =
    List.exists
      (fun (p : Experiment.chaos_point) ->
        reconfig_active p.Experiment.ch_reconfig)
      points
  in
  if active then begin
    reconfig_header ();
    List.iter
      (fun (p : Experiment.chaos_point) ->
        reconfig_row ~kind:p.Experiment.ch_kind ~seed:p.Experiment.ch_seed
          p.Experiment.ch_reconfig ~kills:p.Experiment.ch_reconfig_kills)
      points
  end

(* ------------------------------------------------------------------ *)
(* Elastic membership                                                   *)
(* ------------------------------------------------------------------ *)

let membership_table points =
  Printf.printf
    "\n%-10s %5s | %6s %5s %4s | %7s | %6s %6s | %9s %5s | %6s %6s\n" "system"
    "seed" "ok" "maybe" "fail" "members" "steady" "trough" "recov s" "unrec"
    "resume" "invar";
  hline 100;
  List.iter
    (fun (p : Experiment.membership_point) ->
      let recov =
        match p.Experiment.mp_recovery_s with
        | [] -> "-"
        | rs ->
            let n = List.length rs in
            let sum = List.fold_left ( +. ) 0.0 rs in
            let mx = List.fold_left Float.max 0.0 rs in
            Printf.sprintf "%.1f/%.1f" (sum /. float_of_int n) mx
      in
      Printf.printf
        "%-10s %5d | %6d %5d %4d | %7s | %6.0f %6.0f | %9s %5d | %6d %6s\n"
        (Systems.kind_name p.Experiment.mp_kind)
        p.Experiment.mp_seed p.Experiment.mp_ops_ok p.Experiment.mp_ops_maybe
        p.Experiment.mp_ops_failed
        (String.concat ","
           (List.map string_of_int p.Experiment.mp_members_final))
        p.Experiment.mp_steady_ops_s p.Experiment.mp_trough_ops_s recov
        p.Experiment.mp_unrecovered
        p.Experiment.mp_snap.Systems.ss_last_resume_from
        (if p.Experiment.mp_invariant_failures = [] then "OK" else "BROKEN"))
    points

let membership_reconfig_summary points =
  reconfig_header ();
  List.iter
    (fun (p : Experiment.membership_point) ->
      reconfig_row ~kind:p.Experiment.mp_kind ~seed:p.Experiment.mp_seed
        p.Experiment.mp_reconfig ~kills:p.Experiment.mp_reconfig_kills)
    points

let membership_invariant_failures points =
  List.iter
    (fun (p : Experiment.membership_point) ->
      List.iter
        (fun f ->
          Printf.printf "INVARIANT VIOLATED [%s seed=%d]: %s\n"
            (Systems.kind_name p.Experiment.mp_kind)
            p.Experiment.mp_seed f)
        p.Experiment.mp_invariant_failures)
    points

let error_taxonomy points =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (p : Experiment.chaos_point) ->
      List.iter
        (fun (e, n) ->
          Hashtbl.replace tbl e
            (n + Option.value ~default:0 (Hashtbl.find_opt tbl e)))
        p.Experiment.ch_errors)
    points;
  let all = Hashtbl.fold (fun e n acc -> (e, n) :: acc) tbl [] in
  let all = List.sort (fun (_, a) (_, b) -> Int.compare b a) all in
  if all <> [] then begin
    Printf.printf "\nerror taxonomy (all runs):\n";
    List.iter (fun (e, n) -> Printf.printf "  %6d  %s\n" n e) all
  end

let invariant_failures points =
  List.iter
    (fun (p : Experiment.chaos_point) ->
      List.iter
        (fun f ->
          Printf.printf "INVARIANT VIOLATED [%s seed=%d]: %s\n"
            (Systems.kind_name p.Experiment.ch_kind)
            p.Experiment.ch_seed f)
        p.Experiment.ch_invariant_failures)
    points

let fault_trace (p : Experiment.chaos_point) =
  Printf.printf "\nfault trace (%s, seed %d):\n%s"
    (Systems.kind_name p.Experiment.ch_kind)
    p.Experiment.ch_seed p.Experiment.ch_trace
