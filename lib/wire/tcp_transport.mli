(** Real-socket implementation of {!Edc_simnet.Transport}.

    A hub multiplexes any number of local addresses (replicas and clients
    of one process) over loopback TCP: address [a] listens on
    [base_port + a], sends open one outbound connection per (src, dst)
    pair, and {!poll} drains readable sockets and dispatches complete
    frames to registered handlers.

    Stream framing (independent of the {!Wire} frame inside):

    {v [u32 BE frame length] [u32 BE source address] [message bytes] v}

    where the length covers the source word and the message.  Reads are
    buffered per connection, so frames split across TCP segments are
    reassembled, and complete frames are decoded {e in place} from the
    reassembly buffer (no per-frame copy); malformed messages (decoder
    [Error]) and oversized declared lengths are counted and dropped
    without raising — the wire is as untrusted as in-sim bytes.

    Sends are {e corked}: each outbound connection owns an {!Outbuf},
    [send] appends a framed message to it without a syscall, and the
    cork is flushed once per {!poll} / {!drive} step, so an N-message
    burst costs one [write].  Partial writes retain the unwritten suffix
    for the next flush.  [send_many] (via {!transport}) encodes the
    message once and corks the same bytes on every destination —
    encode-once broadcast.  Sockets use [TCP_NODELAY]; corking replaces
    Nagle batching under our control.

    Sends remain fire-and-forget, matching {!Edc_simnet.Net}: a refused
    connection or broken pipe drops the message (and is counted), and the
    replication layer's retransmission recovers, exactly as it does from
    simulated link loss.

    The event loop bridges wall clock and virtual clock: {!drive} runs the
    simulator's timers against elapsed real time and polls the sockets in
    between, so unmodified [Sim]-scheduled replica code (heartbeats,
    elections, client fibers) runs in real time. *)

type 'm t

(** [create ~sim ~base_port ~encode ~decode ()] — a hub for one process.
    [decode s ~pos ~len] is applied to every received message body {e in
    place} in the reassembly buffer (decoders must not retain [s]);
    [Error] counts as a decode failure and the frame is dropped. *)
val create :
  sim:Edc_simnet.Sim.t ->
  base_port:int ->
  encode:('m -> string) ->
  decode:(string -> pos:int -> len:int -> ('m, string) result) ->
  unit ->
  'm t

(** The {!Edc_simnet.Transport} view: hand this to servers and clients. *)
val transport : 'm t -> 'm Edc_simnet.Transport.t

(** [poll t ~timeout] — accept, read, reassemble, dispatch; returns after
    [timeout] seconds if nothing is readable. *)
val poll : 'm t -> timeout:float -> unit

(** [drive t ~wall] — pump loop: advance the simulator's virtual clock in
    step with elapsed wall-clock time and poll sockets, for [wall]
    seconds. *)
val drive : 'm t -> wall:float -> unit

(** Close every socket (listeners and connections). *)
val shutdown : 'm t -> unit

(** Counters. *)

val encodes : 'm t -> int
val decode_errors : 'm t -> int
val send_failures : 'm t -> int
val frames_received : 'm t -> int
val bytes_sent : 'm t -> int
