(** Binary framing: tag + minimal varint length + payload (see the
    interface and DESIGN.md §6g). *)

type t = Int of int | Str of string | List of t list

let max_depth = 64

(* Tag registry — never reuse a retired value (§6g). *)
let tag_int = 0x01
let tag_str = 0x02
let tag_list = 0x03

(* ------------------------------------------------------------------ *)
(* Varints                                                             *)
(* ------------------------------------------------------------------ *)

(* Unsigned LEB128 over the full 63-bit word; the operand is treated as a
   bit pattern, so zigzagged negatives (top bit set) encode in ≤ 9 bytes. *)

let varint_size n =
  let rec go n acc = if n lsr 7 = 0 then acc else go (n lsr 7) (acc + 1) in
  go n 1

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag u = (u lsr 1) lxor (- (u land 1))

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let rec payload_size depth v =
  match v with
  | Int n -> varint_size (zigzag n)
  | Str s -> String.length s
  | List l ->
      if depth >= max_depth then
        invalid_arg "Wire.encode: tree deeper than max_depth";
      List.fold_left (fun acc c -> acc + frame_size (depth + 1) c) 0 l

and frame_size depth v =
  let p = payload_size depth v in
  1 + varint_size p + p

let size v = frame_size 1 v

let encode v =
  let total = frame_size 1 v in
  let b = Bytes.create total in
  let pos = ref 0 in
  let put_byte c =
    Bytes.unsafe_set b !pos (Char.unsafe_chr c);
    incr pos
  in
  let put_varint n =
    let n = ref n in
    let fin = ref false in
    while not !fin do
      let byte = !n land 0x7f in
      n := !n lsr 7;
      if !n = 0 then begin
        put_byte byte;
        fin := true
      end
      else put_byte (byte lor 0x80)
    done
  in
  let rec go depth v =
    match v with
    | Int n ->
        put_byte tag_int;
        let z = zigzag n in
        put_varint (varint_size z);
        put_varint z
    | Str s ->
        put_byte tag_str;
        let len = String.length s in
        put_varint len;
        Bytes.blit_string s 0 b !pos len;
        pos := !pos + len
    | List l ->
        put_byte tag_list;
        put_varint (payload_size depth v);
        List.iter (go (depth + 1)) l
  in
  go 1 v;
  Bytes.unsafe_to_string b

(* ------------------------------------------------------------------ *)
(* Decoding (total: any input, clean [Error])                          *)
(* ------------------------------------------------------------------ *)

exception Fail of string

let decode s =
  let input_len = String.length s in
  let get pos = Char.code (String.unsafe_get s pos) in
  (* Minimal-length check: a multi-byte varint whose final (most
     significant) group is zero has a shorter encoding — reject, so each
     value has exactly one accepted byte string. *)
  let read_varint pos limit =
    let value = ref 0
    and shift = ref 0
    and p = ref pos
    and last = ref 0
    and count = ref 0
    and fin = ref false in
    while not !fin do
      if !p >= limit then
        raise
          (Fail
             (Printf.sprintf
                "truncated varint at byte %d (input ends at byte %d)" !p limit));
      if !count >= 9 then
        raise
          (Fail
             (Printf.sprintf
                "varint too long at byte %d (10th continuation byte; max 9)"
                pos));
      let b = get !p in
      incr p;
      incr count;
      last := b land 0x7f;
      value := !value lor (!last lsl !shift);
      shift := !shift + 7;
      if b land 0x80 = 0 then fin := true
    done;
    if !count > 1 && !last = 0 then
      raise
        (Fail
           (Printf.sprintf
              "non-minimal varint at byte %d (final group is zero)" pos));
    (!value, !p)
  in
  (* [limit] is the end of the enclosing payload: a frame may never read —
     or declare a length reaching — past it, which kills length bombs
     before any allocation. *)
  let rec parse depth pos limit =
    if depth > max_depth then
      raise
        (Fail
           (Printf.sprintf "nesting deeper than %d at byte %d" max_depth pos));
    if pos >= limit then
      raise
        (Fail
           (Printf.sprintf
              "truncated frame: expected a tag at byte %d but input ends at \
               byte %d"
              pos limit));
    let tag = get pos in
    let len, p = read_varint (pos + 1) limit in
    if len < 0 || len > limit - p then
      raise
        (Fail
           (Printf.sprintf
              "declared length %d at byte %d exceeds the %d bytes available"
              len (pos + 1) (limit - p)));
    let pend = p + len in
    if tag = tag_int then begin
      let z, q = read_varint p pend in
      if q <> pend then
        raise
          (Fail
             (Printf.sprintf
                "int payload length mismatch at byte %d: varint ends at byte \
                 %d, declared end is byte %d"
                p q pend));
      (Int (unzigzag z), pend)
    end
    else if tag = tag_str then (Str (String.sub s p len), pend)
    else if tag = tag_list then begin
      let items = ref [] in
      let q = ref p in
      while !q < pend do
        let v, q' = parse (depth + 1) !q pend in
        items := v :: !items;
        q := q'
      done;
      (List (List.rev !items), pend)
    end
    else
      raise
        (Fail
           (Printf.sprintf
              "unknown tag 0x%02x at byte %d (expected 0x%02x int, 0x%02x \
               str, or 0x%02x list)"
              tag pos tag_int tag_str tag_list))
  in
  match parse 1 0 input_len with
  | v, pos ->
      if pos <> input_len then
        Error
          (Printf.sprintf "trailing bytes: frame ends at byte %d of %d" pos
             input_len)
      else Ok v
  | exception Fail msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let kind = function Int _ -> "int" | Str _ -> "str" | List _ -> "list"
let to_int = function Int n -> Ok n | v -> Error ("expected int, got " ^ kind v)
let to_str = function Str s -> Ok s | v -> Error ("expected str, got " ^ kind v)

let to_list = function
  | List l -> Ok l
  | v -> Error ("expected list, got " ^ kind v)

let bool_ b = Int (if b then 1 else 0)

let to_bool = function
  | Int 0 -> Ok false
  | Int 1 -> Ok true
  | v -> Error ("expected bool, got " ^ kind v)

let option f = function None -> List [] | Some x -> List [ f x ]

let to_option f = function
  | List [] -> Ok None
  | List [ x ] -> Result.map Option.some (f x)
  | v -> Error ("expected option, got " ^ kind v)

let map_list f v =
  match v with
  | List l ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
            match f x with Ok y -> go (y :: acc) rest | Error _ as e -> e)
      in
      go [] l
  | v -> Error ("expected list, got " ^ kind v)

let rec pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "%S" s
  | List l ->
      Format.fprintf ppf "(@[%a@])" (Format.pp_print_list ~pp_sep:Format.pp_print_space pp) l
