(** Binary framing: tag + minimal varint length + payload (see the
    interface and DESIGN.md §6g). *)

type t = Int of int | Str of string | List of t list
type tree = t

let max_depth = 64

(* Tag registry — never reuse a retired value (§6g). *)
let tag_int = 0x01
let tag_str = 0x02
let tag_list = 0x03

(* ------------------------------------------------------------------ *)
(* Varints                                                             *)
(* ------------------------------------------------------------------ *)

(* Unsigned LEB128 over the full 63-bit word; the operand is treated as a
   bit pattern, so zigzagged negatives (top bit set) encode in ≤ 9 bytes. *)

let varint_size n =
  let rec go n acc = if n lsr 7 = 0 then acc else go (n lsr 7) (acc + 1) in
  go n 1

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag u = (u lsr 1) lxor (- (u land 1))

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let rec payload_size depth v =
  match v with
  | Int n -> varint_size (zigzag n)
  | Str s -> String.length s
  | List l ->
      if depth >= max_depth then
        invalid_arg "Wire.encode: tree deeper than max_depth";
      List.fold_left (fun acc c -> acc + frame_size (depth + 1) c) 0 l

and frame_size depth v =
  let p = payload_size depth v in
  1 + varint_size p + p

let size v = frame_size 1 v

let encode v =
  let total = frame_size 1 v in
  let b = Bytes.create total in
  let pos = ref 0 in
  let put_byte c =
    Bytes.unsafe_set b !pos (Char.unsafe_chr c);
    incr pos
  in
  let put_varint n =
    let n = ref n in
    let fin = ref false in
    while not !fin do
      let byte = !n land 0x7f in
      n := !n lsr 7;
      if !n = 0 then begin
        put_byte byte;
        fin := true
      end
      else put_byte (byte lor 0x80)
    done
  in
  let rec go depth v =
    match v with
    | Int n ->
        put_byte tag_int;
        let z = zigzag n in
        put_varint (varint_size z);
        put_varint z
    | Str s ->
        put_byte tag_str;
        let len = String.length s in
        put_varint len;
        Bytes.blit_string s 0 b !pos len;
        pos := !pos + len
    | List l ->
        put_byte tag_list;
        put_varint (payload_size depth v);
        List.iter (go (depth + 1)) l
  in
  go 1 v;
  Bytes.unsafe_to_string b

(* ------------------------------------------------------------------ *)
(* Decoding (total: any input, clean [Error])                          *)
(* ------------------------------------------------------------------ *)

exception Fail of string

let decode s =
  let input_len = String.length s in
  let get pos = Char.code (String.unsafe_get s pos) in
  (* Minimal-length check: a multi-byte varint whose final (most
     significant) group is zero has a shorter encoding — reject, so each
     value has exactly one accepted byte string. *)
  let read_varint pos limit =
    let value = ref 0
    and shift = ref 0
    and p = ref pos
    and last = ref 0
    and count = ref 0
    and fin = ref false in
    while not !fin do
      if !p >= limit then
        raise
          (Fail
             (Printf.sprintf
                "truncated varint at byte %d (input ends at byte %d)" !p limit));
      if !count >= 9 then
        raise
          (Fail
             (Printf.sprintf
                "varint too long at byte %d (10th continuation byte; max 9)"
                pos));
      let b = get !p in
      incr p;
      incr count;
      last := b land 0x7f;
      value := !value lor (!last lsl !shift);
      shift := !shift + 7;
      if b land 0x80 = 0 then fin := true
    done;
    if !count > 1 && !last = 0 then
      raise
        (Fail
           (Printf.sprintf
              "non-minimal varint at byte %d (final group is zero)" pos));
    (!value, !p)
  in
  (* [limit] is the end of the enclosing payload: a frame may never read —
     or declare a length reaching — past it, which kills length bombs
     before any allocation. *)
  let rec parse depth pos limit =
    if depth > max_depth then
      raise
        (Fail
           (Printf.sprintf "nesting deeper than %d at byte %d" max_depth pos));
    if pos >= limit then
      raise
        (Fail
           (Printf.sprintf
              "truncated frame: expected a tag at byte %d but input ends at \
               byte %d"
              pos limit));
    let tag = get pos in
    let len, p = read_varint (pos + 1) limit in
    if len < 0 || len > limit - p then
      raise
        (Fail
           (Printf.sprintf
              "declared length %d at byte %d exceeds the %d bytes available"
              len (pos + 1) (limit - p)));
    let pend = p + len in
    if tag = tag_int then begin
      let z, q = read_varint p pend in
      if q <> pend then
        raise
          (Fail
             (Printf.sprintf
                "int payload length mismatch at byte %d: varint ends at byte \
                 %d, declared end is byte %d"
                p q pend));
      (Int (unzigzag z), pend)
    end
    else if tag = tag_str then (Str (String.sub s p len), pend)
    else if tag = tag_list then begin
      let items = ref [] in
      let q = ref p in
      while !q < pend do
        let v, q' = parse (depth + 1) !q pend in
        items := v :: !items;
        q := q'
      done;
      (List (List.rev !items), pend)
    end
    else
      raise
        (Fail
           (Printf.sprintf
              "unknown tag 0x%02x at byte %d (expected 0x%02x int, 0x%02x \
               str, or 0x%02x list)"
              tag pos tag_int tag_str tag_list))
  in
  match parse 1 0 input_len with
  | v, pos ->
      if pos <> input_len then
        Error
          (Printf.sprintf "trailing bytes: frame ends at byte %d of %d" pos
             input_len)
      else Ok v
  | exception Fail msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let kind = function Int _ -> "int" | Str _ -> "str" | List _ -> "list"
let to_int = function Int n -> Ok n | v -> Error ("expected int, got " ^ kind v)
let to_str = function Str s -> Ok s | v -> Error ("expected str, got " ^ kind v)

let to_list = function
  | List l -> Ok l
  | v -> Error ("expected list, got " ^ kind v)

let bool_ b = Int (if b then 1 else 0)

let to_bool = function
  | Int 0 -> Ok false
  | Int 1 -> Ok true
  | v -> Error ("expected bool, got " ^ kind v)

let option f = function None -> List [] | Some x -> List [ f x ]

let to_option f = function
  | List [] -> Ok None
  | List [ x ] -> Result.map Option.some (f x)
  | v -> Error ("expected option, got " ^ kind v)

let map_list f v =
  match v with
  | List l ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
            match f x with Ok y -> go (y :: acc) rest | Error _ as e -> e)
      in
      go [] l
  | v -> Error ("expected list, got " ^ kind v)

let rec pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "%S" s
  | List l ->
      Format.fprintf ppf "(@[%a@])" (Format.pp_print_list ~pp_sep:Format.pp_print_space pp) l

(* ------------------------------------------------------------------ *)
(* Streaming writer (zero-tree fast path)                              *)
(* ------------------------------------------------------------------ *)

module Writer = struct
  type w = {
    mutable buf : Bytes.t;
    mutable pos : int;
    mutable stack : int array; (* start offsets of open list frames *)
    mutable sp : int;
  }

  type t = w

  let create ?(capacity = 4096) () =
    { buf = Bytes.create capacity; pos = 0; stack = Array.make 16 0; sp = 0 }

  let reset w =
    w.pos <- 0;
    w.sp <- 0

  (* A small free list bounds steady-state allocation: the hot send path
     allocs a writer per frame, and without pooling every message would
     re-grow a fresh 4 KiB buffer.  Writers that grew beyond
     [max_retained] are dropped so one 100 MB snapshot doesn't pin its
     buffer forever. *)
  let max_pooled = 8
  let max_retained = 1 lsl 20
  let pool : w list ref = ref []
  let pooled = ref 0

  let alloc () =
    match !pool with
    | [] -> create ()
    | w :: rest ->
        pool := rest;
        decr pooled;
        reset w;
        w

  let release w =
    if Bytes.length w.buf <= max_retained && !pooled < max_pooled then begin
      pool := w :: !pool;
      incr pooled
    end

  let ensure w n =
    let need = w.pos + n in
    let cap = Bytes.length w.buf in
    if need > cap then begin
      let cap = ref (cap * 2) in
      while !cap < need do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit w.buf 0 nb 0 w.pos;
      w.buf <- nb
    end

  let put_byte w c =
    Bytes.unsafe_set w.buf w.pos (Char.unsafe_chr c);
    w.pos <- w.pos + 1

  let put_varint w n =
    let n = ref n in
    let fin = ref false in
    while not !fin do
      let byte = !n land 0x7f in
      n := !n lsr 7;
      if !n = 0 then begin
        put_byte w byte;
        fin := true
      end
      else put_byte w (byte lor 0x80)
    done

  (* Fast path: a zigzagged value below 0x80 is one varint byte, whose
     own length varint is the single byte 0x01 — three bytes total,
     written without the generic varint loops.  Identical bytes to the
     general path, which handles everything larger. *)
  let int w n =
    let z = zigzag n in
    if z >= 0 && z < 0x80 then begin
      ensure w 3;
      put_byte w tag_int;
      put_byte w 1;
      put_byte w z
    end
    else begin
      let zsz = varint_size z in
      ensure w (1 + varint_size zsz + zsz);
      put_byte w tag_int;
      put_varint w zsz;
      put_varint w z
    end

  let str w s =
    let len = String.length s in
    if len < 0x80 then begin
      ensure w (2 + len);
      put_byte w tag_str;
      put_byte w len;
      Bytes.blit_string s 0 w.buf w.pos len;
      w.pos <- w.pos + len
    end
    else begin
      ensure w (1 + varint_size len + len);
      put_byte w tag_str;
      put_varint w len;
      Bytes.blit_string s 0 w.buf w.pos len;
      w.pos <- w.pos + len
    end

  let bool w b = int w (if b then 1 else 0)

  let begin_list w =
    if w.sp + 1 >= max_depth then
      invalid_arg "Wire.Writer: tree deeper than max_depth";
    if w.sp = Array.length w.stack then begin
      let ns = Array.make (w.sp * 2) 0 in
      Array.blit w.stack 0 ns 0 w.sp;
      w.stack <- ns
    end;
    w.stack.(w.sp) <- w.pos;
    w.sp <- w.sp + 1

  (* Children were written where the list's payload will sit; now that the
     payload length is known, shift them right by the header size and
     write [tag_list][varint len] in front.  The shift costs a memmove of
     [plen] bytes per nesting level — trivial next to the tree allocation
     the streaming path avoids — and yields bytes identical to [encode]. *)
  let end_list w =
    if w.sp = 0 then invalid_arg "Wire.Writer.end_list: no open list";
    w.sp <- w.sp - 1;
    let start = w.stack.(w.sp) in
    let plen = w.pos - start in
    if plen < 0x80 then begin
      (* single-byte length varint: two-byte header, no varint loop *)
      ensure w 2;
      Bytes.blit w.buf start w.buf (start + 2) plen;
      Bytes.unsafe_set w.buf start (Char.unsafe_chr tag_list);
      Bytes.unsafe_set w.buf (start + 1) (Char.unsafe_chr plen);
      w.pos <- w.pos + 2
    end
    else begin
      let hdr = 1 + varint_size plen in
      ensure w hdr;
      Bytes.blit w.buf start w.buf (start + hdr) plen;
      let fin = w.pos + hdr in
      w.pos <- start;
      put_byte w tag_list;
      put_varint w plen;
      w.pos <- fin
    end

  let option w f = function
    | None ->
        begin_list w;
        end_list w
    | Some x ->
        begin_list w;
        f w x;
        end_list w

  let list w f l =
    begin_list w;
    List.iter (f w) l;
    end_list w

  let rec tree w = function
    | Int n -> int w n
    | Str s -> str w s
    | List l ->
        begin_list w;
        List.iter (tree w) l;
        end_list w

  let contents w =
    if w.sp <> 0 then invalid_arg "Wire.Writer.contents: open list";
    Bytes.sub_string w.buf 0 w.pos

  let with_writer f =
    let w = alloc () in
    match f w with
    | () ->
        let s = contents w in
        release w;
        s
    | exception e ->
        release w;
        raise e
end

(* ------------------------------------------------------------------ *)
(* Streaming reader (slice cursor; total, like [decode])               *)
(* ------------------------------------------------------------------ *)

module Reader = struct
  type r = {
    s : string;
    base : int; (* frame start in [s]; error offsets are relative to it *)
    input_end : int;
    mutable pos : int;
    mutable limits : int array; (* payload-end offsets of open lists *)
    mutable sp : int;
  }

  type t = r

  exception Fail of string

  let off r = r.pos - r.base
  let error _r msg = raise (Fail msg)

  let fail r fmt =
    Printf.ksprintf (fun m -> error r m) fmt

  let limit r = if r.sp = 0 then r.input_end else r.limits.(r.sp - 1)
  let get r p = Char.code (String.unsafe_get r.s p)

  (* Same acceptance rules as [decode]'s varint reader: bounded by the
     enclosing payload, ≤ 9 bytes, minimal length. *)
  let read_varint r lim =
    let start = off r in
    let value = ref 0
    and shift = ref 0
    and last = ref 0
    and count = ref 0
    and fin = ref false in
    while not !fin do
      if r.pos >= lim then
        fail r "truncated varint at byte %d (input ends at byte %d)" (off r)
          (lim - r.base);
      if !count >= 9 then
        fail r "varint too long at byte %d (10th continuation byte; max 9)"
          start;
      let b = get r r.pos in
      r.pos <- r.pos + 1;
      incr count;
      last := b land 0x7f;
      value := !value lor (!last lsl !shift);
      shift := !shift + 7;
      if b land 0x80 = 0 then fin := true
    done;
    if !count > 1 && !last = 0 then
      fail r "non-minimal varint at byte %d (final group is zero)" start;
    !value

  let check_frame r tag name =
    if r.sp + 1 > max_depth then
      fail r "nesting deeper than %d at byte %d" max_depth (off r);
    let lim = limit r in
    if r.pos >= lim then
      fail r
        "truncated frame: expected a tag at byte %d but input ends at byte %d"
        (off r) (lim - r.base);
    let t = get r r.pos in
    if t <> tag then
      fail r "expected %s (tag 0x%02x) at byte %d, got tag 0x%02x" name tag
        (off r) t;
    r.pos <- r.pos + 1;
    let len_at = off r in
    let len = read_varint r lim in
    if len > lim - r.pos then
      fail r "declared length %d at byte %d exceeds the %d bytes available" len
        len_at (lim - r.pos);
    r.pos + len

  let int_slow r =
    let pend = check_frame r tag_int "int" in
    let z = read_varint r pend in
    if r.pos <> pend then
      fail r
        "int payload length mismatch at byte %d: varint ends at byte %d, \
         declared end is byte %d"
        (off r) (off r) (pend - r.base);
    unzigzag z

  (* Fast path for [tag_int][0x01][b < 0x80] — the dominant frame in real
     traffic.  Every acceptance rule collapses: one payload byte without
     a continuation bit is a minimal varint ending exactly at the
     declared end, and the depth check only matters at [max_depth]
     (guarded).  Anything else falls back to the checking path. *)
  let int r =
    let p = r.pos in
    if
      r.sp < max_depth
      && p + 3 <= limit r
      && get r p = tag_int
      && get r (p + 1) = 1
      && get r (p + 2) < 0x80
    then begin
      r.pos <- p + 3;
      unzigzag (get r (p + 2))
    end
    else int_slow r

  let str_slow r =
    let pend = check_frame r tag_str "str" in
    let v = String.sub r.s r.pos (pend - r.pos) in
    r.pos <- pend;
    v

  let str r =
    let p = r.pos in
    let lim = limit r in
    if r.sp < max_depth && p + 2 <= lim && get r p = tag_str then begin
      let len = get r (p + 1) in
      if len < 0x80 && len <= lim - (p + 2) then begin
        let v = String.sub r.s (p + 2) len in
        r.pos <- p + 2 + len;
        v
      end
      else str_slow r
    end
    else str_slow r

  let bool r =
    match int r with
    | 0 -> false
    | 1 -> true
    | n -> fail r "expected bool, got %d" n

  let begin_list_slow r =
    let pend = check_frame r tag_list "list" in
    if r.sp = Array.length r.limits then begin
      let nl = Array.make (r.sp * 2) 0 in
      Array.blit r.limits 0 nl 0 r.sp;
      r.limits <- nl
    end;
    r.limits.(r.sp) <- pend;
    r.sp <- r.sp + 1

  let begin_list r =
    let p = r.pos in
    let lim = limit r in
    if
      r.sp < max_depth
      && r.sp < Array.length r.limits
      && p + 2 <= lim
      && get r p = tag_list
    then begin
      let len = get r (p + 1) in
      if len < 0x80 && len <= lim - (p + 2) then begin
        r.limits.(r.sp) <- p + 2 + len;
        r.sp <- r.sp + 1;
        r.pos <- p + 2
      end
      else begin_list_slow r
    end
    else begin_list_slow r

  let has_more r = r.sp > 0 && r.pos < r.limits.(r.sp - 1)

  (* Closing a list with unread items is a shape error — the streaming
     readers are exactly as strict as the tree decoders' full pattern
     matches, which reject trailing elements. *)
  let end_list r =
    if r.sp = 0 then invalid_arg "Wire.Reader.end_list: no open list";
    let lim = r.limits.(r.sp - 1) in
    if r.pos <> lim then
      fail r "unconsumed bytes in list at byte %d (payload ends at byte %d)"
        (off r) (lim - r.base);
    r.sp <- r.sp - 1

  let peek_list r =
    let lim = limit r in
    r.pos < lim && get r r.pos = tag_list

  let option r f =
    begin_list r;
    let v = if has_more r then Some (f r) else None in
    end_list r;
    v

  let list r f =
    begin_list r;
    let acc = ref [] in
    while has_more r do
      acc := f r :: !acc
    done;
    end_list r;
    List.rev !acc

  let rec tree r =
    let lim = limit r in
    if r.pos >= lim then
      fail r
        "truncated frame: expected a tag at byte %d but input ends at byte %d"
        (off r) (lim - r.base);
    let t = get r r.pos in
    if t = tag_int then Int (int r)
    else if t = tag_str then Str (str r)
    else if t = tag_list then begin
      begin_list r;
      let items = ref [] in
      while has_more r do
        items := tree r :: !items
      done;
      end_list r;
      List (List.rev !items)
    end
    else
      fail r
        "unknown tag 0x%02x at byte %d (expected 0x%02x int, 0x%02x str, or \
         0x%02x list)"
        t (off r) tag_int tag_str tag_list

  let run_sub s ~pos ~len f =
    if pos < 0 || len < 0 || pos + len > String.length s then
      Error
        (Printf.sprintf "Wire.Reader.run_sub: slice [%d,%d) out of bounds" pos
           (pos + len))
    else
      let r =
        { s; base = pos; input_end = pos + len; pos; limits = Array.make 16 0; sp = 0 }
      in
      match f r with
      | v ->
          if r.sp <> 0 then Error "reader finished with an open list"
          else if r.pos <> r.input_end then
            Error
              (Printf.sprintf "trailing bytes: frame ends at byte %d of %d"
                 (off r) len)
          else Ok v
      | exception Fail msg -> Error msg

  let run s f = run_sub s ~pos:0 ~len:(String.length s) f
end
