(** Loopback-TCP transport hub (see the interface). *)

open Edc_simnet

(* Hard ceiling on a declared frame length: a stream that claims more is
   corrupt (or hostile) and the connection is dropped — we never allocate
   attacker-declared amounts beyond it. *)
let max_frame = 64 * 1024 * 1024

type conn = {
  fd : Unix.file_descr;
  dst_addr : int;  (** local address this connection delivers to *)
  mutable inbuf : Bytes.t;
  mutable in_start : int;  (** first unconsumed byte *)
  mutable in_len : int;  (** one past the last received byte *)
}

type out_conn = { ofd : Unix.file_descr; obuf : Outbuf.t }

type 'm t = {
  sim : Sim.t;
  base_port : int;
  encode : 'm -> string;
  decode : string -> pos:int -> len:int -> ('m, string) result;
  handlers : (int, 'm Net.handler) Hashtbl.t;
  listeners : (int, Unix.file_descr) Hashtbl.t;  (** local addr -> socket *)
  accepted : (Unix.file_descr, conn) Hashtbl.t;
  outbound : (int * int, out_conn) Hashtbl.t;  (** (src, dst) *)
  mutable n_encodes : int;
  mutable n_decode_errors : int;
  mutable n_send_failures : int;
  mutable n_frames_received : int;
  mutable n_bytes_sent : int;
  mutable closed : bool;
}

let create ~sim ~base_port ~encode ~decode () =
  {
    sim;
    base_port;
    encode;
    decode;
    handlers = Hashtbl.create 16;
    listeners = Hashtbl.create 16;
    accepted = Hashtbl.create 16;
    outbound = Hashtbl.create 16;
    n_encodes = 0;
    n_decode_errors = 0;
    n_send_failures = 0;
    n_frames_received = 0;
    n_bytes_sent = 0;
    closed = false;
  }

let encodes t = t.n_encodes
let decode_errors t = t.n_decode_errors
let send_failures t = t.n_send_failures
let frames_received t = t.n_frames_received
let bytes_sent t = t.n_bytes_sent

let loopback port = Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let register t addr handler =
  if not (Hashtbl.mem t.listeners addr) then begin
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (loopback (t.base_port + addr));
    Unix.listen fd 64;
    Hashtbl.replace t.listeners addr fd
  end;
  Hashtbl.replace t.handlers addr handler

let drop_outbound t key =
  match Hashtbl.find_opt t.outbound key with
  | Some oc ->
      (try Unix.close oc.ofd with Unix.Unix_error _ -> ());
      Hashtbl.remove t.outbound key
  | None -> ()

let get_u32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

(* [write] hook for {!Outbuf.flush}: 0 means "kernel buffer full, retry
   on a later poll"; hard errors propagate to the caller. *)
let write_some fd b off len =
  match Unix.write fd b off len with
  | n -> n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      0

(* Flush [oc]'s corked bytes.  A partial write retains the unwritten
   suffix inside the Outbuf; a hard error drops the connection and
   everything queued on it (fire-and-forget, like simulated link loss). *)
let flush_out t key oc =
  match Outbuf.flush oc.obuf ~write:(write_some oc.ofd) with
  | n -> t.n_bytes_sent <- t.n_bytes_sent + n
  | exception Unix.Unix_error _ ->
      t.n_send_failures <- t.n_send_failures + 1;
      drop_outbound t key

let flush_all t =
  if Hashtbl.length t.outbound > 0 then begin
    (* snapshot the keys: flush_out may remove entries on error *)
    let live = Hashtbl.fold (fun k oc acc -> (k, oc) :: acc) t.outbound [] in
    List.iter
      (fun (key, oc) -> if Outbuf.pending oc.obuf > 0 then flush_out t key oc)
      live
  end

(* If a connection's cork grows past this without a successful flush, we
   try to drain it inline from the send path so memory stays bounded even
   if the caller sends a burst without polling. *)
let cork_soft_limit = 256 * 1024

let out_conn t key dst =
  match Hashtbl.find_opt t.outbound key with
  | Some oc -> Some oc
  | None -> (
      match
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        (try Unix.connect fd (loopback (t.base_port + dst))
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        Unix.set_nonblock fd;
        fd
      with
      | fd ->
          let oc = { ofd = fd; obuf = Outbuf.create () } in
          Hashtbl.replace t.outbound key oc;
          Some oc
      | exception Unix.Unix_error _ ->
          t.n_send_failures <- t.n_send_failures + 1;
          None)

(* Append one framed message to [dst]'s cork; no syscall on this path
   unless the cork is oversized. *)
let enqueue t ~src ~dst body =
  let key = (src, dst) in
  match out_conn t key dst with
  | None -> ()
  | Some oc ->
      let len = String.length body in
      Outbuf.add_u32 oc.obuf (4 + len);
      Outbuf.add_u32 oc.obuf src;
      Outbuf.add_substring oc.obuf body 0 len;
      if Outbuf.pending oc.obuf > cork_soft_limit then flush_out t key oc

(* Fire-and-forget, like the simulated network: any socket error drops the
   message, closes the connection, and replication-level retransmission
   recovers. *)
let send t ~src ~dst ~size:_ msg =
  if not t.closed then begin
    t.n_encodes <- t.n_encodes + 1;
    enqueue t ~src ~dst (t.encode msg)
  end

(* Encode-once broadcast: one serialization, the same bytes corked on
   every destination's connection. *)
let send_many t ~src ~dsts ~size:_ msg =
  if not t.closed then begin
    t.n_encodes <- t.n_encodes + 1;
    let body = t.encode msg in
    List.iter (fun dst -> enqueue t ~src ~dst body) dsts
  end

let transport t =
  {
    Transport.send = send t;
    send_many = send_many t;
    register = register t;
  }

let close_conn t conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Hashtbl.remove t.accepted conn.fd

(* Extract every complete frame from [conn]'s buffer and dispatch it.
   Frames are decoded in place from the reassembly buffer (no per-frame
   copy); [in_start] advances over consumed frames and the residue is
   compacted once per read, not once per frame. *)
let dispatch t conn =
  let again = ref true in
  while !again do
    again := false;
    if conn.in_len - conn.in_start >= 4 then begin
      let len = get_u32 conn.inbuf conn.in_start in
      if len < 4 || len > max_frame then begin
        t.n_decode_errors <- t.n_decode_errors + 1;
        close_conn t conn (* framing is lost; no way to resync *)
      end
      else if conn.in_len - conn.in_start >= 4 + len then begin
        let src = get_u32 conn.inbuf (conn.in_start + 4) in
        let body_pos = conn.in_start + 8 in
        let body_len = len - 4 in
        conn.in_start <- conn.in_start + 4 + len;
        t.n_frames_received <- t.n_frames_received + 1;
        (* The string view of the buffer is only read during this call,
           before any further mutation of [inbuf], so the unsafe cast
           cannot observe a change. *)
        let view = Bytes.unsafe_to_string conn.inbuf in
        (match t.decode view ~pos:body_pos ~len:body_len with
        | Error _ -> t.n_decode_errors <- t.n_decode_errors + 1
        | Ok msg -> (
            match Hashtbl.find_opt t.handlers conn.dst_addr with
            | Some handler -> handler ~src ~size:body_len msg
            | None -> ()));
        again := Hashtbl.mem t.accepted conn.fd
      end
    end
  done;
  if Hashtbl.mem t.accepted conn.fd then begin
    let live = conn.in_len - conn.in_start in
    if conn.in_start > 0 then begin
      if live > 0 then Bytes.blit conn.inbuf conn.in_start conn.inbuf 0 live;
      conn.in_start <- 0;
      conn.in_len <- live
    end
  end

let read_conn t conn =
  let chunk = 65536 in
  if Bytes.length conn.inbuf - conn.in_len < chunk then begin
    let bigger =
      Bytes.create (Stdlib.max (2 * Bytes.length conn.inbuf) (conn.in_len + chunk))
    in
    Bytes.blit conn.inbuf 0 bigger 0 conn.in_len;
    conn.inbuf <- bigger
  end;
  match Unix.read conn.fd conn.inbuf conn.in_len chunk with
  | 0 -> close_conn t conn
  | n ->
      conn.in_len <- conn.in_len + n;
      dispatch t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> close_conn t conn

let poll t ~timeout =
  if not t.closed then begin
    (* uncork first so bytes produced since the last poll hit the wire
       before we sleep in select *)
    flush_all t;
    let listener_fds = Hashtbl.fold (fun _ fd acc -> fd :: acc) t.listeners [] in
    let conn_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.accepted [] in
    (match Unix.select (listener_fds @ conn_fds) [] [] timeout with
    | readable, _, _ ->
        List.iter
          (fun fd ->
            match Hashtbl.find_opt t.accepted fd with
            | Some conn -> read_conn t conn
            | None -> (
                (* a listener: accept and attach the connection to the
                   listening address *)
                let addr =
                  Hashtbl.fold
                    (fun a lfd acc -> if lfd = fd then Some a else acc)
                    t.listeners None
                in
                match addr with
                | None -> ()
                | Some dst_addr -> (
                    match Unix.accept fd with
                    | conn_fd, _ ->
                        Hashtbl.replace t.accepted conn_fd
                          {
                            fd = conn_fd;
                            dst_addr;
                            inbuf = Bytes.create 65536;
                            in_start = 0;
                            in_len = 0;
                          }
                    | exception Unix.Unix_error _ -> ())))
          readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    (* uncork replies produced by the handlers we just ran *)
    flush_all t
  end

let drive t ~wall =
  let t0 = Unix.gettimeofday () in
  let virtual0 = Sim.now t.sim in
  let fin = ref false in
  while not !fin do
    let elapsed = Unix.gettimeofday () -. t0 in
    if elapsed >= wall then fin := true
    else begin
      Sim.run t.sim ~until:(Sim_time.add virtual0 (Sim_time.of_float_s elapsed));
      poll t ~timeout:0.001
    end
  done

let shutdown t =
  if not t.closed then begin
    flush_all t;
    t.closed <- true;
    Hashtbl.iter
      (fun _ fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.listeners;
    Hashtbl.iter
      (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.accepted;
    Hashtbl.iter
      (fun _ oc -> try Unix.close oc.ofd with Unix.Unix_error _ -> ())
      t.outbound;
    Hashtbl.reset t.listeners;
    Hashtbl.reset t.accepted;
    Hashtbl.reset t.outbound
  end
