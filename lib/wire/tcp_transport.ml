(** Loopback-TCP transport hub (see the interface). *)

open Edc_simnet

(* Hard ceiling on a declared frame length: a stream that claims more is
   corrupt (or hostile) and the connection is dropped — we never allocate
   attacker-declared amounts beyond it. *)
let max_frame = 64 * 1024 * 1024

type conn = {
  fd : Unix.file_descr;
  dst_addr : int;  (** local address this connection delivers to *)
  mutable inbuf : Bytes.t;
  mutable in_len : int;
}

type 'm t = {
  sim : Sim.t;
  base_port : int;
  encode : 'm -> string;
  decode : string -> ('m, string) result;
  handlers : (int, 'm Net.handler) Hashtbl.t;
  listeners : (int, Unix.file_descr) Hashtbl.t;  (** local addr -> socket *)
  accepted : (Unix.file_descr, conn) Hashtbl.t;
  outbound : (int * int, Unix.file_descr) Hashtbl.t;  (** (src, dst) *)
  mutable n_decode_errors : int;
  mutable n_send_failures : int;
  mutable n_frames_received : int;
  mutable n_bytes_sent : int;
  mutable closed : bool;
}

let create ~sim ~base_port ~encode ~decode () =
  {
    sim;
    base_port;
    encode;
    decode;
    handlers = Hashtbl.create 16;
    listeners = Hashtbl.create 16;
    accepted = Hashtbl.create 16;
    outbound = Hashtbl.create 16;
    n_decode_errors = 0;
    n_send_failures = 0;
    n_frames_received = 0;
    n_bytes_sent = 0;
    closed = false;
  }

let decode_errors t = t.n_decode_errors
let send_failures t = t.n_send_failures
let frames_received t = t.n_frames_received
let bytes_sent t = t.n_bytes_sent

let loopback port = Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let register t addr handler =
  if not (Hashtbl.mem t.listeners addr) then begin
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (loopback (t.base_port + addr));
    Unix.listen fd 64;
    Hashtbl.replace t.listeners addr fd
  end;
  Hashtbl.replace t.handlers addr handler

let drop_outbound t key =
  match Hashtbl.find_opt t.outbound key with
  | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Hashtbl.remove t.outbound key
  | None -> ()

let put_u32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get_u32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let write_all fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

(* Fire-and-forget, like the simulated network: any socket error drops the
   message, closes the connection, and replication-level retransmission
   recovers. *)
let send t ~src ~dst ~size:_ msg =
  if not t.closed then begin
    let key = (src, dst) in
    let body = t.encode msg in
    let frame = Bytes.create (8 + String.length body) in
    put_u32 frame 0 (4 + String.length body);
    put_u32 frame 4 src;
    Bytes.blit_string body 0 frame 8 (String.length body);
    let attempt fd = write_all fd frame in
    let fresh () =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      Unix.connect fd (loopback (t.base_port + dst));
      Hashtbl.replace t.outbound key fd;
      fd
    in
    match
      match Hashtbl.find_opt t.outbound key with
      | Some fd -> attempt fd
      | None -> attempt (fresh ())
    with
    | () -> t.n_bytes_sent <- t.n_bytes_sent + Bytes.length frame
    | exception Unix.Unix_error _ -> (
        drop_outbound t key;
        (* one reconnect: the old connection may just have gone stale *)
        match attempt (fresh ()) with
        | () -> t.n_bytes_sent <- t.n_bytes_sent + Bytes.length frame
        | exception Unix.Unix_error _ ->
            drop_outbound t key;
            t.n_send_failures <- t.n_send_failures + 1)
  end

let transport t = { Transport.send = send t; register = register t }

let close_conn t conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Hashtbl.remove t.accepted conn.fd

(* Extract every complete frame from [conn]'s buffer and dispatch it. *)
let dispatch t conn =
  let again = ref true in
  while !again do
    again := false;
    if conn.in_len >= 4 then begin
      let len = get_u32 conn.inbuf 0 in
      if len < 4 || len > max_frame then begin
        t.n_decode_errors <- t.n_decode_errors + 1;
        close_conn t conn (* framing is lost; no way to resync *)
      end
      else if conn.in_len >= 4 + len then begin
        let src = get_u32 conn.inbuf 4 in
        let body = Bytes.sub_string conn.inbuf 8 (len - 4) in
        let rest = conn.in_len - (4 + len) in
        Bytes.blit conn.inbuf (4 + len) conn.inbuf 0 rest;
        conn.in_len <- rest;
        t.n_frames_received <- t.n_frames_received + 1;
        (match t.decode body with
        | Error _ -> t.n_decode_errors <- t.n_decode_errors + 1
        | Ok msg -> (
            match Hashtbl.find_opt t.handlers conn.dst_addr with
            | Some handler ->
                handler ~src ~size:(String.length body) msg
            | None -> ()));
        again := Hashtbl.mem t.accepted conn.fd
      end
    end
  done

let read_conn t conn =
  let chunk = 65536 in
  if Bytes.length conn.inbuf - conn.in_len < chunk then begin
    let bigger =
      Bytes.create (Stdlib.max (2 * Bytes.length conn.inbuf) (conn.in_len + chunk))
    in
    Bytes.blit conn.inbuf 0 bigger 0 conn.in_len;
    conn.inbuf <- bigger
  end;
  match Unix.read conn.fd conn.inbuf conn.in_len chunk with
  | 0 -> close_conn t conn
  | n ->
      conn.in_len <- conn.in_len + n;
      dispatch t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> close_conn t conn

let poll t ~timeout =
  if not t.closed then begin
    let listener_fds = Hashtbl.fold (fun _ fd acc -> fd :: acc) t.listeners [] in
    let conn_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.accepted [] in
    match Unix.select (listener_fds @ conn_fds) [] [] timeout with
    | readable, _, _ ->
        List.iter
          (fun fd ->
            match Hashtbl.find_opt t.accepted fd with
            | Some conn -> read_conn t conn
            | None -> (
                (* a listener: accept and attach the connection to the
                   listening address *)
                let addr =
                  Hashtbl.fold
                    (fun a lfd acc -> if lfd = fd then Some a else acc)
                    t.listeners None
                in
                match addr with
                | None -> ()
                | Some dst_addr -> (
                    match Unix.accept fd with
                    | conn_fd, _ ->
                        Hashtbl.replace t.accepted conn_fd
                          {
                            fd = conn_fd;
                            dst_addr;
                            inbuf = Bytes.create 65536;
                            in_len = 0;
                          }
                    | exception Unix.Unix_error _ -> ())))
          readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  end

let drive t ~wall =
  let t0 = Unix.gettimeofday () in
  let virtual0 = Sim.now t.sim in
  let fin = ref false in
  while not !fin do
    let elapsed = Unix.gettimeofday () -. t0 in
    if elapsed >= wall then fin := true
    else begin
      Sim.run t.sim ~until:(Sim_time.add virtual0 (Sim_time.of_float_s elapsed));
      poll t ~timeout:0.001
    end
  done

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    Hashtbl.iter
      (fun _ fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.listeners;
    Hashtbl.iter
      (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.accepted;
    Hashtbl.iter
      (fun _ fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.outbound;
    Hashtbl.reset t.listeners;
    Hashtbl.reset t.accepted;
    Hashtbl.reset t.outbound
  end
