(** Self-describing, length-prefixed binary framing.

    The deployment's untrusted-bytes codec: snapshot blobs, Zab/PBFT
    messages, and the TCP transport all speak frames of this shape
    (DESIGN.md §6g).  A frame is

    {v tag(1 byte)  length(varint)  payload(length bytes) v}

    with three tags: [0x01] signed integer (zigzag varint payload),
    [0x02] byte string (raw payload), [0x03] list (payload is the
    concatenation of the child frames).  Records and variants are encoded
    as lists by the layer above.

    Two properties the rest of the system leans on:

    - {b Deterministic}: [encode] is a pure function of the tree — no
      sharing, no OCaml-version dependence — so equal states produce
      byte-identical blobs (snapshot digests, chunk-transfer resume).
      Varints are minimal-length, so [decode] accepts exactly one byte
      string per tree (canonical form; non-minimal varints are rejected).
    - {b Total}: [decode] treats its input as untrusted.  Truncated,
      malformed, over-long, over-deep, or non-canonical bytes yield a
      clean [Error] — never an exception, never an allocation driven by
      an attacker-declared length beyond the input's actual size. *)

type t = Int of int | Str of string | List of t list

(** Nesting depth [decode] accepts (and [encode] emits) before rejecting;
    bounds stack use against length-bomb inputs. *)
val max_depth : int

(** Size in bytes of the encoded frame. *)
val size : t -> int

(** [encode v] renders one frame.  Raises [Invalid_argument] if the tree
    is deeper than {!max_depth} (a programming error on the {e sending}
    side; decoding never raises). *)
val encode : t -> string

(** [decode s] parses exactly one frame spanning the whole of [s].
    Trailing bytes, truncation, unknown tags, non-minimal varints,
    depth/length violations: all [Error] with a description. *)
val decode : string -> (t, string) result

(** {2 Accessors} — shape checks for untrusted trees, as [result]s so
    decoders compose with [let*]. *)

val to_int : t -> (int, string) result
val to_str : t -> (string, string) result
val to_list : t -> (t list, string) result

val bool_ : bool -> t
val to_bool : t -> (bool, string) result

(** [None] ↦ [List []]; [Some x] ↦ [List [f x]]. *)
val option : ('a -> t) -> 'a option -> t

val to_option : (t -> ('a, string) result) -> t -> ('a option, string) result

(** Decode every element of a [List] frame. *)
val map_list : (t -> ('a, string) result) -> t -> ('a list, string) result

val pp : Format.formatter -> t -> unit
