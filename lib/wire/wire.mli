(** Self-describing, length-prefixed binary framing.

    The deployment's untrusted-bytes codec: snapshot blobs, Zab/PBFT
    messages, and the TCP transport all speak frames of this shape
    (DESIGN.md §6g).  A frame is

    {v tag(1 byte)  length(varint)  payload(length bytes) v}

    with three tags: [0x01] signed integer (zigzag varint payload),
    [0x02] byte string (raw payload), [0x03] list (payload is the
    concatenation of the child frames).  Records and variants are encoded
    as lists by the layer above.

    Two properties the rest of the system leans on:

    - {b Deterministic}: [encode] is a pure function of the tree — no
      sharing, no OCaml-version dependence — so equal states produce
      byte-identical blobs (snapshot digests, chunk-transfer resume).
      Varints are minimal-length, so [decode] accepts exactly one byte
      string per tree (canonical form; non-minimal varints are rejected).
    - {b Total}: [decode] treats its input as untrusted.  Truncated,
      malformed, over-long, over-deep, or non-canonical bytes yield a
      clean [Error] — never an exception, never an allocation driven by
      an attacker-declared length beyond the input's actual size. *)

type t = Int of int | Str of string | List of t list

(** Alias so the {!Writer}/{!Reader} submodules (whose own [t] shadows
    this one) can refer to the tree type. *)
type tree = t

(** Nesting depth [decode] accepts (and [encode] emits) before rejecting;
    bounds stack use against length-bomb inputs. *)
val max_depth : int

(** Size in bytes of the encoded frame. *)
val size : t -> int

(** [encode v] renders one frame.  Raises [Invalid_argument] if the tree
    is deeper than {!max_depth} (a programming error on the {e sending}
    side; decoding never raises). *)
val encode : t -> string

(** [decode s] parses exactly one frame spanning the whole of [s].
    Trailing bytes, truncation, unknown tags, non-minimal varints,
    depth/length violations: all [Error] with a description. *)
val decode : string -> (t, string) result

(** {2 Accessors} — shape checks for untrusted trees, as [result]s so
    decoders compose with [let*]. *)

val to_int : t -> (int, string) result
val to_str : t -> (string, string) result
val to_list : t -> (t list, string) result

val bool_ : bool -> t
val to_bool : t -> (bool, string) result

(** [None] ↦ [List []]; [Some x] ↦ [List [f x]]. *)
val option : ('a -> t) -> 'a option -> t

val to_option : (t -> ('a, string) result) -> t -> ('a option, string) result

(** Decode every element of a [List] frame. *)
val map_list : (t -> ('a, string) result) -> t -> ('a list, string) result

val pp : Format.formatter -> t -> unit

(** {2 Streaming fast path}

    The tree above is the {e reference} codec: obviously correct, easy to
    fuzz, but it allocates an intermediate tree and walks it twice (size
    pass + encode pass).  {!Writer} and {!Reader} serialize message
    shapes straight to/from bytes.  Their output/acceptance is required
    to be {b byte-identical} to [encode]/[decode] — the canonical-format
    and totality guarantees of DESIGN.md §6g are properties of the byte
    format, not of the code path — and test/test_wire.ml holds the two
    paths equal under fuzz. *)

module Writer : sig
  type t

  (** Writers come from a small module-level pool: [alloc] reuses a
      previous writer's buffer (reset to empty), [release] returns it.
      Writers whose buffer grew past ~1 MiB are dropped on release so a
      huge snapshot doesn't pin its buffer.  Never [release] a writer
      twice, and never use one after releasing it. *)
  val alloc : unit -> t

  val release : t -> unit

  (** [with_writer f] = alloc, run [f], return {!contents}, release
      (also on exception). *)
  val with_writer : (t -> unit) -> string

  (** Append one complete [Int] / [Str] frame. *)
  val int : t -> int -> unit

  val str : t -> string -> unit

  (** [bool] mirrors {!bool_}: [Int 0] / [Int 1]. *)
  val bool : t -> bool -> unit

  (** [begin_list]/[end_list] bracket a [List] frame; children are
      written in between.  [end_list] back-patches the length header by
      shifting the payload (cost: one memmove per nesting level).
      [begin_list] raises [Invalid_argument] past {!max_depth}, exactly
      where [encode] does. *)
  val begin_list : t -> unit

  val end_list : t -> unit

  (** [option f] mirrors {!option}: [List []] / [List [f x]]. *)
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit

  (** [list f l] writes a [List] frame with one child per element. *)
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit

  (** Stream an existing tree; [with_writer (fun w -> tree w v)] is
      byte-identical to [encode v]. *)
  val tree : t -> tree -> unit

  (** The bytes written so far (the writer stays usable).  Raises
      [Invalid_argument] if a list is still open. *)
  val contents : t -> string
end

module Reader : sig
  type t

  (** Shape-mismatch escape hatch for codecs ("unknown tag 9"): aborts
      the enclosing {!run} with [Error msg]. *)
  val error : t -> string -> 'a

  (** Read one [Int] / [Str] / bool frame at the cursor.  Any
      mismatch — wrong tag, truncation, non-minimal varint, depth or
      length violation — aborts the enclosing {!run} with a clean
      [Error] carrying the byte offset (relative to the frame start). *)
  val int : t -> int

  val str : t -> string
  val bool : t -> bool

  (** Enter / leave a [List] frame.  [end_list] rejects unread trailing
      items, matching the strictness of the tree decoders' full pattern
      matches. *)
  val begin_list : t -> unit

  val end_list : t -> unit

  (** Inside a list: are there unread child frames? *)
  val has_more : t -> bool

  (** Is the next frame at the cursor a [List]?  (For codecs whose
      variants mix bare [Int] and [List] arms, e.g. zerror.) *)
  val peek_list : t -> bool

  (** Mirror {!to_option} / {!map_list}. *)
  val option : t -> (t -> 'a) -> 'a option

  val list : t -> (t -> 'a) -> 'a list

  (** Parse one frame of any shape — the streaming equivalent of
      [decode]; accepts exactly the same byte strings. *)
  val tree : t -> tree

  (** [run s f] parses exactly one frame spanning the whole of [s] with
      [f]; total, like [decode].  [run_sub] parses the slice
      [\[pos, pos+len)] without copying it out first — the TCP transport
      decodes straight from its reassembly buffer. *)
  val run : string -> (t -> 'a) -> ('a, string) result

  val run_sub :
    string -> pos:int -> len:int -> (t -> 'a) -> ('a, string) result
end
