type t = {
  mutable buf : Bytes.t;
  mutable start : int; (* first unwritten byte *)
  mutable stop : int; (* one past the last queued byte *)
}

let create ?(capacity = 4096) () = { buf = Bytes.create capacity; start = 0; stop = 0 }
let pending t = t.stop - t.start

let ensure t n =
  let live = pending t in
  let cap = Bytes.length t.buf in
  if t.stop + n > cap then
    if live + n <= cap && t.start > 0 then begin
      (* enough room once the flushed prefix is reclaimed *)
      Bytes.blit t.buf t.start t.buf 0 live;
      t.start <- 0;
      t.stop <- live
    end
    else begin
      let cap = ref (max 64 (cap * 2)) in
      while !cap < live + n do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit t.buf t.start nb 0 live;
      t.buf <- nb;
      t.start <- 0;
      t.stop <- live
    end

let add_substring t s off len =
  ensure t len;
  Bytes.blit_string s off t.buf t.stop len;
  t.stop <- t.stop + len

let add_u32 t v =
  ensure t 4;
  Bytes.set t.buf t.stop (Char.chr ((v lsr 24) land 0xff));
  Bytes.set t.buf (t.stop + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set t.buf (t.stop + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set t.buf (t.stop + 3) (Char.chr (v land 0xff));
  t.stop <- t.stop + 4

let flush t ~write =
  let total = ref 0 in
  let stalled = ref false in
  while pending t > 0 && not !stalled do
    let n = write t.buf t.start (pending t) in
    if n < 0 || n > pending t then
      invalid_arg "Outbuf.flush: write returned an out-of-range count";
    if n = 0 then stalled := true
    else begin
      t.start <- t.start + n;
      total := !total + n
    end
  done;
  if pending t = 0 then begin
    t.start <- 0;
    t.stop <- 0
  end;
  !total

let clear t =
  t.start <- 0;
  t.stop <- 0
