(** Corked per-connection output buffer.

    The TCP transport appends every outgoing frame here and flushes once
    per drive step, so an N-message burst (a leader broadcast, a batch of
    client replies) costs one [write] system call instead of N.  The
    buffer owns the partial-write problem: {!flush} retains any suffix
    the kernel didn't take, and the next flush resumes from it — the
    transport never assumes a [write] took the whole buffer. *)

type t

val create : ?capacity:int -> unit -> t

(** Bytes currently queued (written but not yet taken by [flush]). *)
val pending : t -> int

(** Append [len] bytes of [s] starting at [off]. *)
val add_substring : t -> string -> int -> int -> unit

(** Append a 32-bit big-endian integer (stream framing header field). *)
val add_u32 : t -> int -> unit

(** [flush t ~write] repeatedly offers the queued bytes to [write buf off
    len] (which returns the number of bytes it accepted, [0] meaning
    "try again later", e.g. [EAGAIN]) until the queue is empty or
    [write] returns [0].  Unwritten bytes are retained, in order, for
    the next call.  Returns the number of bytes written by this call.
    Exceptions from [write] propagate with the queue intact. *)
val flush : t -> write:(Bytes.t -> int -> int -> int) -> int

(** Drop everything queued (connection teardown). *)
val clear : t -> unit
