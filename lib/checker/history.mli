(** Concurrent operation histories, in the style of Wing & Gong and the
    Jepsen/Knossos tradition: every client operation is an [Invoke] event
    followed (possibly much later, possibly never) by a conclusion —
    [Return] with a response, [Fail] when the operation definitely had no
    effect, or [Info] when the outcome is unknown (the session layer's
    "maybe applied").  Timestamps are virtual ({!Edc_simnet.Sim_time}), so
    recorded histories are deterministic per simulator seed. *)

open Edc_simnet

(** Abstract operations of the checked recipes.  The checker works at the
    recipe level for extension-served operations ([Incr], [Deq]) and at
    the store level for traditional ones ([Ctr_cas], [Deq_elem]). *)
type op =
  | Incr  (** extension-served counter increment; returns the new value *)
  | Ctr_read  (** read of the counter object *)
  | Ctr_cas of { expected_data : string; data : string }
      (** conditional update against the previously read counter value *)
  | Enq of { eid : string; data : string }  (** create of a queue element *)
  | Deq  (** extension-served pop of the FIFO head *)
  | Deq_elem of string
      (** traditional delete of one named queue element (FIFO walk) *)
  | Q_read  (** snapshot of all queue elements *)
  | Acquire  (** lock / leadership granted to the caller *)
  | Release
  | Enter of string  (** barrier entry on the given barrier object *)

type response =
  | R_unit
  | R_int of int
  | R_bool of bool
  | R_obj of { data : string; version : int }
  | R_opt of string option
  | R_multiset of string list  (** order-insensitive; kept sorted *)
  | R_other of string  (** unmodelled payload (always a spec violation) *)

type event =
  | Invoke of { id : int; client : int; at : Sim_time.t; op : op }
  | Return of { id : int; at : Sim_time.t; response : response }
  | Fail of { id : int; at : Sim_time.t; error : string }
      (** the operation definitely did not take effect *)
  | Info of { id : int; at : Sim_time.t; error : string }
      (** ambiguous conclusion: the effect may or may not have happened *)

(** How one operation concluded. *)
type outcome =
  | Done of response
  | Failed of string
  | Open of string option
      (** never concluded, or concluded ambiguously with the given error:
          the operation may take effect at any later point, or never *)

(** One operation of the history, as the checker consumes it. *)
type entry = {
  id : int;
  client : int;
  op : op;
  inv : Sim_time.t;
  ret : Sim_time.t option;  (** [None] for [Failed]/[Open] entries *)
  outcome : outcome;
}

type t
(** An append-only recorder; all stamps come from the simulator clock. *)

val create : sim:Sim.t -> unit -> t

val invoke : t -> client:int -> op -> int
(** Returns the operation id to conclude with {!ok}/{!fail}/{!info}. *)

val ok : t -> int -> response -> unit
val fail : t -> int -> string -> unit
val info : t -> int -> string -> unit

val events : t -> event list
(** Chronological. *)

val entries : t -> entry list
(** One entry per invoked operation, sorted by invocation time (ties by
    id, i.e. by invocation order). *)

val n_events : t -> int

(** Linearizability is compositional: a history is linearizable iff its
    per-object sub-histories are (Herlihy & Wing).  [object_of_op]
    classifies operations by the object they touch and {!split} partitions
    a history accordingly. *)
val object_of_op : op -> string

val split : entry list -> (string * entry list) list
(** Objects in first-appearance order; entry order preserved. *)

val pp_op : Format.formatter -> op -> unit
val pp_response : Format.formatter -> response -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp_event : Format.formatter -> event -> unit
