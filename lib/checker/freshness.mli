(** Stale-read detector (§6i).

    Complements the WGL linearizability search with two targeted
    read-freshness checks over counter-style objects, where every
    stamp-bearing response ([R_int], or [R_obj] whose data parses as an
    integer) observes a strictly increasing value, so "older" is
    well-defined without searching linearization orders:

    - {!check_session} — sequential-consistency freshness: within one
      client's session, a read must never return a value older than a
      response that same client already observed (monotone reads +
      read-your-writes).  This is the guarantee observers and cached
      sessions provide.
    - {!check_realtime} — lease freshness: a read invoked after {e any}
      operation completed (in real time) with stamp [v] must return at
      least [v].  Linearizable lease-served reads must pass; a leader
      serving reads past its lease expiry while a new leader commits
      writes is convicted here.

    Both checks are linear sweeps, not searches: they convict with a
    concrete witness pair and never time out, which makes them suitable
    as always-on gates in chaos runs (the full WGL search stays the
    ground truth for linearizability proper). *)

type violation = {
  v_client : int;  (** client that performed the stale read *)
  v_op : int;  (** history id of the convicted read *)
  v_at : Edc_simnet.Sim_time.t;  (** return time of the stale read *)
  v_observed : int;  (** stamp the read returned *)
  v_expected : int;  (** stamp already observed before the read *)
  v_witness : int;  (** history id of the response establishing [v_expected] *)
}

(** Stamp extracted from a completed response: [R_int n] is [n]; [R_obj]
    is its data when that parses as an integer, else its version.  [None]
    for responses that carry no observation of the object's value. *)
val stamp_of_response : History.response -> int option

(** Per-client monotonicity over completed stamp-bearing entries, in
    completion order.  Empty list = no stale read. *)
val check_session : History.entry list -> violation list

(** Real-time freshness: for each completed read, the freshness bound is
    the maximum stamp of any entry (any client) that returned strictly
    before the read was invoked.  Concurrent operations impose no bound.
    Empty list = no stale read. *)
val check_realtime : History.entry list -> violation list

val pp_violation : Format.formatter -> violation -> unit
