(** Wing–Gong / WGL linearizability search.  See wgl.mli for semantics.

    The search keeps the unlinearized operations in a doubly-linked list
    ordered by invocation time.  Candidates for the next linearization
    point are a prefix of that list: an operation [e] is eligible iff no
    unlinearized operation returned strictly before [inv e], and any
    operation invoked later than the running minimum return time can
    never be eligible, so the scan stops there (Lowe's optimization).
    Visited (linearized-set, model-state) configurations are memoized.

    Counterexamples are minimized by cutting the history at completion
    times: the prefix at cut [T] keeps every operation invoked by [T],
    demoting those that complete after [T] to optional/unconstrained.
    Linearizability is prefix-closed under that cut, so "the prefix at
    [T] fails" is monotone in [T] and a binary search finds the earliest
    failing completion. *)

open Edc_simnet

type counterexample = {
  cx_cut : Sim_time.t option;
  cx_ops : int;
  cx_required : int;
  cx_linearized : int;
  cx_window : History.entry list;
}

type verdict =
  | Linearizable of { ops : int; states : int }
  | Non_linearizable of counterexample
  | Budget_exhausted of { ops : int; steps : int }

let is_ok = function Linearizable _ -> true | _ -> false

(* One operation as the search sees it (constraints depend on the cut). *)
type eop = {
  ent : History.entry;
  required : bool;
  resp : History.response option;  (* None = unconstrained *)
}

type attempt =
  | A_ok of { states : int }
  | A_fail of { ops : eop array; best_lin : bool array }
  | A_budget of { steps : int }

exception Found
exception Budget

let search ~max_steps (model : Model.t) (ops : eop array) =
  let n = Array.length ops in
  let required_total =
    Array.fold_left (fun acc o -> if o.required then acc + 1 else acc) 0 ops
  in
  if required_total = 0 then A_ok { states = 0 }
  else begin
    (* doubly-linked list over 0..n-1 in invocation order; sentinel n *)
    let next = Array.init (n + 1) (fun i -> if i = n then 0 else i + 1) in
    let prev = Array.init (n + 1) (fun i -> if i = 0 then n else i - 1) in
    let unlink i =
      next.(prev.(i)) <- next.(i);
      prev.(next.(i)) <- prev.(i)
    in
    let relink i =
      next.(prev.(i)) <- i;
      prev.(next.(i)) <- i
    in
    let lin = Bytes.make ((n + 7) / 8) '\000' in
    let set_bit i =
      let b = Char.code (Bytes.get lin (i lsr 3)) in
      Bytes.set lin (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))))
    in
    let clear_bit i =
      let b = Char.code (Bytes.get lin (i lsr 3)) in
      Bytes.set lin (i lsr 3) (Char.chr (b land lnot (1 lsl (i land 7))))
    in
    let memo : (string * Model.state, unit) Hashtbl.t = Hashtbl.create 4096 in
    let steps = ref 0 in
    let states = ref 0 in
    let best_count = ref (-1) in
    let best_lin = ref (Bytes.to_string lin) in
    let rec dfs state n_req n_tot =
      if n_req = required_total then raise Found;
      let key = (Bytes.to_string lin, state) in
      if not (Hashtbl.mem memo key) then begin
        Hashtbl.add memo key ();
        incr states;
        if n_tot > !best_count then begin
          best_count := n_tot;
          best_lin := fst key
        end;
        (* Scan candidates: a prefix of the unlinearized list, in two
           passes.  Constrained (response-bearing) operations go first:
           on a healthy history the observed responses pin the order, so
           trying them first finds a witness near-greedily, and
           unconstrained "maybe applied" ops are only pulled in when a
           constrained op cannot step (e.g. an observed counter value
           jumped past the model's).  Within the second pass, open
           operations with the same client and content are
           interchangeable — they impose no response or real-time
           constraint on anyone, and the earlier-invoked one is eligible
           whenever a later one is — so only the first of each kind is
           tried (symmetry reduction; without it, "choose which j of k
           ambiguous writes applied" explodes combinatorially). *)
        let opens_seen = ref [] in
        let rec scan i min_ret ~constrained =
          if i <> n then begin
            let o = ops.(i) in
            let eligible =
              match min_ret with
              | None -> true
              | Some m -> Sim_time.(o.ent.History.inv <= m)
            in
            if eligible then begin
              (match (o.resp, constrained) with
              | Some _, true -> linearize i o state n_req n_tot
              | Some _, false | None, true -> ()
              | None, false ->
                  let key = (o.ent.History.client, o.ent.History.op) in
                  if not (List.mem key !opens_seen) then begin
                    opens_seen := key :: !opens_seen;
                    linearize i o state n_req n_tot
                  end);
              let min_ret' =
                match (min_ret, o.ent.History.ret) with
                | m, None -> m
                | None, r -> r
                | Some m, Some r -> Some (Sim_time.min m r)
              in
              scan next.(i) min_ret' ~constrained
            end
          end
        in
        scan next.(n) None ~constrained:true;
        scan next.(n) None ~constrained:false
      end
    and linearize i o state n_req n_tot =
      incr steps;
      if !steps > max_steps then raise Budget;
      let alts = model.Model.step state ~client:o.ent.History.client o.ent.History.op in
      let alts =
        match o.resp with
        | None -> alts
        | Some observed ->
            List.filter
              (fun (candidate, _) ->
                model.Model.matches ~observed ~candidate)
              alts
      in
      if alts <> [] then begin
        unlink i;
        set_bit i;
        List.iter
          (fun (_, state') ->
            dfs state' (n_req + if o.required then 1 else 0) (n_tot + 1))
          alts;
        clear_bit i;
        relink i
      end
    in
    try
      dfs model.Model.init 0 0;
      let best = Bytes.of_string !best_lin in
      let flags =
        Array.init n (fun i ->
            Char.code (Bytes.get best (i lsr 3)) land (1 lsl (i land 7)) <> 0)
      in
      A_fail { ops; best_lin = flags }
    with
    | Found -> A_ok { states = !states }
    | Budget -> A_budget { steps = !steps }
  end

(* Build the operation array for a completion-time cut.  [None] = the
   whole history; [Some c] keeps operations invoked by [c], demoting
   those still running at [c] to optional and unconstrained. *)
let ops_at_cut entries cut =
  entries
  |> List.filter (fun (e : History.entry) ->
         match cut with
         | None -> true
         | Some c -> Sim_time.(e.History.inv <= c))
  |> List.map (fun (e : History.entry) ->
         let concluded =
           match (e.History.outcome, e.History.ret, cut) with
           | History.Done r, Some ret, Some c ->
               if Sim_time.(ret <= c) then Some r else None
           | History.Done r, _, None -> Some r
           | _ -> None
         in
         match concluded with
         | Some r -> { ent = e; required = true; resp = Some r }
         | None ->
             {
               ent = { e with History.ret = None };
               required = false;
               resp = None;
             })
  |> Array.of_list

(* Drop optional unconstrained ops the model certifies as irrelevant to
   this prefix (see {!Model.t.droppable_open}); recomputed per cut
   because demotion changes which responses constrain. *)
let prune_opens (model : Model.t) (ops : eop array) =
  match model.Model.droppable_open with
  | None -> ops
  | Some droppable ->
      let required =
        Array.to_list ops
        |> List.filter_map (fun o ->
               match o.resp with
               | Some r when o.required -> Some (o.ent.History.op, r)
               | _ -> None)
      in
      Array.to_list ops
      |> List.filter (fun o ->
             match o.resp with
             | Some _ -> true
             | None -> not (droppable o.ent.History.op ~required))
      |> Array.of_list

let counterexample_of ~cut (ops : eop array) best_lin =
  let window = ref [] and lind = ref 0 and req = ref 0 in
  Array.iteri
    (fun i o ->
      if o.required then begin
        incr req;
        if best_lin.(i) then incr lind
        else window := o.ent :: !window
      end)
    ops;
  {
    cx_cut = cut;
    cx_ops = Array.length ops;
    cx_required = !req;
    cx_linearized = !lind;
    cx_window = List.rev !window;
  }

let check ?(max_steps = 300_000) (model : Model.t) entries =
  let entries =
    entries
    |> List.filter (fun (e : History.entry) ->
           match e.History.outcome with History.Failed _ -> false | _ -> true)
    |> List.sort (fun (a : History.entry) (b : History.entry) ->
           compare (a.History.inv, a.History.id) (b.History.inv, b.History.id))
  in
  let n_entries = List.length entries in
  let completions =
    entries
    |> List.filter_map (fun (e : History.entry) ->
           match e.History.outcome with
           | History.Done _ -> e.History.ret
           | _ -> None)
    |> List.sort_uniq compare
    |> Array.of_list
  in
  let m = Array.length completions in
  if m = 0 then
    (* nothing completed: everything is optional, trivially linearizable *)
    Linearizable { ops = n_entries; states = 0 }
  else begin
    (* Probe prefixes at exponentially spaced completion cuts instead of
       attacking the whole history at once.  Passing a cut is cheap (the
       search finds a witness greedily), and the prefix at the last
       completion has the same required set as the full history — the
       remaining entries are optional and never need linearizing — so
       passing it proves the whole history.  On the first failing cut,
       binary-search back to the earliest failing completion: the search
       then exhausts the smallest possible prefix rather than the full
       history, which is what makes conviction tractable. *)
    let probe idx =
      search ~max_steps model
        (prune_opens model (ops_at_cut entries (Some completions.(idx))))
    in
    let verdict_at hi = function
      | A_fail { ops; best_lin } ->
          Non_linearizable
            (counterexample_of ~cut:(Some completions.(hi)) ops best_lin)
      | A_budget { steps } -> Budget_exhausted { ops = n_entries; steps }
      | A_ok _ -> assert false
    in
    (* narrow (lo, hi]: the prefix at lo passes (lo = -1 for none), the
       probe at hi returned the non-ok [r_hi].  Passing is monotone
       (downward closed), so binary search isolates the earliest non-ok
       cut.  A budget blowup at a large cut often hides a small definite
       violation just past the last passing cut — the smaller prefix is
       cheap to exhaust, so keep narrowing instead of giving up. *)
    let rec narrow lo hi r_hi =
      if lo + 1 >= hi then verdict_at hi r_hi
      else
        let mid = (lo + hi) / 2 in
        match probe mid with
        | A_ok _ -> narrow mid hi r_hi
        | r -> narrow lo mid r
    in
    let rec grow last_pass idx =
      match probe idx with
      | A_ok { states } ->
          if idx = m - 1 then Linearizable { ops = n_entries; states }
          else grow idx (min (m - 1) ((idx + 1) * 4))
      | r -> narrow last_pass idx r
    in
    grow (-1) (min (m - 1) 63)
  end

let check_history ?max_steps model h = check ?max_steps model (History.entries h)

let pp_window ppf window =
  let cap = 16 in
  let shown = List.filteri (fun i _ -> i < cap) window in
  Fmt.pf ppf "@[<v>%a%a@]"
    Fmt.(list ~sep:cut History.pp_entry)
    shown
    (fun ppf rest -> if rest > 0 then Fmt.pf ppf "@,… (+%d more)" rest)
    (List.length window - List.length shown)

let pp_verdict ppf = function
  | Linearizable { ops; states } ->
      Fmt.pf ppf "linearizable (%d ops, %d states)" ops states
  | Budget_exhausted { ops; steps } ->
      Fmt.pf ppf "inconclusive: step budget exhausted (%d ops, %d steps)" ops
        steps
  | Non_linearizable cx ->
      Fmt.pf ppf
        "@[<v>NON-LINEARIZABLE: %d of %d required ops cannot be ordered \
         (prefix of %d ops%a)@,%a@]"
        (List.length cx.cx_window)
        cx.cx_required cx.cx_ops
        (fun ppf -> function
          | None -> ()
          | Some c -> Fmt.pf ppf ", cut at %.3f ms" (Sim_time.to_float_ms c))
        cx.cx_cut pp_window cx.cx_window
