(** Stale-read detector: linear freshness sweeps over counter-style
    histories.  See the interface for the two modes; both produce a
    concrete witness pair (the stale read and the fresher response that
    convicts it) instead of a search verdict. *)

open Edc_simnet

type violation = {
  v_client : int;
  v_op : int;
  v_at : Edc_simnet.Sim_time.t;
  v_observed : int;
  v_expected : int;
  v_witness : int;
}

let stamp_of_response = function
  | History.R_int n -> Some n
  | History.R_obj { data; version } -> (
      match int_of_string_opt (String.trim data) with
      | Some n -> Some n
      | None -> Some version)
  | History.R_unit | History.R_bool _ | History.R_opt _
  | History.R_multiset _ | History.R_other _ ->
      None

let is_read = function History.Ctr_read -> true | _ -> false

(* One completed stamp-bearing entry, flattened for the sweeps. *)
type obs = {
  o_id : int;
  o_client : int;
  o_inv : Sim_time.t;
  o_ret : Sim_time.t;
  o_stamp : int;
  o_read : bool;
}

let observations entries =
  List.filter_map
    (fun (e : History.entry) ->
      match (e.outcome, e.ret) with
      | History.Done r, Some ret -> (
          match stamp_of_response r with
          | Some stamp ->
              Some
                {
                  o_id = e.id;
                  o_client = e.client;
                  o_inv = e.inv;
                  o_ret = ret;
                  o_stamp = stamp;
                  o_read = is_read e.op;
                }
          | None -> None)
      | _ -> None)
    entries

let check_session entries =
  let obs =
    observations entries
    |> List.sort (fun a b ->
           match Sim_time.compare a.o_ret b.o_ret with
           | 0 -> Int.compare a.o_id b.o_id
           | c -> c)
  in
  (* client -> (highest stamp this session observed, witnessing op id) *)
  let seen : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  let violations = ref [] in
  List.iter
    (fun o ->
      (match Hashtbl.find_opt seen o.o_client with
      | Some (best, witness) when o.o_read && o.o_stamp < best ->
          violations :=
            {
              v_client = o.o_client;
              v_op = o.o_id;
              v_at = o.o_ret;
              v_observed = o.o_stamp;
              v_expected = best;
              v_witness = witness;
            }
            :: !violations
      | _ -> ());
      match Hashtbl.find_opt seen o.o_client with
      | Some (best, _) when best >= o.o_stamp -> ()
      | _ -> Hashtbl.replace seen o.o_client (o.o_stamp, o.o_id))
    obs;
  List.rev !violations

(* Real-time sweep: walk returns and read-invocations in time order,
   maintaining the highest stamp of any COMPLETED operation; a read's
   bound is that maximum at its invocation instant.  Ties process
   invocations first — an operation returning at the very instant a read
   is invoked is concurrent with it and imposes no bound. *)
type sweep_ev =
  | Ev_inv of obs  (* a read starts: capture the bound *)
  | Ev_ret of obs  (* any observation completes: raise the bound *)

let check_realtime entries =
  let obs = observations entries in
  let events =
    List.concat_map
      (fun o ->
        if o.o_read then [ (o.o_inv, 0, o.o_id, Ev_inv o); (o.o_ret, 1, o.o_id, Ev_ret o) ]
        else [ (o.o_ret, 1, o.o_id, Ev_ret o) ])
      obs
    |> List.sort (fun (ta, pa, ia, _) (tb, pb, ib, _) ->
           match Sim_time.compare ta tb with
           | 0 -> ( match Int.compare pa pb with 0 -> Int.compare ia ib | c -> c)
           | c -> c)
  in
  let bound = ref min_int and witness = ref (-1) in
  let pending : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let violations = ref [] in
  List.iter
    (fun (_, _, _, ev) ->
      match ev with
      | Ev_inv o -> Hashtbl.replace pending o.o_id (!bound, !witness)
      | Ev_ret o ->
          (match Hashtbl.find_opt pending o.o_id with
          | Some (b, w) when o.o_stamp < b ->
              violations :=
                {
                  v_client = o.o_client;
                  v_op = o.o_id;
                  v_at = o.o_ret;
                  v_observed = o.o_stamp;
                  v_expected = b;
                  v_witness = w;
                }
                :: !violations
          | _ -> ());
          Hashtbl.remove pending o.o_id;
          if o.o_stamp > !bound then begin
            bound := o.o_stamp;
            witness := o.o_id
          end)
    events;
  List.sort
    (fun a b ->
      match Sim_time.compare a.v_at b.v_at with
      | 0 -> Int.compare a.v_op b.v_op
      | c -> c)
    !violations

let pp_violation ppf v =
  Fmt.pf ppf
    "stale read: client %d op %d returned %d at %.4fs, but %d was already \
     observed (op %d)"
    v.v_client v.v_op v.v_observed
    (Sim_time.to_float_s v.v_at)
    v.v_expected v.v_witness
