(** Sequential specifications of the checked recipes.

    A model is a deterministic-ish state machine: [step] returns every
    acceptable (response, next-state) pair for an operation in a state —
    an empty list means no linearization point for that operation exists
    there.  States use structural equality/hashing so the WGL search can
    memoize visited configurations.

    Versions are deliberately NOT part of any model: they are
    backend-specific metadata (zxid-derived on EZK, timestamp-derived on
    EDS), so [R_obj] responses are matched on data only, and counter CAS
    is specified against the expected {e data}, which identifies the state
    uniquely because a counter's value is strictly increasing (no ABA). *)

type state =
  | S_counter of int
  | S_queue of (string * string) list  (** (eid, data), head first *)
  | S_mutex of int option  (** holding client *)

type t = {
  name : string;
  init : state;
  step : state -> client:int -> History.op -> (History.response * state) list;
  matches :
    observed:History.response -> candidate:History.response -> bool;
      (** does the recorded response match one the model allows? *)
  droppable_open :
    (History.op -> required:(History.op * History.response) list -> bool)
    option;
      (** [droppable_open op ~required = true] promises that an optional,
          unconstrained instance of [op] can be removed from the search
          without changing the verdict, given the constrained
          (op, observed-response) pairs of the same history prefix.
          Sound only when linearizing such an op can never {e enable}
          another op's linearization — e.g. an ambiguous queue add whose
          element no constrained op ever observed.  [None] = never drop. *)
}

val counter : t
(** [Incr] / [Ctr_read] / [Ctr_cas]; initial value 0 (the recipes'
    [setup] creates the object with "0" before recording starts). *)

val queue : t
(** FIFO in linearization order: [Enq] appends, [Deq] pops the head (or
    observes empty), [Deq_elem eid] succeeds iff [eid] is the head —
    sound for the traditional recipe because element order is fixed by
    unique creation stamps, so a linearizable store only ever lets the
    FIFO walk delete the current head. *)

val mutex : t
(** [Acquire] succeeds only when free; [Release] only by the holder.
    Models both the lock and leader-election recipes (leadership = the
    lock). *)

val for_object : string -> t option
(** Model for a {!History.object_of_op} class ([None] for "barrier",
    which is a real-time property, not an atomic object — see
    {!check_gate}). *)

val check_gate :
  threshold:int -> History.entry list -> (unit, string) result
(** The barrier property: no [Enter] on a barrier may return before the
    [threshold]-th [Enter] on the same barrier has been invoked. *)
