(** History recorder: invoke / return / fail / info events with virtual
    timestamps.  See history.mli for the event model. *)

open Edc_simnet

type op =
  | Incr
  | Ctr_read
  | Ctr_cas of { expected_data : string; data : string }
  | Enq of { eid : string; data : string }
  | Deq
  | Deq_elem of string
  | Q_read
  | Acquire
  | Release
  | Enter of string

type response =
  | R_unit
  | R_int of int
  | R_bool of bool
  | R_obj of { data : string; version : int }
  | R_opt of string option
  | R_multiset of string list
  | R_other of string

type event =
  | Invoke of { id : int; client : int; at : Sim_time.t; op : op }
  | Return of { id : int; at : Sim_time.t; response : response }
  | Fail of { id : int; at : Sim_time.t; error : string }
  | Info of { id : int; at : Sim_time.t; error : string }

type outcome = Done of response | Failed of string | Open of string option

type entry = {
  id : int;
  client : int;
  op : op;
  inv : Sim_time.t;
  ret : Sim_time.t option;
  outcome : outcome;
}

type t = {
  sim : Sim.t;
  mutable next_id : int;
  mutable rev_events : event list;
  mutable count : int;
}

let create ~sim () = { sim; next_id = 0; rev_events = []; count = 0 }

let push t e =
  t.rev_events <- e :: t.rev_events;
  t.count <- t.count + 1

let invoke t ~client op =
  let id = t.next_id in
  t.next_id <- id + 1;
  push t (Invoke { id; client; at = Sim.now t.sim; op });
  id

let ok t id response = push t (Return { id; at = Sim.now t.sim; response })
let fail t id error = push t (Fail { id; at = Sim.now t.sim; error })
let info t id error = push t (Info { id; at = Sim.now t.sim; error })
let events t = List.rev t.rev_events
let n_events t = t.count

let entries t =
  let tbl : (int, entry) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Invoke { id; client; at; op } ->
          order := id :: !order;
          Hashtbl.replace tbl id
            { id; client; op; inv = at; ret = None; outcome = Open None }
      | Return { id; at; response } -> (
          match Hashtbl.find_opt tbl id with
          | Some e ->
              Hashtbl.replace tbl id
                { e with ret = Some at; outcome = Done response }
          | None -> ())
      | Fail { id; error; _ } -> (
          match Hashtbl.find_opt tbl id with
          | Some e -> Hashtbl.replace tbl id { e with outcome = Failed error }
          | None -> ())
      | Info { id; error; _ } -> (
          match Hashtbl.find_opt tbl id with
          | Some e ->
              Hashtbl.replace tbl id { e with outcome = Open (Some error) }
          | None -> ()))
    (events t);
  !order |> List.rev
  |> List.map (Hashtbl.find tbl)
  |> List.stable_sort (fun a b -> compare (a.inv, a.id) (b.inv, b.id))

let object_of_op = function
  | Incr | Ctr_read | Ctr_cas _ -> "counter"
  | Enq _ | Deq | Deq_elem _ | Q_read -> "queue"
  | Acquire | Release -> "lock"
  | Enter _ -> "barrier"

let split entries =
  let tbl : (string, entry list ref) Hashtbl.t = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun e ->
      let obj = object_of_op e.op in
      match Hashtbl.find_opt tbl obj with
      | Some r -> r := e :: !r
      | None ->
          order := obj :: !order;
          Hashtbl.replace tbl obj (ref [ e ]))
    entries;
  List.rev_map (fun obj -> (obj, List.rev !(Hashtbl.find tbl obj))) !order
  |> List.rev

let pp_op ppf = function
  | Incr -> Fmt.string ppf "incr"
  | Ctr_read -> Fmt.string ppf "ctr-read"
  | Ctr_cas { expected_data; data } ->
      Fmt.pf ppf "ctr-cas(%s->%s)" expected_data data
  | Enq { eid; _ } -> Fmt.pf ppf "enq(%s)" eid
  | Deq -> Fmt.string ppf "deq"
  | Deq_elem eid -> Fmt.pf ppf "deq-elem(%s)" eid
  | Q_read -> Fmt.string ppf "q-read"
  | Acquire -> Fmt.string ppf "acquire"
  | Release -> Fmt.string ppf "release"
  | Enter base -> Fmt.pf ppf "enter(%s)" base

let pp_response ppf = function
  | R_unit -> Fmt.string ppf "()"
  | R_int n -> Fmt.int ppf n
  | R_bool b -> Fmt.bool ppf b
  | R_obj { data; version } -> Fmt.pf ppf "{%S v%d}" data version
  | R_opt None -> Fmt.string ppf "none"
  | R_opt (Some d) -> Fmt.pf ppf "some %S" d
  | R_multiset ds -> Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma string) ds
  | R_other s -> Fmt.pf ppf "other:%s" s

let pp_time ppf at = Fmt.pf ppf "%10.3fms" (Sim_time.to_float_ms at)

let pp_entry ppf e =
  let pp_ret ppf = function
    | Some at -> pp_time ppf at
    | None -> Fmt.string ppf "       ...  "
  in
  let pp_outcome ppf = function
    | Done r -> Fmt.pf ppf "-> %a" pp_response r
    | Failed err -> Fmt.pf ppf "!! %s" err
    | Open None -> Fmt.string ppf "?? no conclusion"
    | Open (Some err) -> Fmt.pf ppf "?? %s" err
  in
  Fmt.pf ppf "[%a .. %a] c%-3d %-24s %a" pp_time e.inv pp_ret e.ret e.client
    (Fmt.str "%a" pp_op e.op) pp_outcome e.outcome

let pp_event ppf = function
  | Invoke { id; client; at; op } ->
      Fmt.pf ppf "%a #%d c%d invoke %a" pp_time at id client pp_op op
  | Return { id; at; response } ->
      Fmt.pf ppf "%a #%d return %a" pp_time at id pp_response response
  | Fail { id; at; error } -> Fmt.pf ppf "%a #%d fail %s" pp_time at id error
  | Info { id; at; error } -> Fmt.pf ppf "%a #%d info %s" pp_time at id error
