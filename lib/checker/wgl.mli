(** Wing–Gong linearizability search with the Lowe-style configuration
    memoization (JIT-linearization): depth-first over the partial orders
    of a history, caching (linearized-set, model-state) configurations so
    equivalent interleavings are explored once, under a per-history step
    budget.

    Operations that concluded [Failed] are excluded (no effect);
    operations that concluded [Open] — "maybe applied" or still running —
    are {e optional}: the search may linearize them at any point after
    their invocation with any model-allowed response, or never.  A
    history is linearizable when all {e required} (completed) operations
    linearize. *)

open Edc_simnet

type counterexample = {
  cx_cut : Sim_time.t option;
      (** completion-time cut of the minimal failing prefix ([None] if
          minimization could not shrink the history) *)
  cx_ops : int;  (** operations in the failing prefix *)
  cx_required : int;
  cx_linearized : int;
      (** the deepest linearization the search reached — the window below
          is what it could never order *)
  cx_window : History.entry list;
      (** required-but-unlinearizable operations, by invocation time *)
}

type verdict =
  | Linearizable of { ops : int; states : int }
      (** [states] = distinct configurations visited *)
  | Non_linearizable of counterexample
  | Budget_exhausted of { ops : int; steps : int }

val is_ok : verdict -> bool
(** [true] only for [Linearizable]. *)

val check :
  ?max_steps:int -> Model.t -> History.entry list -> verdict
(** [max_steps] bounds each search attempt (the full history and each
    minimization probe separately); default 300_000. *)

val check_history : ?max_steps:int -> Model.t -> History.t -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
val pp_window : Format.formatter -> History.entry list -> unit
