(** History-capturing wrapper over the abstract coordination API.  See
    instrument.mli for the error-classification rules. *)

open Edc_core
open Edc_recipes
module Api = Coord_api

type scope = {
  counter_oid : string;
  counter_trigger : string;
  queue_root : string;
  queue_trigger : string;
}

let default_scope =
  {
    counter_oid = Counter.counter_oid;
    counter_trigger = Counter.trigger_oid;
    queue_root = Queue.root;
    queue_trigger = Queue.head_trigger;
  }

(* Rejections the service only issues after (atomically) evaluating the
   request against its state — these writes definitely did not apply.
   Unknown errors conservatively stay ambiguous. *)
let is_definite_error e =
  match e with
  | "no node" | "node exists" | "bad version" | "not empty"
  | "no children for ephemerals" | "invalid path" | "unsupported operation"
  | "not extensible" | "no tuple" | "tuple exists" | "locked"
  | "txn conflict" ->
      (* [locked] and [txn conflict] are definite rejections: the write
         was refused before ordering / aborted on every shard (§6j) *)
      true
  | _ ->
      (* extension programs reject with "extension error: ..." *)
      String.length e >= 16 && String.sub e 0 16 = "extension error:"

let record h ~client ~op ~response f =
  let id = History.invoke h ~client op in
  match f () with
  | Ok v ->
      History.ok h id (response v);
      Ok v
  | Error e ->
      if is_definite_error e then History.fail h id e
      else History.info h id e;
      Error e

let record_read h ~client ~op ~response f =
  let id = History.invoke h ~client op in
  match f () with
  | Ok v ->
      History.ok h id (response v);
      Ok v
  | Error e ->
      History.fail h id e;
      Error e

let value_response = function
  | Value.Int n -> History.R_int n
  | Value.Unit -> History.R_unit
  | Value.Str s -> History.R_opt (Some s)
  | v -> History.R_other (Fmt.str "%a" Value.pp v)

let wrap ?(scope = default_scope) h (api : Api.t) =
  let client = api.Api.client_id in
  let in_queue oid =
    let root = scope.queue_root ^ "/" in
    let n = String.length root in
    String.length oid > n && String.sub oid 0 n = root
    && oid <> scope.queue_trigger
  in
  let eid_of oid =
    String.sub oid
      (String.length scope.queue_root + 1)
      (String.length oid - String.length scope.queue_root - 1)
  in
  let create ~oid ~data =
    if in_queue oid then
      record h ~client
        ~op:(History.Enq { eid = eid_of oid; data })
        ~response:(fun _ -> History.R_unit)
        (fun () -> api.Api.create ~oid ~data)
    else api.Api.create ~oid ~data
  in
  let delete ~oid =
    if in_queue oid then
      record h ~client
        ~op:(History.Deq_elem (eid_of oid))
        ~response:(fun b -> History.R_bool b)
        (fun () -> api.Api.delete ~oid)
    else api.Api.delete ~oid
  in
  let read ~oid =
    if oid = scope.counter_oid then
      record_read h ~client ~op:History.Ctr_read
        ~response:(function
          | Some (o : Api.obj) ->
              History.R_obj { data = o.Api.data; version = o.Api.version }
          | None -> History.R_opt None)
        (fun () -> api.Api.read ~oid)
    else api.Api.read ~oid
  in
  let cas ~expected ~data =
    if expected.Api.oid = scope.counter_oid then
      record h ~client
        ~op:
          (History.Ctr_cas { expected_data = expected.Api.data; data })
        ~response:(fun b -> History.R_bool b)
        (fun () -> api.Api.cas ~expected ~data)
    else api.Api.cas ~expected ~data
  in
  let sub_objects ~oid =
    if oid = scope.queue_root then
      record_read h ~client ~op:History.Q_read
        ~response:(fun objs ->
          History.R_multiset
            (List.sort compare (List.map (fun (o : Api.obj) -> o.Api.data) objs)))
        (fun () -> api.Api.sub_objects ~oid)
    else api.Api.sub_objects ~oid
  in
  let ext =
    Option.map
      (fun (e : Api.ext_api) ->
        let invoke_read name =
          if name = scope.counter_trigger then
            record h ~client ~op:History.Incr
              ~response:(function
                | Value.Int n -> History.R_int n
                | v -> value_response v)
              (fun () -> e.Api.invoke_read name)
          else if name = scope.queue_trigger then
            record h ~client ~op:History.Deq
              ~response:(function
                | Value.Str s -> History.R_opt (Some s)
                | Value.Unit -> History.R_opt None
                | v -> value_response v)
              (fun () -> e.Api.invoke_read name)
          else e.Api.invoke_read name
        in
        { e with Api.invoke_read })
      api.Api.ext
  in
  { api with Api.create; delete; read; cas; sub_objects; ext }
