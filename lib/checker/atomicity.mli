(** Cross-shard atomicity checker (§6j): every atomic multi-write must be
    resolved identically — committed everywhere or aborted everywhere —
    on every replica of every participant shard, exactly once per
    replica; after quiescence nothing may remain in doubt or locked.
    Consumes plain data (the deployment's audit/residual dumps), so it
    has no dependency on the sharding subsystem. *)

type violation =
  | Divergent of {
      txid : string;
      commits : (int * int) list;  (** (shard, replica) that committed *)
      aborts : (int * int) list;
    }
  | Duplicate_resolution of { txid : string; shard : int; replica : int }
  | Stuck_in_doubt of { txid : string; shard : int; replica : int }
  | Residual_lock of { path : string; txid : string; shard : int; replica : int }

val pp_violation : Format.formatter -> violation -> unit

(** [check ~audits ()] — [audits]: one [(shard, replica, outcomes)] per
    replica, [outcomes] oldest-first [(txid, committed)]; [prepared] /
    [locks] are residual dumps taken after quiescence ([(shard, replica,
    txid, coord)] and [(shard, replica, path, txid)]).  Empty result =
    invariant holds. *)
val check :
  audits:(int * int * (string * bool) list) list ->
  ?prepared:(int * int * string * int) list ->
  ?locks:(int * int * string * string) list ->
  unit ->
  violation list

val resolved_count : audits:(int * int * (string * bool) list) list -> int
