(** Transparent history capture over {!Edc_recipes.Coord_api}.

    [wrap history api] returns an API that behaves identically but logs
    every operation on the checked recipe objects (the shared counter and
    the distributed queue, on both their extension-served and traditional
    paths) into [history].  Operations on other objects pass through
    unrecorded.

    Error classification: an error on a write is recorded as [Fail] (no
    effect) only when it is a {e definite} logical rejection from the
    service ("node exists", "bad version", …); anything else — "maybe
    applied" from the resilient session layer, raw timeouts on direct
    clients, unknown strings — is recorded as [Info], i.e. the write may
    or may not have taken effect.  Errors on reads are always [Fail].
    This is conservative: misclassifying a definite failure as ambiguous
    only weakens the check, never yields a false alarm. *)

open Edc_recipes

type scope = {
  counter_oid : string;
  counter_trigger : string;
  queue_root : string;
  queue_trigger : string;
}

val default_scope : scope
(** The recipes' well-known object names. *)

val wrap : ?scope:scope -> History.t -> Coord_api.t -> Coord_api.t

val is_definite_error : string -> bool

val record :
  History.t ->
  client:int ->
  op:History.op ->
  response:('a -> History.response) ->
  (unit -> ('a, string) result) ->
  ('a, string) result
(** Record one recipe-level operation (used for lock / election /
    barrier workloads whose semantic event is a whole recipe call, not a
    single API call), with the write error classification above. *)

val record_read :
  History.t ->
  client:int ->
  op:History.op ->
  response:('a -> History.response) ->
  (unit -> ('a, string) result) ->
  ('a, string) result
(** Like {!record} but errors are [Fail] (reads have no effect). *)
