(** Cross-shard atomicity checker (§6j).

    The sharded deployment's safety contract: an atomic multi-write is
    resolved the same way — committed everywhere or aborted everywhere —
    on every replica of every participant shard, exactly once per
    replica; and after the system quiesces nothing is left in doubt and
    no path is still write-locked.

    The checker is deliberately abstract: it consumes the per-replica
    audit streams ([Server.txn_audit]) plus residual prepared/lock dumps
    as plain data, so it has no dependency on the sharding subsystem —
    the same inversion the WGL checker uses. *)

type violation =
  | Divergent of {
      txid : string;
      commits : (int * int) list;  (** (shard, replica) that committed *)
      aborts : (int * int) list;  (** (shard, replica) that aborted *)
    }
      (** the fatal one: a transaction committed on one shard and aborted
          on another *)
  | Duplicate_resolution of { txid : string; shard : int; replica : int }
      (** a replica resolved the same transaction twice *)
  | Stuck_in_doubt of { txid : string; shard : int; replica : int }
      (** still prepared after quiescence: outcome never arrived *)
  | Residual_lock of {
      path : string;
      txid : string;
      shard : int;
      replica : int;
    }  (** a path still write-locked after quiescence *)

let pp_violation ppf = function
  | Divergent { txid; commits; aborts } ->
      Fmt.pf ppf "txn %s committed on %a but aborted on %a" txid
        Fmt.(list ~sep:comma (pair ~sep:(any ".") int int))
        commits
        Fmt.(list ~sep:comma (pair ~sep:(any ".") int int))
        aborts
  | Duplicate_resolution { txid; shard; replica } ->
      Fmt.pf ppf "txn %s resolved twice on replica %d.%d" txid shard replica
  | Stuck_in_doubt { txid; shard; replica } ->
      Fmt.pf ppf "txn %s still in doubt on replica %d.%d" txid shard replica
  | Residual_lock { path; txid; shard; replica } ->
      Fmt.pf ppf "path %s still locked by %s on replica %d.%d" path txid
        shard replica

(** [check ~audits ()] — [audits] is one [(shard, replica, outcomes)] per
    replica, [outcomes] oldest-first [(txid, committed)].  [prepared] and
    [locks] are residual-state dumps taken after quiescence; pass them to
    additionally require that every transaction resolved and every lock
    was released. *)
let check ~audits ?(prepared = []) ?(locks = []) () =
  let outcomes : (string, (int * int) list ref * (int * int) list ref) Hashtbl.t
      =
    Hashtbl.create 64
  in
  let violations = ref [] in
  List.iter
    (fun (shard, replica, outs) ->
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (txid, committed) ->
          if Hashtbl.mem seen txid then
            violations :=
              Duplicate_resolution { txid; shard; replica } :: !violations
          else Hashtbl.replace seen txid ();
          let commits, aborts =
            match Hashtbl.find_opt outcomes txid with
            | Some cell -> cell
            | None ->
                let cell = (ref [], ref []) in
                Hashtbl.replace outcomes txid cell;
                cell
          in
          let side = if committed then commits else aborts in
          side := (shard, replica) :: !side)
        outs)
    audits;
  Hashtbl.iter
    (fun txid (commits, aborts) ->
      if !commits <> [] && !aborts <> [] then
        violations :=
          Divergent
            { txid; commits = List.rev !commits; aborts = List.rev !aborts }
          :: !violations)
    outcomes;
  List.iter
    (fun (shard, replica, txid, _coord) ->
      violations := Stuck_in_doubt { txid; shard; replica } :: !violations)
    prepared;
  List.iter
    (fun (shard, replica, path, txid) ->
      violations := Residual_lock { path; txid; shard; replica } :: !violations)
    locks;
  List.rev !violations

(** Count of distinct transactions observed resolved (for reports). *)
let resolved_count ~audits =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (_, _, outs) ->
      List.iter (fun (txid, _) -> Hashtbl.replace seen txid ()) outs)
    audits;
  Hashtbl.length seen
