(** Sequential recipe specifications (see model.mli for the conventions:
    versions are backend metadata and excluded from all models). *)

open History

type state =
  | S_counter of int
  | S_queue of (string * string) list
  | S_mutex of int option

type t = {
  name : string;
  init : state;
  step : state -> client:int -> History.op -> (History.response * state) list;
  matches : observed:History.response -> candidate:History.response -> bool;
  droppable_open :
    (History.op -> required:(History.op * History.response) list -> bool)
    option;
}

(* Structural matching, except: object versions are ignored and multisets
   were sorted at capture time, so plain equality is order-insensitive. *)
let default_matches ~observed ~candidate =
  match (observed, candidate) with
  | R_obj { data = d1; _ }, R_obj { data = d2; _ } -> String.equal d1 d2
  | o, c -> o = c

let counter =
  let step state ~client:_ op =
    match (state, op) with
    | S_counter v, Incr -> [ (R_int (v + 1), S_counter (v + 1)) ]
    | S_counter v, Ctr_read ->
        [ (R_obj { data = string_of_int v; version = 0 }, state) ]
    | S_counter v, Ctr_cas { expected_data; data } ->
        if String.equal expected_data (string_of_int v) then
          let v' = try int_of_string data with _ -> v in
          [ (R_bool true, S_counter v') ]
        else [ (R_bool false, state) ]
    | _ -> []
  in
  {
    name = "counter";
    init = S_counter 0;
    step;
    matches = default_matches;
    droppable_open = None;
  }

let queue =
  let step state ~client:_ op =
    match (state, op) with
    | S_queue q, Enq { eid; data } ->
        if List.mem_assoc eid q then []
        else [ (R_unit, S_queue (q @ [ (eid, data) ])) ]
    | S_queue [], Deq -> [ (R_opt None, state) ]
    | S_queue ((_, d) :: rest), Deq -> [ (R_opt (Some d), S_queue rest) ]
    | S_queue q, Deq_elem eid -> (
        match q with
        | (e, _) :: rest when String.equal e eid ->
            [ (R_bool true, S_queue rest) ]
        | _ ->
            if List.mem_assoc eid q then
              [] (* deleting a present non-head element breaks FIFO *)
            else [ (R_bool false, state) ])
    | S_queue q, Q_read ->
        [ (R_multiset (List.sort compare (List.map snd q)), state) ]
    | _ -> []
  in
  (* An ambiguous (unconstrained, optional) Enq whose element is never
     mentioned by any constrained operation — no Deq returned its data,
     no Deq_elem targeted its eid, no Q_read snapshot contains it — can
     be dropped from the search: including it can only block other ops
     (it sits in FIFO order, obstructing heads and emptiness), never
     help, so a witness using it yields a witness without it.  Without
     this prune, k ambiguous adds force a 2^k "which subset applied"
     exploration that memoization cannot collapse (each subset is a
     distinct queue state). *)
  let droppable_open op ~required =
    match op with
    | Enq { eid; data } ->
        not
          (List.exists
             (fun (rop, resp) ->
               match (rop, resp) with
               | Deq_elem e, _ -> String.equal e eid
               | _, R_opt (Some d) -> String.equal d data
               | _, R_multiset ds -> List.exists (String.equal data) ds
               | _ -> false)
             required)
    | _ -> false
  in
  {
    name = "queue";
    init = S_queue [];
    step;
    matches = default_matches;
    droppable_open = Some droppable_open;
  }

let mutex =
  let step state ~client op =
    match (state, op) with
    | S_mutex None, Acquire -> [ (R_unit, S_mutex (Some client)) ]
    | S_mutex (Some _), Acquire -> []
    | S_mutex (Some c), Release when c = client -> [ (R_unit, S_mutex None) ]
    | S_mutex _, Release -> []
    | _ -> []
  in
  {
    name = "mutex";
    init = S_mutex None;
    step;
    matches = default_matches;
    droppable_open = None;
  }

let for_object = function
  | "counter" -> Some counter
  | "queue" -> Some queue
  | "lock" -> Some mutex
  | _ -> None

let check_gate ~threshold entries =
  (* group Enter entries per barrier object *)
  let groups : (string, History.entry list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : History.entry) ->
      match e.op with
      | Enter base -> (
          match Hashtbl.find_opt groups base with
          | Some r -> r := e :: !r
          | None -> Hashtbl.replace groups base (ref [ e ]))
      | _ -> ())
    entries;
  Hashtbl.fold
    (fun base group acc ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
          let invs =
            List.map (fun (e : History.entry) -> e.inv) !group
            |> List.sort compare
          in
          let opens_at =
            if List.length invs < threshold then None
            else Some (List.nth invs (threshold - 1))
          in
          let premature =
            List.find_opt
              (fun (e : History.entry) ->
                match (e.ret, opens_at) with
                | Some r, Some opened -> Edc_simnet.Sim_time.(r < opened)
                | Some _, None -> true (* returned though never full *)
                | None, _ -> false)
              !group
          in
          match premature with
          | None -> Ok ()
          | Some e ->
              Error
                (Fmt.str "barrier %s: %a returned before %d clients entered"
                   base History.pp_entry e threshold)))
    groups (Ok ())
