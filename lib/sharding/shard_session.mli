(** Shard-aware client session (§6j): one logical session multiplexed
    over one FIFO connection per replication group, with deterministic
    routing on top — per-shard session program order is exactly the
    underlying client's. *)

open Edc_zookeeper

type t

(** Connect one client per group; call from a fiber. *)
val connect : ?config:Client.config -> Shard_cluster.t -> t

val conn : t -> int -> Client.t
val route : t -> string -> int

(** Table-2 surface, routed to the owning shard. *)

val create_node :
  t -> ?ephemeral:bool -> ?sequential:bool -> string -> string ->
  (string, Zerror.t) result

val delete : t -> ?version:int -> string -> (unit, Zerror.t) result

val set_data :
  t -> ?expected_version:int -> string -> string -> (int, Zerror.t) result

val get_data :
  t -> ?watch:bool -> string -> (string * Znode.stat, Zerror.t) result

val get_children :
  t -> ?watch:bool -> string -> (string list, Zerror.t) result

val exists : t -> ?watch:bool -> string -> (Znode.stat option, Zerror.t) result

(** Read-your-writes barrier on every shard. *)
val sync : t -> (unit, Zerror.t) result

(** Atomic multi-write: single-shard bundles commit as one transaction on
    their group; cross-shard bundles are coordinated by the lowest
    participant shard's leader via 2PC. *)
val multi :
  t -> Edc_replication.Two_pc.wop list -> (unit, Zerror.t) result

(** Registration gate: single-shard extension programs are admitted on
    their owning group; cross-shard ones must be refused. *)
val classify_program :
  t -> Edc_core.Program.t -> [ `Single of int | `Cross of int list ]

val close : t -> unit
