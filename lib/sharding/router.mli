(** Routing tier: pure classification of client operations and extension
    programs against a {!Shard_map} (§6j).  Client sessions, server
    preprocessors, and the registration gate all evaluate the same
    function, so placement decisions never diverge. *)

open Edc_zookeeper

type placement =
  [ `Shard of int  (** single owning shard *)
  | `Cross of int list  (** participant shards, ascending *)
  | `All  (** session-scoped; every shard the session touches *) ]

(** Owning shard(s) of one client operation: path-addressed operations
    have one owner, [Sync] is a session barrier, a multi owns every shard
    its writes touch. *)
val classify_op : Shard_map.t -> Protocol.op -> placement

(** Where an extension program can reach: [`Single s] when all its
    subscription patterns resolve to shard [s] and every service-call
    target provably stays there (literal paths, the matched [oid], or
    slash-suffixes of it); [`Cross shards] otherwise — unresolvable
    targets are conservatively cross-shard.  Single-shard programs run
    unchanged on their group. *)
val classify_program :
  Shard_map.t -> Edc_core.Program.t -> [ `Single of int | `Cross of int list ]
