(** Routing tier: classify client operations and extension programs
    against a {!Shard_map} (§6j).

    Every router in the deployment — client sessions picking a
    connection, server preprocessors slicing a multi, the registration
    path deciding whether an extension may run — evaluates the same pure
    function of the shard map, so they can never disagree about where an
    object lives. *)

open Edc_zookeeper
module P = Protocol
module Ast = Edc_core.Ast
module Subscription = Edc_core.Subscription
module Program = Edc_core.Program

type placement =
  [ `Shard of int  (** single owning shard *)
  | `Cross of int list  (** participant shards, ascending *)
  | `All  (** session-scoped; every shard the session touches *) ]

let sorted_shards = List.sort_uniq compare

(** Owning shard(s) of one client operation.  Path-addressed operations
    have exactly one owner; [Sync] is a session barrier ([`All]); a multi
    owns every shard its writes touch. *)
let classify_op map (op : P.op) : placement =
  match op with
  | P.Create { path; _ }
  | P.Delete { path; _ }
  | P.Set_data { path; _ }
  | P.Get_data { path; _ }
  | P.Get_children { path; _ }
  | P.Exists { path; _ }
  | P.Block { path } ->
      `Shard (Shard_map.route map path)
  | P.Sync -> `All
  | P.Multi { ops } -> (
      match
        sorted_shards
          (List.map
             (fun w -> Shard_map.route map (Edc_replication.Two_pc.wop_path w))
             ops)
      with
      | [] -> `All
      | [ s ] -> `Shard s
      | shards -> `Cross shards)

(* --- extension programs --- *)

(** Where an oid expression can point.  [`Same] means "the object the
    subscription matched" (the [oid] parameter, or a slash-suffix of it
    — both stay inside the matched object's subtree, hence its shard). *)
let rec oid_class (e : Ast.expr) =
  match e with
  | Ast.Param "oid" -> `Same
  | Ast.Str_lit s -> `Lit s
  | Ast.Binop (Ast.Concat, a, Ast.Str_lit suffix)
    when suffix <> "" && suffix.[0] = '/' ->
      oid_class a
  | Ast.Binop (Ast.Concat, a, _) -> (
      (* appending arbitrary bytes can only preserve placement when the
         head already pins a complete first component *)
      match oid_class a with
      | `Lit p when String.length p > 1 && String.contains_from p 1 '/' ->
          `Lit p
      | _ -> `Unknown)
  | _ -> `Unknown

let svc_oid_arg op (args : Ast.expr list) =
  match (op, args) with
  | Ast.Svc_notify, _ :: oid :: _ -> Some oid (* notify(client, oid) *)
  | Ast.Svc_notify, _ -> None
  | _, oid :: _ -> Some oid
  | _, [] -> None

(** Fold every service-call target in the handlers. *)
let program_oid_classes (p : Program.t) =
  let acc = ref [] in
  let rec expr (e : Ast.expr) =
    match e with
    | Ast.Svc (op, args) ->
        (match svc_oid_arg op args with
        | Some oid -> acc := oid_class oid :: !acc
        | None -> acc := `Unknown :: !acc);
        List.iter expr args
    | Ast.Field (e, _) | Ast.Not e | Ast.Neg e -> expr e
    | Ast.Binop (_, a, b) -> expr a; expr b
    | Ast.Call (_, args) -> List.iter expr args
    | Ast.Unit_lit | Ast.Bool_lit _ | Ast.Int_lit _ | Ast.Str_lit _
    | Ast.Var _ | Ast.Param _ ->
        ()
  in
  let rec stmt (s : Ast.stmt) =
    match s with
    | Ast.Let (_, e) | Ast.Assign (_, e) | Ast.Return e | Ast.Do e -> expr e
    | Ast.Abort _ -> ()
    | Ast.If (c, a, b) -> expr c; List.iter stmt a; List.iter stmt b
    | Ast.For_each (_, e, body) -> expr e; List.iter stmt body
  in
  List.iter (List.iter stmt)
    (List.filter_map Fun.id [ p.Program.on_operation; p.Program.on_event ]);
  !acc

(** [classify_program map p] — [`Single s] when every subscription pattern
    resolves to shard [s] and every service-call target provably stays on
    [s]; otherwise [`Cross shards] (conservative: an unresolvable target
    flags the program cross-shard).  Single-shard programs run on their
    shard exactly as on an unsharded deployment. *)
let classify_program map (p : Program.t) =
  let all = List.init (Shard_map.n_shards map) Fun.id in
  let sub_placements =
    List.map
      (fun (s : Subscription.operation_sub) ->
        Shard_map.shards_of_pattern map s.Subscription.op_oid)
      p.Program.op_subs
    @ List.map
        (fun (s : Subscription.event_sub) ->
          Shard_map.shards_of_pattern map s.Subscription.ev_oid)
        p.Program.event_subs
  in
  let cross = ref false in
  let shards = ref [] in
  List.iter
    (function
      | `Shard s -> shards := s :: !shards
      | `Cross _ -> cross := true)
    sub_placements;
  List.iter
    (function
      | `Same -> () (* rides whatever shard the subscription matched on *)
      | `Lit path -> shards := Shard_map.route map path :: !shards
      | `Unknown -> cross := true)
    (program_oid_classes p);
  if !cross then `Cross all
  else
    match sorted_shards !shards with
    | [ s ] -> `Single s
    | [] -> `Cross all (* nothing pins it anywhere: refuse to guess *)
    | shards -> `Cross shards
