(** Versioned shard map: the deployment's deterministic path → shard
    function (§6j).

    Paths are partitioned by first component — the coarsest unit that
    keeps subtree-shaped watch patterns single-shard — hashed stably over
    [n_shards], with explicit placement rules taking precedence.  The map
    is plain data with a canonical wire form, so every router (client
    sessions, server preprocessors) computes the same placement. *)

type rule = { prefix : string; shard : int }
type t

(** [v n_shards] — hash placement over [n_shards] groups; [rules] pin
    whole subtrees to named shards (first match wins).  Raises
    [Invalid_argument] when [n_shards <= 0] or a rule's shard falls
    outside [0, n_shards). *)
val v : ?version:int -> ?rules:rule list -> int -> t

val version : t -> int
val n_shards : t -> int
val rules : t -> rule list

(** [first_component "/app/x/y"] is ["/app"] — the unit of placement. *)
val first_component : string -> string

val route : t -> string -> int

(** Shards a subscription pattern can reach: [`Shard s] when every
    possible match lives on [s], [`Cross shards] otherwise. *)
val shards_of_pattern :
  t -> Edc_core.Subscription.oid_pattern -> [ `Shard of int | `Cross of int list ]

(** Canonical wire form (total decoder: malformed bytes are [Error],
    never an exception). *)

val to_wire : t -> Edc_wire.Wire.t
val of_wire : Edc_wire.Wire.t -> (t, string) result
val encode : t -> string
val decode : string -> (t, string) result
val pp : Format.formatter -> t -> unit
