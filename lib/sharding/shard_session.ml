(** Shard-aware client session (§6j): one logical session multiplexed
    over one connection per replication group.

    Each underlying connection is an ordinary {!Edc_zookeeper.Client} —
    FIFO to its group, so the per-shard program order ZooKeeper promises
    a session is preserved; the session adds deterministic routing on
    top.  Cross-shard multis are sent to their lowest participant shard,
    whose leader coordinates the 2PC round. *)

open Edc_zookeeper
module P = Protocol
module Two_pc = Edc_replication.Two_pc

type t = { map : Shard_map.t; conns : Client.t array }

(** Connect one client per group; call from a fiber. *)
let connect ?config cluster =
  let conns =
    Array.init (Shard_cluster.n_groups cluster) (fun shard ->
        Shard_cluster.connected_client ?config cluster ~shard ())
  in
  { map = Shard_cluster.map cluster; conns }

let conn t shard = t.conns.(shard)
let route t path = Shard_map.route t.map path
let on_owner t path f = f t.conns.(route t path)

(* Table-2 surface, deterministically routed. *)

let create_node t ?ephemeral ?sequential path data =
  on_owner t path (fun c -> Client.create_node c ?ephemeral ?sequential path data)

let delete t ?version path = on_owner t path (fun c -> Client.delete c ?version path)

let set_data t ?expected_version path data =
  on_owner t path (fun c -> Client.set_data c ?expected_version path data)

let get_data t ?watch path = on_owner t path (fun c -> Client.get_data c ?watch path)

let get_children t ?watch path =
  on_owner t path (fun c -> Client.get_children c ?watch path)

let exists t ?watch path = on_owner t path (fun c -> Client.exists c ?watch path)

(** Read-your-writes barrier on every shard the session can reach. *)
let sync t =
  Array.fold_left
    (fun acc c -> match Client.sync c with Ok () -> acc | Error e -> Error e)
    (Ok ()) t.conns

(** Atomic multi-write.  Single-shard bundles commit as one ordinary
    transaction on their group; cross-shard bundles go to the lowest
    participant, whose leader runs the 2PC round. *)
let multi t ops =
  match Router.classify_op t.map (P.Multi { ops }) with
  | `Shard s -> Client.multi t.conns.(s) ops
  | `Cross (s :: _) -> Client.multi t.conns.(s) ops
  | `Cross [] | `All -> Ok ()

(** Registration gate for extension programs: single-shard programs are
    admitted on their owning group; cross-shard programs are flagged and
    must be refused (their handlers could observe a non-atomic frontier
    across groups). *)
let classify_program t p = Router.classify_program t.map p

let close t = Array.iter Client.close t.conns
