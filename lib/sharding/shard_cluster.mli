(** A sharded deployment (§6j): independent replication groups — one
    {!Edc_zookeeper.Cluster} per shard, each on its own message plane —
    glued by a {!Shard_map} and an inter-shard plane that carries 2PC
    frames between group leaders.  Groups share nothing in the steady
    state; only atomic cross-shard multis touch the inter-shard plane. *)

open Edc_simnet
open Edc_zookeeper

type t

val create :
  ?n_replicas:int ->
  ?net_config:Net.config ->
  ?ishard_net_config:Net.config ->
  ?server_config:Server.config ->
  ?zab_config:Edc_replication.Zab.config ->
  map:Shard_map.t ->
  Sim.t ->
  t

val sim : t -> Sim.t
val map : t -> Shard_map.t
val n_groups : t -> int
val group : t -> int -> Cluster.t
val servers : t -> int -> Server.t array
val shard_leader : t -> int -> Server.t option
val ishard_net : t -> Edc_replication.Two_pc.frame Net.t

(** Client endpoint on one shard's plane; connect from a fiber. *)
val client : ?config:Client.config -> ?replica:int -> t -> shard:int -> unit -> Client.t

val connected_client :
  ?config:Client.config -> ?replica:int -> t -> shard:int -> unit -> Client.t

val crash_server : t -> shard:int -> int -> unit
val restart_server : t -> shard:int -> int -> unit

(** Partition a shard off the inter-shard plane / heal it (shard-targeted
    chaos: stalls prepares into the shard, leaves its group running). *)

val cut_shard : t -> int -> unit
val heal_shard : t -> int -> unit

(** Nemesis adapter for one group, same shape as the unsharded
    deployments': the standard chaos schedules drive crashes, partitions,
    and clock skew inside that shard. *)
val nemesis_target : t -> shard:int -> Nemesis.target

(** {2 Deployment-wide 2PC observations (checker inputs)} *)

(** Resolved outcomes per replica: [(shard, replica, oldest-first
    [(txid, committed)])]. *)
val audits : t -> (int * int * (string * bool) list) list

(** Paths still write-locked: [(shard, replica, path, txid)]. *)
val residual_locks : t -> (int * int * string * string) list

(** Transactions still in doubt: [(shard, replica, txid, coord)]. *)
val residual_prepared : t -> (int * int * string * int) list

val run_for : t -> Sim_time.t -> unit
