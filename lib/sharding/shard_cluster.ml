(** A sharded deployment (§6j): [n_groups] independent replication groups
    — each a full {!Edc_zookeeper.Cluster} on its own client/replica
    message plane — glued together by a shard map and an inter-shard
    plane carrying 2PC frames between group leaders.

    Groups share nothing in the steady state: a group's leader
    preprocesses, orders, and applies only its own shard's writes, which
    is what buys the near-linear write scaling the single leader's serial
    preprocessor CPU otherwise caps (§6d).  The inter-shard plane is used
    only by atomic cross-shard multis. *)

open Edc_simnet
open Edc_zookeeper
module Two_pc = Edc_replication.Two_pc

type t = {
  sim : Sim.t;
  map : Shard_map.t;
  groups : Cluster.t array;
  ishard_net : Two_pc.frame Net.t;
      (** inter-shard plane; node id = shard id *)
  ishard : Two_pc.frame Transport.t;
}

let shard_leader t shard =
  let servers = Cluster.servers t.groups.(shard) in
  let rec find i =
    if i >= Array.length servers then None
    else if Server.is_leader servers.(i) then Some servers.(i)
    else find (i + 1)
  in
  find 0

let create ?(n_replicas = 3) ?net_config ?ishard_net_config ?server_config
    ?zab_config ~map sim =
  let n_groups = Shard_map.n_shards map in
  let groups =
    Array.init n_groups (fun _ ->
        Cluster.create ~n_replicas ?net_config ?server_config ?zab_config sim)
  in
  let ishard_net = Net.create ?config:ishard_net_config sim in
  let ishard = Transport.of_net ishard_net in
  let t = { sim; map; groups; ishard_net; ishard } in
  (* Frames are addressed to a *shard*; the plane hands them to that
     shard's current leader (which re-checks leadership itself — a frame
     landing on a deposed or not-yet-ready leader is dropped and covered
     by the sender's retry / in-doubt inquiry loop). *)
  Array.iteri
    (fun shard _ ->
      Transport.register ishard shard (fun ~src:_ ~size:_ frame ->
          match shard_leader t shard with
          | Some leader -> Server.handle_shard_frame leader frame
          | None -> ()))
    groups;
  let route path = Shard_map.route map path in
  Array.iteri
    (fun shard group ->
      let send dst frame =
        Transport.send ishard ~src:shard ~dst
          ~size:(Two_pc.frame_size frame) frame
      in
      Array.iter
        (fun server ->
          Server.set_sharding server ~shard_id:shard ~route ~send)
        (Cluster.servers group))
    groups;
  t

let sim t = t.sim
let map t = t.map
let n_groups t = Array.length t.groups
let group t shard = t.groups.(shard)
let servers t shard = Cluster.servers t.groups.(shard)
let ishard_net t = t.ishard_net

(** [client t ~shard ()] — a client endpoint on [shard]'s message plane
    (round-robin across its replicas); connect from a fiber. *)
let client ?config ?replica t ~shard () =
  Cluster.client ?config ?replica t.groups.(shard) ()

let connected_client ?config ?replica t ~shard () =
  Cluster.connected_client ?config ?replica t.groups.(shard) ()

let crash_server t ~shard i = Cluster.crash_server t.groups.(shard) i
let restart_server t ~shard i = Cluster.restart_server t.groups.(shard) i

(** Partition shard [s] off the inter-shard plane (both directions, all
    peers): prepares reaching into [s] stall and time out; in-doubt
    participants on [s] keep inquiring until healed. *)
let cut_shard t s =
  Array.iteri
    (fun peer _ -> if peer <> s then Net.cut_link t.ishard_net s peer)
    t.groups

let heal_shard t s =
  Array.iteri
    (fun peer _ -> if peer <> s then Net.heal_link t.ishard_net s peer)
    t.groups

(** Nemesis adapter for one group (same shape as the unsharded
    deployments'), so the standard chaos schedules drive crashes,
    partitions, and clock skew inside any single shard. *)
let nemesis_target t ~shard =
  let cluster = t.groups.(shard) in
  let net = Cluster.net cluster in
  {
    Nemesis.name = Fmt.str "shard%d" shard;
    nodes = List.init (Array.length (Cluster.servers cluster)) Fun.id;
    leader =
      (fun () ->
        match shard_leader t shard with
        | Some s -> Some (Server.id s)
        | None -> None);
    crash = (fun i -> Cluster.crash_server cluster i);
    restart = (fun i -> Cluster.restart_server cluster i);
    cut = Net.cut_link net;
    heal = Net.heal_link net;
    cut_one_way = (fun ~src ~dst -> Net.cut_link_one_way net ~src ~dst);
    heal_one_way = (fun ~src ~dst -> Net.heal_link_one_way net ~src ~dst);
    silence = Net.set_node_down net;
    unsilence = Net.set_node_up net;
    reconfig_in_flight = (fun () -> false);
    set_skew =
      (fun node skew ->
        let servers = Cluster.servers cluster in
        if node < Array.length servers then
          Edc_replication.Zab.set_clock_skew (Server.zab servers.(node)) skew);
  }

(* --- deployment-wide 2PC observations (checker inputs) --- *)

(** Per-replica resolved outcomes: [(shard, replica, (txid, committed)
    list)] — the atomicity checker's observation stream. *)
let audits t =
  Array.to_list
    (Array.mapi
       (fun shard group ->
         Array.to_list
           (Array.mapi
              (fun replica server -> (shard, replica, Server.txn_audit server))
              (Cluster.servers group)))
       t.groups)
  |> List.concat

(** Paths still write-locked anywhere (shard, replica, path, txid). *)
let residual_locks t =
  Array.to_list
    (Array.mapi
       (fun shard group ->
         Array.to_list
           (Array.mapi
              (fun replica server ->
                List.map
                  (fun (path, txid) -> (shard, replica, path, txid))
                  (Server.locked_paths server))
              (Cluster.servers group))
         |> List.concat)
       t.groups)
  |> List.concat

(** In-doubt transactions still parked anywhere. *)
let residual_prepared t =
  Array.to_list
    (Array.mapi
       (fun shard group ->
         Array.to_list
           (Array.mapi
              (fun replica server ->
                List.map
                  (fun (txid, coord) -> (shard, replica, txid, coord))
                  (Server.prepared_txns server))
              (Cluster.servers group))
         |> List.concat)
       t.groups)
  |> List.concat

let run_for t d = Sim.run ~until:(Sim_time.add (Sim.now t.sim) d) t.sim
