(** Versioned shard map: the deployment's deterministic path → shard
    function (§6j).

    The namespace is partitioned by the *first path component*: every
    object under ["/app1"] lives on the same replication group.  That is
    the coarsest unit subtree-shaped watch patterns ([Under],
    [Starts_with]) can be kept single-shard for, so routing never has to
    fan a watch out across groups.  A first component maps to a shard by
    stable hash, overridable per subtree with explicit placement rules;
    the map carries a version so clients and servers can detect they
    disagree about placement after a map change. *)

type rule = { prefix : string; shard : int }

type t = {
  version : int;
  n_shards : int;
  rules : rule list;  (** explicit placements, first match wins *)
}

let v ?(version = 1) ?(rules = []) n_shards =
  if n_shards <= 0 then invalid_arg "Shard_map.v: n_shards must be positive";
  List.iter
    (fun r ->
      if r.shard < 0 || r.shard >= n_shards then
        invalid_arg "Shard_map.v: rule shard out of range")
    rules;
  { version; n_shards; rules }

let version t = t.version
let n_shards t = t.n_shards
let rules t = t.rules

(** First path component, slash-prefixed: ["/app/x/y"] → ["/app"]; the
    root itself is its own component. *)
let first_component path =
  let len = String.length path in
  if len = 0 || path.[0] <> '/' then path
  else
    match String.index_from_opt path 1 '/' with
    | Some i -> String.sub path 0 i
    | None -> path

(* FNV-1a over the bytes: stable across runs and OCaml versions (the map
   crosses the wire; [Hashtbl.hash] is not a protocol). *)
let stable_hash s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

let rule_matches r path =
  let plen = String.length r.prefix in
  String.length path >= plen
  && String.sub path 0 plen = r.prefix
  && (String.length path = plen || path.[plen] = '/' || r.prefix = "/")

let route t path =
  match List.find_opt (fun r -> rule_matches r path) t.rules with
  | Some r -> r.shard (* validated in range by [v] and [of_wire] *)
  | None -> stable_hash (first_component path) mod t.n_shards

(** Shards a subscription pattern can reach.  A pattern whose matches all
    share one first path component resolves to that component's shard;
    anything broader spans every shard. *)
let shards_of_pattern t (p : Edc_core.Subscription.oid_pattern) =
  let single path = `Shard (route t path) in
  let all = `Cross (List.init t.n_shards Fun.id) in
  match p with
  | Edc_core.Subscription.Exact path | Edc_core.Subscription.Under path ->
      (* every match of [Under "/a/b"] starts with component "/a" *)
      if String.length path > 1 && path.[0] = '/' then single path else all
  | Edc_core.Subscription.Starts_with prefix ->
      (* the prefix pins a first component only if it runs past it:
         [Starts_with "/s1/x"] stays on "/s1"'s shard, but "/s1" alone
         also matches "/s10..." which may hash elsewhere *)
      if
        String.length prefix > 1
        && prefix.[0] = '/'
        && String.contains_from prefix 1 '/'
      then single prefix
      else all
  | Edc_core.Subscription.Any_oid -> all

(* --- wire codec (the map is pushed to clients and servers) --- *)

let to_wire t =
  let open Edc_wire.Wire in
  List
    [
      Int t.version;
      Int t.n_shards;
      List
        (List.map (fun r -> List [ Str r.prefix; Int r.shard ]) t.rules);
    ]

let of_wire w =
  let open Edc_wire.Wire in
  match w with
  | List [ Int version; Int n_shards; List rules ] ->
      if version < 0 then Error "shard_map: negative version"
      else if n_shards <= 0 then Error "shard_map: non-positive shard count"
      else
        let rec decode acc = function
          | [] -> Ok (List.rev acc)
          | List [ Str prefix; Int shard ] :: rest ->
              if shard < 0 || shard >= n_shards then
                Error "shard_map: rule shard out of range"
              else decode ({ prefix; shard } :: acc) rest
          | _ -> Error "shard_map: malformed rule"
        in
        Result.map
          (fun rules -> { version; n_shards; rules })
          (decode [] rules)
  | _ -> Error "shard_map: malformed frame"

let encode t = Edc_wire.Wire.encode (to_wire t)

let decode s = Result.bind (Edc_wire.Wire.decode s) of_wire

let pp ppf t =
  Fmt.pf ppf "map v%d over %d shards%a" t.version t.n_shards
    Fmt.(
      list ~sep:nop (fun ppf r -> Fmt.pf ppf " [%s->%d]" r.prefix r.shard))
    t.rules
