(** An EXTENSIBLE DEPSPACE deployment: a DepSpace cluster with the
    extension layer installed on every replica. *)

open Edc_simnet
open Edc_depspace

type t

val create :
  ?f:int ->
  ?net_config:Net.config ->
  ?server_config:Ds_server.config ->
  ?pbft_config:Edc_replication.Pbft.config ->
  ?batch:Edc_replication.Batching.config ->
  ?monitor_lease:Sim_time.t ->
  Sim.t ->
  t

val cluster : t -> Ds_cluster.t
val sim : t -> Sim.t
val net : t -> Ds_protocol.wire Net.t
val eds : t -> int -> Eds.t
val servers : t -> Ds_server.t array
val client : ?config:Ds_client.config -> t -> unit -> Ds_client.t
val crash_server : t -> int -> unit

(** Restart a replica and rebuild its extension manager from the
    replicated space (§3.8). *)
val restart_server : t -> int -> unit

(** Bind nemesis actions to this deployment (leader = PBFT primary). *)
val nemesis_target : t -> Nemesis.target

val run_for : t -> Sim_time.t -> unit
