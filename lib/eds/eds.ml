(** EXTENSIBLE DEPSPACE (EDS, §5.2).

    Installs an extension manager as a new layer at the bottom of the
    DepSpace replica stack (Figure 4): all ordered client requests pass the
    extension layer first; matched operation extensions run in the sandbox
    *on every replica* (active replication), so the verifier runs in
    deterministic mode.  Operations issued by extensions go back through
    the policy-enforcement and access-control layers, exactly as the paper
    requires ("the extension manager does not need to provide additional
    access-control mechanisms for operations invoked by extensions as this
    task is performed by upper layers").

    Extension state is tuples: registering means [out]-ing the object
    [</em/name, code, 0, ts>]; acknowledgments are [</em/name/ack/c, ...>]
    objects; deregistering takes the registration tuple back out.  All
    replicas observe these inserts/removals during ordered execution and
    update their managers identically; a recovering replica rebuilds its
    manager by scanning the space (§3.8).

    Atomicity: proxied mutations apply to the live space immediately but
    are recorded in an undo log; if the sandbox aborts, the log is rolled
    back — deterministically on every replica — and the client receives an
    error.  Unblock cascades and deletion events for extension-issued
    changes are deferred to successful completion, so nothing leaks from
    an aborted run. *)

open Edc_simnet
open Edc_depspace
open Edc_core
module P = Ds_protocol

type t = {
  server : Ds_server.t;
  manager : Manager.t;
  monitor_lease : Sim_time.t;
  mutable in_event : bool;  (** break event-extension feedback loops *)
}

let manager t = t.manager
let server t = t.server

(* ------------------------------------------------------------------ *)
(* Operation classification                                            *)
(* ------------------------------------------------------------------ *)

(** [(kind, oid, data)] for subscription matching: the object id is the
    first (string) field of the tuple or template. *)
let op_info op =
  let open Subscription in
  match op with
  | P.Out { tuple; _ } -> (
      match Access.tuple_name tuple with
      | Some oid ->
          let data =
            match Objects.decode tuple with Some v -> v.Objects.data | None -> ""
          in
          Some (K_create, oid, data)
      | None -> None)
  | P.Rdp tp -> Option.map (fun oid -> (K_read, oid, "")) (Access.template_name tp)
  | P.Rd_all tp ->
      (* a prefix template is the sub-object enumeration *)
      Option.map (fun oid -> (K_sub_objects, oid, "")) (Access.template_name tp)
  | P.Rd tp -> Option.map (fun oid -> (K_block, oid, "")) (Access.template_name tp)
  | P.Inp tp | P.In_ tp ->
      Option.map (fun oid -> (K_delete, oid, "")) (Access.template_name tp)
  | P.Replace { template; tuple } | P.Cas { template; tuple } -> (
      match Access.template_name template with
      | Some oid ->
          let data =
            match Objects.decode tuple with Some v -> v.Objects.data | None -> ""
          in
          Some (K_cas, oid, data)
      | None -> None)
  | P.Renew _ | P.Noop -> None

let classify_oid oid = Manager.classify_path oid

(* ------------------------------------------------------------------ *)
(* The state proxy with undo log                                       *)
(* ------------------------------------------------------------------ *)

type run_ctx = {
  mutable undo : (unit -> unit) list;  (** newest first *)
  mutable inserted : Tuple.t list;  (** newest first; unblock on success *)
  mutable deleted : Tuple.t list;  (** deletion events on success *)
  mutable parked : bool;
}

let new_ctx () = { undo = []; inserted = []; deleted = []; parked = false }

let guard t ~client ~kind ~name ~tuple ~template =
  let space = Ds_server.space t.server in
  let view =
    { Policy.v_client = client; v_kind = kind; v_tuple = tuple; v_template = template }
  in
  match Policy.check (Ds_server.policy t.server) space view with
  | Error why -> Error ("policy: " ^ why)
  | Ok () ->
      if Access.check (Ds_server.access t.server) ~client ~kind ~name then Ok ()
      else Error "access denied"

let make_proxy t ~client ~ts ~blocker ~ctx =
  let space = Ds_server.space t.server in
  let raw_insert ?lease tuple =
    let expiry = Option.map (fun d -> Sim_time.add ts d) lease in
    ignore (Space.insert space ~owner:client ~expiry tuple : int);
    ctx.undo <-
      (fun () -> ignore (Space.take space (Tuple.exact tuple) : Tuple.t option))
      :: ctx.undo;
    ctx.inserted <- tuple :: ctx.inserted
  in
  let raw_take template =
    match Space.take space template with
    | Some old ->
        ctx.undo <-
          (fun () -> ignore (Space.insert space ~owner:client ~expiry:None old : int))
          :: ctx.undo;
        Some old
    | None -> None
  in
  let read_obj oid =
    match Space.find_tuple space (Objects.template oid) with
    | Some tuple -> Objects.decode tuple
    | None -> None
  in
  let deny_em oid =
    if classify_oid oid <> Manager.Not_em then Error "extensions may not touch /em"
    else Ok ()
  in
  let ( let* ) = Result.bind in
  {
    Sandbox.p_read =
      (fun oid ->
        let* () = guard t ~client ~kind:Access.Read ~name:(Some oid) ~tuple:None
                    ~template:(Some (Objects.template oid)) in
        match read_obj oid with
        | Some v ->
            Ok (Value.obj ~id:v.Objects.oid ~data:v.Objects.data
                  ~version:v.Objects.version ~ctime:v.Objects.ctime)
        | None -> Error ("no object " ^ oid));
    p_exists = (fun oid -> Space.find space (Objects.template oid) <> None);
    p_sub_objects =
      (fun oid ->
        let* () = guard t ~client ~kind:Access.Read ~name:(Some (oid ^ "/"))
                    ~tuple:None ~template:(Some (Objects.sub_template oid)) in
        Ok
          (Space.read_all space (Objects.sub_template oid)
          |> List.filter_map Objects.decode
          |> List.map (fun v ->
                 Value.obj ~id:v.Objects.oid ~data:v.Objects.data
                   ~version:v.Objects.version ~ctime:v.Objects.ctime)));
    p_create =
      (fun ~sequential ~oid ~data ->
        let* () = deny_em oid in
        let* () = guard t ~client ~kind:Access.Write ~name:(Some oid)
                    ~tuple:(Some (Objects.tuple ~oid ~data ~version:0
                                    ~ctime:(Sim_time.to_ns ts)))
                    ~template:None in
        let* oid =
          if not sequential then
            if read_obj oid <> None then Error "exists" else Ok oid
          else begin
            (* mint the next sequential suffix from the counter tuple *)
            let n =
              match Space.find_tuple space (Objects.seq_template oid) with
              | Some Tuple.[ Str _; Int n ] -> n
              | Some _ | None -> 0
            in
            ignore (raw_take (Objects.seq_template oid) : Tuple.t option);
            raw_insert (Objects.seq_tuple ~oid ~n:(n + 1));
            Ok (oid ^ Objects.sequence_suffix n)
          end
        in
        raw_insert (Objects.tuple ~oid ~data ~version:0 ~ctime:(Sim_time.to_ns ts));
        Ok oid);
    p_update =
      (fun ~oid ~data ->
        let* () = deny_em oid in
        let* () = guard t ~client ~kind:Access.Write ~name:(Some oid)
                    ~tuple:(Some (Objects.tuple ~oid ~data ~version:0 ~ctime:0))
                    ~template:(Some (Objects.template oid)) in
        match raw_take (Objects.template oid) with
        | Some old -> (
            match Objects.decode old with
            | Some v ->
                let version = v.Objects.version + 1 in
                raw_insert (Objects.tuple ~oid ~data ~version ~ctime:v.Objects.ctime);
                Ok version
            | None -> Error "not an object tuple")
        | None -> Error ("no object " ^ oid));
    p_cas =
      (fun ~oid ~expected ~data ->
        let* () = deny_em oid in
        let* () = guard t ~client ~kind:Access.Write ~name:(Some oid)
                    ~tuple:(Some (Objects.tuple ~oid ~data ~version:0 ~ctime:0))
                    ~template:(Some (Objects.template oid)) in
        match read_obj oid with
        | None -> Error ("no object " ^ oid)
        | Some v ->
            if not (String.equal v.Objects.data expected) then Ok false
            else begin
              ignore (raw_take (Objects.template oid) : Tuple.t option);
              raw_insert
                (Objects.tuple ~oid ~data ~version:(v.Objects.version + 1)
                   ~ctime:v.Objects.ctime);
              Ok true
            end);
    p_delete =
      (fun oid ->
        let* () = deny_em oid in
        let* () = guard t ~client ~kind:Access.Take ~name:(Some oid) ~tuple:None
                    ~template:(Some (Objects.template oid)) in
        match raw_take (Objects.template oid) with
        | Some old ->
            ctx.deleted <- old :: ctx.deleted;
            Ok true
        | None -> Ok false);
    p_block =
      (fun oid ->
        match blocker with
        | Some rseq ->
            if read_obj oid <> None then
              (* already there: the handler's own return value answers the
                 client immediately *)
              Ok ()
            else begin
              let handle =
                Space.park space ~client ~rseq ~template:(Objects.template oid)
                  ~take:false
              in
              ctx.undo <- (fun () -> Space.unpark space handle) :: ctx.undo;
              ctx.parked <- true;
              Ok ()
            end
        | None -> Error "block is only available to operation extensions");
    p_monitor =
      (fun oid ->
        let* () = deny_em oid in
        if read_obj oid <> None then Ok ()
        else begin
          raw_insert ~lease:t.monitor_lease
            (Objects.tuple ~oid ~data:"" ~version:0 ~ctime:(Sim_time.to_ns ts));
          Ok ()
        end);
    p_notify = (fun ~client:_ ~oid:_ -> Error "DepSpace has no notification channel");
    p_clock = (fun () -> Sim_time.to_ns ts);
  }

let rollback ctx = List.iter (fun undo -> undo ()) ctx.undo

(* ------------------------------------------------------------------ *)
(* Event extensions + commit (mutually recursive through deletion
   events)                                                             *)
(* ------------------------------------------------------------------ *)

let rec run_event_extensions t ~ts ~kind ~oid ~trigger_client =
  if not t.in_event then begin
    t.in_event <- true;
    Fun.protect ~finally:(fun () -> t.in_event <- false) @@ fun () ->
    let entries = Manager.match_events t.manager ~kind ~oid in
    List.iter
      (fun (entry : Manager.entry) ->
        let ctx = new_ctx () in
        let proxy = make_proxy t ~client:entry.Manager.owner ~ts ~blocker:None ~ctx in
        let params =
          [
            ("oid", Value.Str oid);
            ("kind", Value.Str (Subscription.event_kind_to_string kind));
            ("client", Value.Int trigger_client);
          ]
        in
        match Manager.run_event t.manager entry ~proxy ~params with
        | Ok _ ->
            (* fire unblock cascades; in_event stops recursive events *)
            List.iter
              (fun tuple -> Ds_server.process_unblocked t.server ~ts tuple)
              (List.rev ctx.inserted)
        | Error e ->
            rollback ctx;
            Logs.warn (fun m ->
                m "EDS event extension %s failed: %s"
                  entry.Manager.program.Program.name (Sandbox.error_to_string e)))
      entries
  end

and deletion_event t ~ts tuple =
  match Access.tuple_name tuple with
  | Some oid when classify_oid oid = Manager.Not_em ->
      (* bind the owner client when the oid encodes one, as the paper's
         recipes do ("client id encoded in oid", Fig. 11) *)
      let trigger_client =
        match String.rindex_opt oid '/' with
        | Some i -> (
            match
              int_of_string_opt (String.sub oid (i + 1) (String.length oid - i - 1))
            with
            | Some c -> c
            | None -> 0)
        | None -> 0
      in
      run_event_extensions t ~ts ~kind:Subscription.E_deleted ~oid ~trigger_client
  | Some _ | None -> ()

let commit t ~ts ctx =
  List.iter
    (fun tuple -> Ds_server.process_unblocked t.server ~ts tuple)
    (List.rev ctx.inserted);
  List.iter (fun tuple -> deletion_event t ~ts tuple) (List.rev ctx.deleted)

(* ------------------------------------------------------------------ *)
(* Operation extensions at the extension layer                         *)
(* ------------------------------------------------------------------ *)

let run_operation_extension t ~client ~rseq ~ts ~entry ~kind ~oid ~data =
  let ctx = new_ctx () in
  let proxy = make_proxy t ~client ~ts ~blocker:(Some rseq) ~ctx in
  let params =
    [
      ("oid", Value.Str oid);
      ("data", Value.Str data);
      ("client", Value.Int client);
      ("kind", Value.Str (Subscription.op_kind_to_string kind));
    ]
  in
  match Manager.run_operation t.manager entry ~proxy ~params with
  | Ok value ->
      commit t ~ts ctx;
      if ctx.parked then Ds_server.No_reply
      else Ds_server.Handled (P.Ext_r (Value.serialize value))
  | Error e ->
      rollback ctx;
      Ds_server.Rejected (Sandbox.error_to_string e)

(** Requests touching the manager's tuples: registration lifecycle.
    Returns the action for every /em-related operation; [None] means the
    operation does not involve the manager's namespace. *)
let em_intercept t ~client op =
  let immutable = Ds_server.Rejected "extension objects are immutable" in
  match op with
  | P.Out { tuple; _ } -> (
      match Access.tuple_name tuple with
      | Some oid -> (
          match classify_oid oid with
          | Manager.Not_em -> None
          | Manager.Em_extension name -> (
              match Objects.decode tuple with
              | None -> Some (Ds_server.Rejected "malformed registration object")
              | Some v -> (
                  match Manager.verify_code t.manager v.Objects.data with
                  | Error msg -> Some (Ds_server.Rejected msg)
                  | Ok program ->
                      if program.Program.name <> name then
                        Some (Ds_server.Rejected "name mismatch")
                      else if Manager.find t.manager name <> None then
                        Some (Ds_server.Rejected "already registered")
                      else Some Ds_server.Pass (* registered via on_inserted *)))
          | Manager.Em_ack (name, c) ->
              if c <> client then
                Some (Ds_server.Rejected "may only ack for oneself")
              else if Manager.find t.manager name = None then
                Some (Ds_server.Rejected "unknown extension")
              else Some Ds_server.Pass
          | Manager.Em_root | Manager.Em_index ->
              Some (Ds_server.Rejected "reserved object"))
      | None -> None)
  | P.Inp tp | P.In_ tp -> (
      match Access.template_name tp with
      | Some oid -> (
          match classify_oid oid with
          | Manager.Not_em -> None
          | Manager.Em_extension name -> (
              match Manager.find t.manager name with
              | Some entry when entry.Manager.owner <> client ->
                  Some (Ds_server.Rejected "only the owner may deregister")
              | Some _ | None -> Some Ds_server.Pass (* via on_deleted *))
          | Manager.Em_ack (_, c) ->
              if c = client then Some Ds_server.Pass
              else Some (Ds_server.Rejected "may only un-ack for oneself")
          | Manager.Em_root | Manager.Em_index -> Some immutable)
      | None -> None)
  | P.Replace { template; _ } | P.Cas { template; _ } -> (
      match Access.template_name template with
      | Some oid when classify_oid oid <> Manager.Not_em -> Some immutable
      | Some _ | None -> None)
  | P.Rdp _ | P.Rd _ | P.Rd_all _ | P.Renew _ | P.Noop -> None

let intercept t ~client ~rseq ~ts op =
  match em_intercept t ~client op with
  | Some action -> action
  | None -> (
      match op_info op with
      | None -> Ds_server.Pass
      | Some (kind, oid, data) -> (
          match Manager.match_operation t.manager ~client ~kind ~oid with
          | Some entry ->
              run_operation_extension t ~client ~rseq ~ts ~entry ~kind ~oid ~data
          | None -> Ds_server.Pass))

(* ------------------------------------------------------------------ *)
(* Registry bookkeeping (every replica, during ordered execution)      *)
(* ------------------------------------------------------------------ *)

let on_inserted t ~ts ~owner tuple =
  ignore ts;
  match Objects.decode tuple with
  | Some v -> (
      match classify_oid v.Objects.oid with
      | Manager.Em_extension name -> (
          match Manager.apply_registration t.manager ~name ~owner ~code:v.Objects.data with
          | Ok _ -> ()
          | Error msg ->
              Logs.warn (fun m -> m "EDS replica refused extension %s: %s" name msg))
      | Manager.Em_ack (name, client) -> Manager.apply_ack t.manager ~name ~client
      | Manager.Em_root | Manager.Em_index | Manager.Not_em -> ())
  | None -> ()

let on_deleted t ~ts tuple =
  (match Access.tuple_name tuple with
  | Some oid -> (
      match classify_oid oid with
      | Manager.Em_extension name -> Manager.apply_deregistration t.manager ~name
      | Manager.Em_ack (name, client) -> Manager.apply_unack t.manager ~name ~client
      | Manager.Em_root | Manager.Em_index | Manager.Not_em -> ())
  | None -> ());
  deletion_event t ~ts tuple

let on_unblock t ~client template tuple =
  (* an unblock is DepSpace's event (§5.2.2): matching event extensions run
     and may re-block the call by returning the string "reblock". *)
  let oid = match Access.template_name template with Some o -> o | None -> "" in
  let entries = Manager.match_events t.manager ~kind:Subscription.E_unblocked ~oid in
  let reblock = ref false in
  List.iter
    (fun (entry : Manager.entry) ->
      let ctx = new_ctx () in
      let proxy =
        make_proxy t ~client ~ts:Sim_time.zero ~blocker:None ~ctx
      in
      let params =
        [
          ("oid", Value.Str oid);
          ("kind", Value.Str "unblocked");
          ("client", Value.Int client);
          ("data",
           Value.Str
             (match Objects.decode tuple with
             | Some v -> v.Objects.data
             | None -> ""));
        ]
      in
      match Manager.run_event t.manager entry ~proxy ~params with
      | Ok (Value.Str "reblock") -> reblock := true
      | Ok _ -> ()
      | Error e ->
          rollback ctx;
          Logs.warn (fun m ->
              m "EDS unblock extension failed: %s" (Sandbox.error_to_string e)))
    entries;
  if !reblock then `Reblock else `Proceed

(* ------------------------------------------------------------------ *)
(* Installation and recovery                                           *)
(* ------------------------------------------------------------------ *)

let install ?(monitor_lease = Sim_time.sec 8) server =
  let manager = Manager.create ~mode:Verify.Active () in
  let t = { server; manager; monitor_lease; in_event = false } in
  Ds_server.set_hook_intercept server (fun _srv ~client ~rseq ~ts op ->
      intercept t ~client ~rseq ~ts op);
  Ds_server.set_hook_fast_path_allowed server (fun _srv ~client op ->
      Manager.extension_count t.manager = 0
      ||
      match op_info op with
      | Some (kind, oid, _) ->
          Manager.match_operation t.manager ~client ~kind ~oid = None
      | None -> true);
  Ds_server.set_hook_on_inserted server (fun _srv ~ts ~owner tuple ->
      on_inserted t ~ts ~owner tuple);
  Ds_server.set_hook_on_deleted server (fun _srv ~ts tuple -> on_deleted t ~ts tuple);
  Ds_server.set_hook_on_unblock server (fun _srv ~client template tuple ->
      on_unblock t ~client template tuple);
  t

(** [reload t] rebuilds the manager from the replicated space (§3.8). *)
let reload t =
  let space = Ds_server.space t.server in
  List.iter
    (fun tuple ->
      match Objects.decode tuple with
      | Some v -> (
          match classify_oid v.Objects.oid with
          | Manager.Em_extension name ->
              (* the registering client's identity is not recoverable from
                 the tuple fields; DepSpace stores it as the tuple's owner,
                 which the scan below cannot see — so registration objects
                 embed the owner in a sibling ack object created by the
                 registration client itself.  The first ack is the owner. *)
              (match Manager.apply_registration t.manager ~name ~owner:0 ~code:v.Objects.data with
              | Ok _ -> ()
              | Error msg ->
                  Logs.warn (fun m -> m "EDS reload refused %s: %s" name msg))
          | Manager.Em_ack (name, client) -> Manager.apply_ack t.manager ~name ~client
          | Manager.Em_root | Manager.Em_index | Manager.Not_em -> ())
      | None -> ())
    (Space.read_all space Tuple.[ Prefix "/em/"; Any; Any; Any ])
