(** An EXTENSIBLE DEPSPACE deployment: a DepSpace cluster with the
    extension layer installed on every replica. *)

open Edc_simnet
open Edc_depspace

type t = {
  cluster : Ds_cluster.t;
  edss : Eds.t array;
  monitor_lease : Sim_time.t option;  (* re-used when a replica restarts *)
}

let create ?f ?net_config ?server_config ?pbft_config ?batch ?monitor_lease
    sim =
  let cluster =
    Ds_cluster.create ?f ?net_config ?server_config ?pbft_config ?batch sim
  in
  let edss =
    Array.map (fun s -> Eds.install ?monitor_lease s) (Ds_cluster.servers cluster)
  in
  { cluster; edss; monitor_lease }

let cluster t = t.cluster
let sim t = Ds_cluster.sim t.cluster
let net t = Ds_cluster.net t.cluster
let eds t i = t.edss.(i)
let servers t = Ds_cluster.servers t.cluster
let client ?config t () = Ds_cluster.client ?config t.cluster ()
let crash_server t i = Ds_cluster.crash_server t.cluster i

(** Restart a replica and rebuild its extension manager from the
    replicated space (§3.8): the durable tuples survive the crash, the
    volatile manager state is rescanned from them. *)
let restart_server t i =
  Ds_cluster.restart_server t.cluster i;
  let fresh =
    Eds.install ?monitor_lease:t.monitor_lease (Ds_cluster.servers t.cluster).(i)
  in
  Eds.reload fresh;
  t.edss.(i) <- fresh

let nemesis_target t =
  let net = Ds_cluster.net t.cluster in
  let servers = Ds_cluster.servers t.cluster in
  let n = Array.length servers in
  {
    Nemesis.name = "eds";
    nodes = List.init n Fun.id;
    leader =
      (fun () ->
        (* the primary of the current PBFT view, if it is alive *)
        let rec find i =
          if i >= n then None
          else if Edc_replication.Pbft.is_primary (Ds_server.pbft servers.(i))
          then Some i
          else find (i + 1)
        in
        find 0);
    crash = crash_server t;
    restart = restart_server t;
    cut = Net.cut_link net;
    heal = Net.heal_link net;
    cut_one_way = (fun ~src ~dst -> Net.cut_link_one_way net ~src ~dst);
    heal_one_way = (fun ~src ~dst -> Net.heal_link_one_way net ~src ~dst);
    silence = Net.set_node_down net;
    unsilence = Net.set_node_up net;
    (* PBFT membership is static in this deployment *)
    reconfig_in_flight = (fun () -> false);
    set_skew = (fun _ _ -> ()) (* no leases, no virtual clock *);
  }

let run_for t d = Ds_cluster.run_for t.cluster d
