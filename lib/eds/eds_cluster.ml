(** An EXTENSIBLE DEPSPACE deployment: a DepSpace cluster with the
    extension layer installed on every replica. *)

open Edc_depspace

type t = { cluster : Ds_cluster.t; edss : Eds.t array }

let create ?f ?net_config ?server_config ?pbft_config ?batch ?monitor_lease
    sim =
  let cluster =
    Ds_cluster.create ?f ?net_config ?server_config ?pbft_config ?batch sim
  in
  let edss =
    Array.map (fun s -> Eds.install ?monitor_lease s) (Ds_cluster.servers cluster)
  in
  { cluster; edss }

let cluster t = t.cluster
let sim t = Ds_cluster.sim t.cluster
let net t = Ds_cluster.net t.cluster
let eds t i = t.edss.(i)
let servers t = Ds_cluster.servers t.cluster
let client ?config t () = Ds_cluster.client ?config t.cluster ()
let crash_server t i = Ds_cluster.crash_server t.cluster i
let run_for t d = Ds_cluster.run_for t.cluster d
