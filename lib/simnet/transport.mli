(** The message plane replica code is written against.

    {!Net} is one implementation (simulated links, modelled latency and
    byte accounting); a real-socket implementation lives outside the
    simulator (see [Edc_wire.Tcp_transport]).  Replica and client code
    takes an ['m t] and never mentions the backing network, so the same
    deployment runs in-sim and on the wire.

    The signature is deliberately the minimal message plane: typed
    point-to-point sends carrying a modelled size, and per-address handler
    registration.  Failure injection and byte accounting stay on the
    concrete {!Net} — they are properties of the simulated network, not of
    the abstraction. *)

(** What an implementation must provide.  First-class values of type
    ['m t] below are records of exactly these two operations, so replica
    code can be polymorphic over implementations without functorization. *)
module type S = sig
  type 'm t

  val send : 'm t -> src:Net.addr -> dst:Net.addr -> size:int -> 'm -> unit

  val send_many :
    'm t -> src:Net.addr -> dsts:Net.addr list -> size:int -> 'm -> unit

  val register : 'm t -> Net.addr -> 'm Net.handler -> unit
end

type 'm t = {
  send : src:Net.addr -> dst:Net.addr -> size:int -> 'm -> unit;
      (** fire-and-forget; delivery may silently fail (node down, link
          cut, connection refused) — protocols must tolerate loss *)
  send_many : src:Net.addr -> dsts:Net.addr list -> size:int -> 'm -> unit;
      (** one message to many destinations, in list order.  Semantically
          [List.iter (send ...) dsts]; implementations that serialize
          (the TCP transport) encode the frame {e once} and enqueue the
          same bytes on every connection, so an N-replica broadcast pays
          one encode (encode-once broadcast, DESIGN.md §6g) *)
  register : Net.addr -> 'm Net.handler -> unit;
      (** install (or replace) the handler for a local address *)
}

val send : 'm t -> src:Net.addr -> dst:Net.addr -> size:int -> 'm -> unit

val send_many :
  'm t -> src:Net.addr -> dsts:Net.addr list -> size:int -> 'm -> unit

val register : 'm t -> Net.addr -> 'm Net.handler -> unit

(** The simulated-network implementation. *)
val of_net : 'm Net.t -> 'm t
