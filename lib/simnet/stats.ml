(** Measurement accumulators for the evaluation harness. *)

(** Streaming summary statistics (Welford's algorithm). *)
module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.mean

  let variance t =
    if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)

  let stddev t = sqrt (variance t)
  let min t = if t.count = 0 then 0.0 else t.min
  let max t = if t.count = 0 then 0.0 else t.max

  let pp ppf t =
    Fmt.pf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.count (mean t)
      (stddev t) (min t) (max t)
end

(** Sample series with exact percentiles (sorted on demand). *)
module Series = struct
  type t = {
    mutable data : float array;
    mutable size : int;
    mutable sorted : bool;
  }

  let create () = { data = Array.make 64 0.0; size = 0; sorted = false }

  let add t x =
    if t.size >= Array.length t.data then begin
      let bigger = Array.make (2 * Array.length t.data) 0.0 in
      Array.blit t.data 0 bigger 0 t.size;
      t.data <- bigger
    end;
    t.data.(t.size) <- x;
    t.size <- t.size + 1;
    t.sorted <- false

  let count t = t.size

  let mean t =
    if t.size = 0 then 0.0
    else begin
      let sum = ref 0.0 in
      for i = 0 to t.size - 1 do
        sum := !sum +. t.data.(i)
      done;
      !sum /. float_of_int t.size
    end

  let ensure_sorted t =
    if not t.sorted then begin
      let slice = Array.sub t.data 0 t.size in
      Array.sort Float.compare slice;
      Array.blit slice 0 t.data 0 t.size;
      t.sorted <- true
    end

  (** [percentile t p] for [p] in [0, 100]; standard nearest-rank method:
      the smallest value with at least [p]% of the sample at or below it
      (rank [ceil (p/100 * n)], 1-based).  [p = 0] is the minimum and
      [p = 100] the maximum, both exact. *)
  let percentile t p =
    if t.size = 0 then 0.0
    else begin
      ensure_sorted t;
      let rank =
        int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.size)) - 1
      in
      let rank = Stdlib.max 0 (Stdlib.min (t.size - 1) rank) in
      t.data.(rank)
    end

  let median t = percentile t 50.0
  let p99 t = percentile t 99.0
  let min t = percentile t 0.0
  let max t = percentile t 100.0
  let clear t = t.size <- 0
end

(** Event counter with a helper for converting to a rate over a simulated
    measurement window. *)
module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let incr t = t.n <- t.n + 1
  let add t k = t.n <- t.n + k
  let get t = t.n
  let clear t = t.n <- 0

  (** [rate t ~window] is events per second of simulated time. *)
  let rate t ~window =
    let seconds = Sim_time.to_float_s window in
    if seconds <= 0.0 then 0.0 else float_of_int t.n /. seconds
end
