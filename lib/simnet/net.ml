(** Simulated message-passing network.

    Point-to-point messages between integer-addressed nodes with a
    configurable latency model (base one-way latency, multiplicative jitter,
    serialization cost per byte).  Every message carries a modelled wire
    size; the network keeps per-node sent/received byte counters, which the
    evaluation harness uses to reproduce the paper's "data sent by client"
    figures (Figs. 8 and 10).  Links and nodes can be cut to inject
    failures. *)

type addr = int

type 'm handler = src:addr -> size:int -> 'm -> unit

type config = {
  base_latency : Sim_time.t;  (** one-way propagation delay *)
  jitter : float;  (** multiplicative jitter: delay *= 1 + U(0,jitter) *)
  ns_per_byte : float;  (** serialization cost (8.0 ≈ 1 Gbit/s) *)
  loopback_latency : Sim_time.t;  (** delay for self-sends *)
}

let lan_config =
  {
    base_latency = Sim_time.us 100;
    jitter = 0.1;
    ns_per_byte = 8.0;
    loopback_latency = Sim_time.us 2;
  }

(** Wide-area profile used by the geo-distribution ablation (§6.3). *)
let wan_config =
  {
    base_latency = Sim_time.ms 20;
    jitter = 0.05;
    ns_per_byte = 8.0;
    loopback_latency = Sim_time.us 2;
  }

type counters = { mutable sent_bytes : int; mutable recv_bytes : int; mutable sent_msgs : int }

type 'm t = {
  sim : Sim.t;
  config : config;
  rng : Rng.t;
  handlers : (addr, 'm handler) Hashtbl.t;
  down : (addr, unit) Hashtbl.t;
  cut : (addr * addr, unit) Hashtbl.t;
  cut_one_way : (addr * addr, unit) Hashtbl.t;  (* directed (src, dst) *)
  node_counters : (addr, counters) Hashtbl.t;
  last_delivery : (addr * addr, Sim_time.t) Hashtbl.t;
  mutable total_sent_bytes : int;
  mutable total_msgs : int;
  mutable dropped : int;
}

let create ?(config = lan_config) sim =
  {
    sim;
    config;
    rng = Rng.split (Sim.rng sim);
    handlers = Hashtbl.create 64;
    down = Hashtbl.create 8;
    cut = Hashtbl.create 8;
    cut_one_way = Hashtbl.create 8;
    node_counters = Hashtbl.create 64;
    last_delivery = Hashtbl.create 64;
    total_sent_bytes = 0;
    total_msgs = 0;
    dropped = 0;
  }

(** [register t addr handler] installs the message handler for a node;
    replaces any previous handler (used when a crashed node restarts). *)
let register t addr handler = Hashtbl.replace t.handlers addr handler

let counters_for t addr =
  match Hashtbl.find_opt t.node_counters addr with
  | Some c -> c
  | None ->
      let c = { sent_bytes = 0; recv_bytes = 0; sent_msgs = 0 } in
      Hashtbl.replace t.node_counters addr c;
      c

let node_is_down t addr = Hashtbl.mem t.down addr

let link_key a b = if a <= b then (a, b) else (b, a)

let link_is_cut t a b =
  Hashtbl.mem t.cut (link_key a b) || Hashtbl.mem t.cut_one_way (a, b)

(** [set_node_down t addr] makes the node unreachable: messages to or from
    it are silently dropped (crash model). *)
let set_node_down t addr = Hashtbl.replace t.down addr ()

let set_node_up t addr = Hashtbl.remove t.down addr

(** [cut_link t a b] drops all traffic between [a] and [b] (both ways). *)
let cut_link t a b = Hashtbl.replace t.cut (link_key a b) ()

let heal_link t a b = Hashtbl.remove t.cut (link_key a b)

(** [cut_link_one_way t ~src ~dst] drops only [src]→[dst] traffic, leaving
    the reverse direction intact (asymmetric partition: the victim can
    hear the cluster but nobody hears the victim). *)
let cut_link_one_way t ~src ~dst = Hashtbl.replace t.cut_one_way (src, dst) ()

let heal_link_one_way t ~src ~dst = Hashtbl.remove t.cut_one_way (src, dst)

let delay_for t ~src ~dst ~size =
  let base =
    if src = dst then t.config.loopback_latency else t.config.base_latency
  in
  (* Exponential (long-tailed) jitter: real networks and OS schedulers
     occasionally delay a message by several times the mean, which is what
     rotates winners between competing closed-loop clients.  Bounded
     uniform jitter lets deterministic phase-locking starve all but one
     contender — an artifact, not a property of the protocols. *)
  let jittered =
    Sim_time.scale base (1.0 +. Rng.exponential t.rng ~mean:t.config.jitter)
  in
  let wire = Sim_time.ns (int_of_float (t.config.ns_per_byte *. float_of_int size)) in
  Sim_time.add jittered wire

(** [send t ~src ~dst ~size msg] transmits [msg].  Bytes are charged to
    [src] at send time (the paper's client-cost metric counts transmitted
    data whether or not the operation succeeds).  Delivery is dropped if
    either endpoint is down or the link is cut. *)
let send t ~src ~dst ~size msg =
  let c = counters_for t src in
  c.sent_bytes <- c.sent_bytes + size;
  c.sent_msgs <- c.sent_msgs + 1;
  t.total_sent_bytes <- t.total_sent_bytes + size;
  t.total_msgs <- t.total_msgs + 1;
  if node_is_down t src || node_is_down t dst || link_is_cut t src dst then
    t.dropped <- t.dropped + 1
  else begin
    (* Links are FIFO (TCP-like): a message never overtakes an earlier one
       on the same directed link, even under jitter. *)
    let arrival = Sim_time.add (Sim.now t.sim) (delay_for t ~src ~dst ~size) in
    let arrival =
      match Hashtbl.find_opt t.last_delivery (src, dst) with
      | Some prev when Sim_time.(arrival <= prev) -> Sim_time.add prev (Sim_time.ns 1)
      | _ -> arrival
    in
    Hashtbl.replace t.last_delivery (src, dst) arrival;
    let delay = Sim_time.sub arrival (Sim.now t.sim) in
    Sim.schedule t.sim ~after:delay (fun () ->
        (* Messages already in flight are delivered unless the receiver has
           crashed in the meantime. *)
        if not (node_is_down t dst) then
          match Hashtbl.find_opt t.handlers dst with
          | Some handler ->
              let rc = counters_for t dst in
              rc.recv_bytes <- rc.recv_bytes + size;
              handler ~src ~size msg
          | None -> t.dropped <- t.dropped + 1
        else t.dropped <- t.dropped + 1)
  end

(** [broadcast t ~src ~dsts ~size msg] sends one copy to each destination
    (client multicast in the BFT protocol: bytes charged per copy). *)
let broadcast t ~src ~dsts ~size msg =
  List.iter (fun dst -> send t ~src ~dst ~size msg) dsts

let bytes_sent_by t addr = (counters_for t addr).sent_bytes
let bytes_received_by t addr = (counters_for t addr).recv_bytes
let messages_sent_by t addr = (counters_for t addr).sent_msgs
let total_bytes_sent t = t.total_sent_bytes
let total_messages t = t.total_msgs
let dropped_messages t = t.dropped

(** [reset_counters t] zeroes all byte/message counters; failure state and
    handlers are preserved.  Used to scope measurements to a steady-state
    window. *)
let reset_counters t =
  Hashtbl.reset t.node_counters;
  t.total_sent_bytes <- 0;
  t.total_msgs <- 0;
  t.dropped <- 0
