(** Simulated message-passing network.

    Point-to-point messages between integer-addressed nodes.  Links are
    FIFO (TCP-like); delay = base latency × (1 + exponential jitter) +
    per-byte serialization.  Every message carries a modelled wire size,
    and per-node sent/received byte counters back the paper's
    "data sent by client" metric (Figs. 8/10).  Nodes and links can be
    taken down to inject failures. *)

type addr = int
type 'm handler = src:addr -> size:int -> 'm -> unit

type config = {
  base_latency : Sim_time.t;  (** one-way propagation delay *)
  jitter : float;  (** mean of the exponential multiplicative jitter *)
  ns_per_byte : float;  (** serialization cost (8.0 ≈ 1 Gbit/s) *)
  loopback_latency : Sim_time.t;  (** delay for self-sends *)
}

(** Data-center profile (the paper's switched Gigabit Ethernet). *)
val lan_config : config

(** Wide-area profile for the geo-distribution ablation (§6.3). *)
val wan_config : config

type 'm t

val create : ?config:config -> Sim.t -> 'm t

(** [register t addr handler] installs (or replaces) a node's handler. *)
val register : 'm t -> addr -> 'm handler -> unit

(** [send t ~src ~dst ~size msg] transmits one message.  Bytes are charged
    to [src] at send time; delivery is dropped if either endpoint is down
    or the link is cut. *)
val send : 'm t -> src:addr -> dst:addr -> size:int -> 'm -> unit

(** [broadcast t ~src ~dsts ~size msg] sends one copy per destination
    (bytes charged per copy — the BFT client multicast cost). *)
val broadcast : 'm t -> src:addr -> dsts:addr list -> size:int -> 'm -> unit

(** Failure injection. *)

val set_node_down : 'm t -> addr -> unit
val set_node_up : 'm t -> addr -> unit
val cut_link : 'm t -> addr -> addr -> unit
val heal_link : 'm t -> addr -> addr -> unit

(** [cut_link_one_way t ~src ~dst] drops only [src]→[dst] traffic
    (asymmetric partition); the reverse direction keeps flowing. *)
val cut_link_one_way : 'm t -> src:addr -> dst:addr -> unit

val heal_link_one_way : 'm t -> src:addr -> dst:addr -> unit

(** Accounting. *)

val bytes_sent_by : 'm t -> addr -> int
val bytes_received_by : 'm t -> addr -> int
val messages_sent_by : 'm t -> addr -> int
val total_bytes_sent : 'm t -> int
val total_messages : 'm t -> int
val dropped_messages : 'm t -> int

(** [reset_counters t] zeroes the byte/message counters only. *)
val reset_counters : 'm t -> unit
