(** Message-plane abstraction over {!Net} (see the interface). *)

module type S = sig
  type 'm t

  val send : 'm t -> src:Net.addr -> dst:Net.addr -> size:int -> 'm -> unit

  val send_many :
    'm t -> src:Net.addr -> dsts:Net.addr list -> size:int -> 'm -> unit

  val register : 'm t -> Net.addr -> 'm Net.handler -> unit
end

type 'm t = {
  send : src:Net.addr -> dst:Net.addr -> size:int -> 'm -> unit;
  send_many : src:Net.addr -> dsts:Net.addr list -> size:int -> 'm -> unit;
  register : Net.addr -> 'm Net.handler -> unit;
}

let send t ~src ~dst ~size msg = t.send ~src ~dst ~size msg
let send_many t ~src ~dsts ~size msg = t.send_many ~src ~dsts ~size msg
let register t addr handler = t.register addr handler

let of_net net =
  {
    send = (fun ~src ~dst ~size msg -> Net.send net ~src ~dst ~size msg);
    send_many =
      (fun ~src ~dsts ~size msg ->
        List.iter (fun dst -> Net.send net ~src ~dst ~size msg) dsts);
    register = (fun addr handler -> Net.register net addr handler);
  }
