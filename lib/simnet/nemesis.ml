(** Deterministic fault injection over the simulator.  See the interface
    for the model; the one invariant maintained here is the single-active-
    disruption interlock, which keeps quorum recoverable and makes
    per-fault recovery time well-defined. *)

type target = {
  name : string;
  nodes : int list;
  leader : unit -> int option;
  crash : int -> unit;
  restart : int -> unit;
  cut : int -> int -> unit;
  heal : int -> int -> unit;
  cut_one_way : src:int -> dst:int -> unit;
  heal_one_way : src:int -> dst:int -> unit;
  silence : int -> unit;
  unsilence : int -> unit;
  reconfig_in_flight : unit -> bool;
  set_skew : int -> Sim_time.t -> unit;
}

type fault =
  | Crash of { node : int; leader : bool }
  | Restart of { node : int }
  | Partition of { isolated : int; rest : int list; asymmetric : bool }
  | Heal of { isolated : int }
  | Storm_start of { node : int }
  | Storm_end of { node : int }
  | Reconfig_fault of { node : int; kind : string }
  | Skew_set of { node : int; skew : Sim_time.t }
  | Skew_clear of { node : int }
  | Custom_start of { node : int; name : string }
  | Custom_end of { node : int; name : string }

type event = { at : Sim_time.t; fault : fault }

type victim = Any_replica | Leader | Node of int

type action =
  | Crash_restart of { downtime : Sim_time.t; victim : victim }
  | Isolate of { duration : Sim_time.t; victim : victim; asymmetric : bool }
  | Storm of { duration : Sim_time.t; victim : victim }
  | Reconfig_kill of { grace : Sim_time.t; downtime : Sim_time.t }
      (* polls until a reconfiguration is in flight, then kills the
         proposing leader within [grace] of detection *)
  | Clock_skew of { duration : Sim_time.t; victim : victim; skew : Sim_time.t }
      (* jump the victim's virtual clock by [skew] (either sign) for
         [duration], then snap it back; only lease arithmetic sees it *)
  | Custom of {
      name : string;
      duration : Sim_time.t;
      victim : victim;
      start_fn : int -> unit;
      stop_fn : int -> unit;
    }
      (* deployment-specific disruption (e.g. a sharded deployment cutting
         one shard off the inter-shard plane) riding the same interlock,
         victim draw, and trace as the built-ins *)

type item = {
  start : Sim_time.t;
  period : Sim_time.t option;
  action : action;
}

type schedule = item list

(* Spaced so that, under the interlock and the 300 ms re-arm delay, a 20 s
   horizon sees several random crashes, at least two leader kills and two
   healed partitions (one asymmetric), and a couple of drop storms. *)
let standard_schedule =
  [
    {
      start = Sim_time.sec 2;
      period = Some (Sim_time.sec 8);
      action =
        Crash_restart
          { downtime = Sim_time.ms 1500; victim = Any_replica };
    };
    {
      start = Sim_time.sec 5;
      period = Some (Sim_time.sec 10);
      action = Crash_restart { downtime = Sim_time.sec 2; victim = Leader };
    };
    {
      start = Sim_time.sec 11;
      period = Some (Sim_time.sec 10);
      action =
        Isolate
          {
            duration = Sim_time.ms 1500;
            victim = Any_replica;
            asymmetric = false;
          };
    };
    {
      start = Sim_time.sec 13;
      period = Some (Sim_time.sec 10);
      action =
        Isolate
          { duration = Sim_time.sec 1; victim = Leader; asymmetric = true };
    };
    {
      start = Sim_time.ms 7500;
      period = Some (Sim_time.sec 9);
      action = Storm { duration = Sim_time.ms 300; victim = Any_replica };
    };
  ]

type t = {
  sim : Sim.t;
  rng : Rng.t;
  target : target;
  horizon : Sim_time.t;
  mutable events : event list;  (* newest first *)
  mutable busy : bool;
  mutable crashes : int;
  mutable leader_kills : int;
  mutable partitions : int;
  mutable healed : int;
  mutable storms : int;
  mutable reconfig_kills : int;
  mutable skews : int;
  mutable customs : int;
}

let retry_delay = Sim_time.ms 300

let record t fault =
  t.events <- { at = Sim.now t.sim; fault } :: t.events;
  Trace.debugf t.sim "nemesis[%s] %s" t.target.name
    (match fault with
    | Crash { node; leader } ->
        Printf.sprintf "crash node=%d%s" node (if leader then " (leader)" else "")
    | Restart { node } -> Printf.sprintf "restart node=%d" node
    | Partition { isolated; asymmetric; _ } ->
        Printf.sprintf "partition node=%d%s" isolated
          (if asymmetric then " (asymmetric)" else "")
    | Heal { isolated } -> Printf.sprintf "heal node=%d" isolated
    | Storm_start { node } -> Printf.sprintf "storm start node=%d" node
    | Storm_end { node } -> Printf.sprintf "storm end node=%d" node
    | Reconfig_fault { node; kind } ->
        Printf.sprintf "reconfig fault node=%d kind=%s" node kind
    | Skew_set { node; skew } ->
        Printf.sprintf "skew node=%d by=%dns" node (Sim_time.to_ns skew)
    | Skew_clear { node } -> Printf.sprintf "skew clear node=%d" node
    | Custom_start { node; name } ->
        Printf.sprintf "custom %s start node=%d" name node
    | Custom_end { node; name } ->
        Printf.sprintf "custom %s end node=%d" name node)

let pick_victim t = function
  | Node n -> Some n
  | Leader -> t.target.leader ()
  | Any_replica -> Some (Rng.pick t.rng (Array.of_list t.target.nodes))

let peers_of t node = List.filter (fun n -> n <> node) t.target.nodes

(* Every disruption sets [busy] and schedules its own undo; undo always
   runs, even past the horizon, so the cluster ends whole. *)
let perform t action node =
  t.busy <- true;
  match action with
  | Crash_restart { downtime; _ } ->
      let leader = t.target.leader () = Some node in
      t.crashes <- t.crashes + 1;
      if leader then t.leader_kills <- t.leader_kills + 1;
      t.target.crash node;
      record t (Crash { node; leader });
      Sim.schedule t.sim ~after:downtime (fun () ->
          t.target.restart node;
          record t (Restart { node });
          t.busy <- false)
  | Isolate { duration; asymmetric; _ } ->
      let rest = peers_of t node in
      t.partitions <- t.partitions + 1;
      if asymmetric then
        List.iter (fun o -> t.target.cut_one_way ~src:node ~dst:o) rest
      else List.iter (fun o -> t.target.cut node o) rest;
      record t (Partition { isolated = node; rest; asymmetric });
      Sim.schedule t.sim ~after:duration (fun () ->
          if asymmetric then
            List.iter (fun o -> t.target.heal_one_way ~src:node ~dst:o) rest
          else List.iter (fun o -> t.target.heal node o) rest;
          t.healed <- t.healed + 1;
          record t (Heal { isolated = node });
          t.busy <- false)
  | Storm { duration; _ } ->
      t.storms <- t.storms + 1;
      t.target.silence node;
      record t (Storm_start { node });
      Sim.schedule t.sim ~after:duration (fun () ->
          t.target.unsilence node;
          record t (Storm_end { node });
          t.busy <- false)
  | Clock_skew { duration; skew; _ } ->
      t.skews <- t.skews + 1;
      t.target.set_skew node skew;
      record t (Skew_set { node; skew });
      Sim.schedule t.sim ~after:duration (fun () ->
          t.target.set_skew node Sim_time.zero;
          record t (Skew_clear { node });
          t.busy <- false)
  | Custom { name; duration; start_fn; stop_fn; _ } ->
      t.customs <- t.customs + 1;
      start_fn node;
      record t (Custom_start { node; name });
      Sim.schedule t.sim ~after:duration (fun () ->
          stop_fn node;
          record t (Custom_end { node; name });
          t.busy <- false)
  | Reconfig_kill { grace; downtime } ->
      (* [node] is the leader that was driving the reconfiguration when we
         detected it; strike it within [grace] even if leadership moves in
         the meantime — that IS the race under test. *)
      t.reconfig_kills <- t.reconfig_kills + 1;
      record t (Reconfig_fault { node; kind = "leader-kill-mid-reconfig" });
      let delay = Sim_time.scale grace (Rng.float t.rng) in
      Sim.schedule t.sim ~after:delay (fun () ->
          let leader = t.target.leader () = Some node in
          t.crashes <- t.crashes + 1;
          if leader then t.leader_kills <- t.leader_kills + 1;
          t.target.crash node;
          record t (Crash { node; leader });
          Sim.schedule t.sim ~after:downtime (fun () ->
              t.target.restart node;
              record t (Restart { node });
              t.busy <- false))

let rec fire t item () =
  if Sim_time.(Sim.now t.sim <= t.horizon) then begin
    let armed =
      match item.action with
      | Reconfig_kill _ ->
          (* poll: only strike while a membership change is in flight *)
          t.target.reconfig_in_flight ()
      | Crash_restart _ | Isolate _ | Storm _ | Clock_skew _ | Custom _ ->
          true
    in
    let fired =
      (not t.busy) && armed
      &&
      match pick_victim t (match item.action with
          | Crash_restart { victim; _ } | Isolate { victim; _ }
          | Storm { victim; _ } | Clock_skew { victim; _ }
          | Custom { victim; _ } -> victim
          | Reconfig_kill _ -> Leader)
      with
      | None -> false  (* e.g. leader-targeted mid-election: re-arm below *)
      | Some node -> perform t item.action node; true
    in
    let next =
      if fired then Option.map (Sim_time.add (Sim.now t.sim)) item.period
      else
        (* an unarmed Reconfig_kill is a poll, not a backoff: membership
           changes commit in tens of milliseconds, so a coarse retry would
           miss every window *)
        let delay =
          match item.action with
          | Reconfig_kill _ -> Sim_time.ms 10
          | Crash_restart _ | Isolate _ | Storm _ | Clock_skew _ | Custom _
            ->
              retry_delay
        in
        Some (Sim_time.add (Sim.now t.sim) delay)
    in
    match next with
    | Some at when Sim_time.(at <= t.horizon) ->
        Sim.schedule_at t.sim ~at (fire t item)
    | _ -> ()
  end

let start ?rng ~sim ~target ~horizon schedule =
  let rng = match rng with Some r -> r | None -> Rng.split (Sim.rng sim) in
  let t =
    {
      sim;
      rng;
      target;
      horizon;
      events = [];
      busy = false;
      crashes = 0;
      leader_kills = 0;
      partitions = 0;
      healed = 0;
      storms = 0;
      reconfig_kills = 0;
      skews = 0;
      customs = 0;
    }
  in
  List.iter
    (fun item ->
      if Sim_time.(item.start <= horizon) then
        Sim.schedule_at sim ~at:item.start (fire t item))
    schedule;
  t

let trace t = List.rev t.events
let faults_injected t = t.crashes + t.partitions + t.storms
let crashes t = t.crashes
let leader_kills t = t.leader_kills
let partitions t = t.partitions
let partitions_healed t = t.healed
let storms t = t.storms
let reconfig_kills t = t.reconfig_kills
let clock_skews t = t.skews
let customs t = t.customs
let busy t = t.busy

let pp_fault ppf = function
  | Crash { node; leader } ->
      Fmt.pf ppf "crash node=%d%s" node (if leader then " leader" else "")
  | Restart { node } -> Fmt.pf ppf "restart node=%d" node
  | Partition { isolated; rest; asymmetric } ->
      Fmt.pf ppf "partition node=%d%s rest=[%s]" isolated
        (if asymmetric then " asym" else "")
        (String.concat "," (List.map string_of_int rest))
  | Heal { isolated } -> Fmt.pf ppf "heal node=%d" isolated
  | Storm_start { node } -> Fmt.pf ppf "storm-start node=%d" node
  | Storm_end { node } -> Fmt.pf ppf "storm-end node=%d" node
  | Reconfig_fault { node; kind } ->
      Fmt.pf ppf "reconfig-fault node=%d kind=%s" node kind
  | Skew_set { node; skew } ->
      Fmt.pf ppf "skew node=%d by=%dns" node (Sim_time.to_ns skew)
  | Skew_clear { node } -> Fmt.pf ppf "skew-clear node=%d" node
  | Custom_start { node; name } ->
      Fmt.pf ppf "custom-%s-start node=%d" name node
  | Custom_end { node; name } -> Fmt.pf ppf "custom-%s-end node=%d" name node

let pp_event ppf { at; fault } =
  Fmt.pf ppf "%9.4fs %a" (Sim_time.to_float_s at) pp_fault fault

let trace_to_string t =
  String.concat "\n" (List.map (Fmt.str "%a" pp_event) (trace t))
