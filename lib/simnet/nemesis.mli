(** Nemesis: deterministic, seed-driven fault injection over {!Sim.t}.

    A nemesis runs a {e schedule} of disruption items against an abstract
    {!target} (a cluster seen through closures): periodic crash+restart of
    a random or leader replica, symmetric and asymmetric partitions that
    isolate one replica from its peers, and drop storms that silence a
    node's network without killing the process.  Every action is recorded
    in a timestamped fault trace, so experiments can report per-fault
    recovery and tests can assert that equal seeds give identical traces.

    At most one disruption is active at a time (the interlock): a fault
    plan that permanently destroys quorum measures nothing, and overlap
    would make "recovery time per fault" ill-defined.  An item that fires
    while another disruption is active (or while a leader-targeted item
    finds no leader, e.g. mid-election) deterministically re-arms itself a
    short delay later. *)

type target = {
  name : string;
  nodes : int list;  (** replica network addresses *)
  leader : unit -> int option;  (** current leader/primary, if any *)
  crash : int -> unit;  (** kill process + network *)
  restart : int -> unit;  (** revive process + network *)
  cut : int -> int -> unit;  (** symmetric link cut *)
  heal : int -> int -> unit;
  cut_one_way : src:int -> dst:int -> unit;
  heal_one_way : src:int -> dst:int -> unit;
  silence : int -> unit;  (** drop the node's traffic, process keeps running *)
  unsilence : int -> unit;
  reconfig_in_flight : unit -> bool;
      (** a membership change is underway somewhere in the cluster (arms
          {!Reconfig_kill}); targets without dynamic membership return
          [false] *)
  set_skew : int -> Sim_time.t -> unit;
      (** offset the node's virtual clock (lease arithmetic only; the
          simulator's timers are unaffected); [Sim_time.zero] clears.
          Targets without virtual clocks ignore it. *)
}

(** One entry of the fault trace. *)
type fault =
  | Crash of { node : int; leader : bool }
  | Restart of { node : int }
  | Partition of { isolated : int; rest : int list; asymmetric : bool }
      (** [asymmetric]: only traffic {e from} [isolated] is dropped — it
          still hears its peers (the classic half-open failure) *)
  | Heal of { isolated : int }
  | Storm_start of { node : int }
  | Storm_end of { node : int }
  | Reconfig_fault of { node : int; kind : string }
      (** a reconfiguration-targeted strike was armed against [node] (the
          leader driving the change); the kill itself follows as a normal
          [Crash]/[Restart] pair *)
  | Skew_set of { node : int; skew : Sim_time.t }
      (** the node's virtual clock jumped by [skew] (either sign) *)
  | Skew_clear of { node : int }
  | Custom_start of { node : int; name : string }
      (** a deployment-specific {!Custom} disruption began *)
  | Custom_end of { node : int; name : string }

type event = { at : Sim_time.t; fault : fault }

(** Who a disruption hits. *)
type victim =
  | Any_replica  (** uniform draw from [target.nodes] *)
  | Leader
  | Node of int

type action =
  | Crash_restart of { downtime : Sim_time.t; victim : victim }
  | Isolate of { duration : Sim_time.t; victim : victim; asymmetric : bool }
  | Storm of { duration : Sim_time.t; victim : victim }
  | Reconfig_kill of { grace : Sim_time.t; downtime : Sim_time.t }
      (** poll [target.reconfig_in_flight]; when it turns true, crash the
          current leader after a uniform draw from [0, grace) — the
          "leader dies between the joint and final config entries" race *)
  | Clock_skew of { duration : Sim_time.t; victim : victim; skew : Sim_time.t }
      (** jump the victim's virtual clock by [skew] for [duration], then
          snap it back to true time.  Skews within the protocol's ±ε bound
          exercise the lease safety margin; skews beyond it model the
          broken-assumption regime the stale-read detector must catch *)
  | Custom of {
      name : string;
      duration : Sim_time.t;
      victim : victim;
      start_fn : int -> unit;
      stop_fn : int -> unit;
    }
      (** deployment-specific disruption (e.g. cutting one shard off a
          sharded deployment's inter-shard plane) that rides the same
          interlock, victim draw, and trace as the built-in actions:
          [start_fn node] opens it, [stop_fn node] undoes it after
          [duration] *)

type item = {
  start : Sim_time.t;  (** first firing time *)
  period : Sim_time.t option;  (** [None] = one-shot *)
  action : action;
}

type schedule = item list

(** The standard chaos mix used by the harness: periodic random and
    leader-targeted crash+restarts, a symmetric and an asymmetric
    partition, and short drop storms.  Over a ~20 s horizon it yields
    multiple leader kills and healed partitions. *)
val standard_schedule : schedule

type t

(** [start ?rng ~sim ~target ~horizon schedule] arms every item.  No new
    disruption starts after [horizon], but in-flight restarts/heals always
    complete, so the cluster is whole again shortly after.  [rng] defaults
    to a split of [sim]'s root generator; victim draws are its only
    randomness, so equal seeds give identical traces. *)
val start :
  ?rng:Rng.t -> sim:Sim.t -> target:target -> horizon:Sim_time.t ->
  schedule -> t

(** Chronological fault trace. *)
val trace : t -> event list

(** Disruptions started (crashes + partitions + storms). *)
val faults_injected : t -> int

val crashes : t -> int
val leader_kills : t -> int
val partitions : t -> int
val partitions_healed : t -> int
val storms : t -> int

(** Reconfiguration-targeted leader kills armed. *)
val reconfig_kills : t -> int

(** Clock-skew windows opened. *)
val clock_skews : t -> int

(** Custom disruptions started. *)
val customs : t -> int

(** [true] while a disruption is in flight. *)
val busy : t -> bool

val pp_event : Format.formatter -> event -> unit

(** One line per event — equal seeds must produce equal strings. *)
val trace_to_string : t -> string
